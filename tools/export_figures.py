#!/usr/bin/env python
"""Export every reproduced figure's data as CSV for external plotting.

Writes one CSV per figure under ``figures/`` (created if absent), so
the polar scatters and bar charts can be rendered with any plotting
stack without rerunning the simulation.

Run from the repo root:  python tools/export_figures.py
"""

import csv
import os
import sys

from repro.experiments import (
    figure1,
    figure3,
    figure4,
    fm_extension,
)
from repro.experiments.common import LOCATIONS, build_world

OUT_DIR = "figures"


def export_figure1(world) -> str:
    path = os.path.join(OUT_DIR, "figure1_points.csv")
    panels = figure1.run_figure1(world=world)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            [
                "location",
                "icao",
                "bearing_deg",
                "range_km",
                "elevation_deg",
                "received",
                "n_messages",
                "mean_rssi_dbfs",
            ]
        )
        for panel in panels:
            for obs in panel.scan.observations:
                writer.writerow(
                    [
                        panel.location,
                        str(obs.icao),
                        f"{obs.bearing_deg:.2f}",
                        f"{obs.ground_range_km:.2f}",
                        f"{obs.elevation_deg:.2f}",
                        int(obs.received),
                        obs.n_messages,
                        (
                            f"{obs.mean_rssi_dbfs:.1f}"
                            if obs.mean_rssi_dbfs is not None
                            else ""
                        ),
                    ]
                )
    return path


def export_figure3(world) -> str:
    path = os.path.join(OUT_DIR, "figure3_rsrp.csv")
    result = figure3.run_figure3(world=world)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["tower", "freq_mhz"] + list(LOCATIONS))
        for tower in sorted(result.tower_freq_mhz):
            row = [tower, f"{result.tower_freq_mhz[tower]:.0f}"]
            for location in LOCATIONS:
                value = result.rsrp_dbm[location].get(tower)
                row.append("" if value is None else f"{value:.1f}")
            writer.writerow(row)
    return path


def export_figure4(world) -> str:
    path = os.path.join(OUT_DIR, "figure4_tv_dbfs.csv")
    result = figure4.run_figure4(world=world)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["freq_mhz"] + list(LOCATIONS))
        for mhz in sorted(next(iter(result.power_dbfs.values()))):
            row = [f"{mhz:.0f}"]
            for location in LOCATIONS:
                value = result.power_dbfs[location].get(mhz)
                row.append("" if value is None else f"{value:.1f}")
            writer.writerow(row)
    return path


def export_fm(world) -> str:
    path = os.path.join(OUT_DIR, "fm_extension_dbfs.csv")
    result = fm_extension.run_fm_extension(world=world)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["station"] + list(LOCATIONS))
        for station in sorted(next(iter(result.power_dbfs.values()))):
            row = [station]
            for location in LOCATIONS:
                value = result.power_dbfs[location][station]
                row.append("" if value is None else f"{value:.1f}")
            writer.writerow(row)
    return path


def main() -> int:
    os.makedirs(OUT_DIR, exist_ok=True)
    world = build_world()
    for exporter in (
        export_figure1,
        export_figure3,
        export_figure4,
        export_fm,
    ):
        path = exporter(world)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
