#!/usr/bin/env python
"""Generate the sample SBS feed + tracker archive under examples/data/.

The files let anyone try ``python -m repro ingest`` without hardware:

    python -m repro ingest \
        --sbs examples/data/sample_feed.sbs \
        --tracker examples/data/sample_tracker.json \
        --lat 37.8715 --lon -122.2730 --alt 20

Run from the repo root:  python tools/make_sample_feed.py
"""

import os
import sys

import numpy as np

from repro.adsb.decoder import Dump1090Decoder
from repro.adsb.sbs import stream_to_sbs
from repro.core.directional import ADSB_BANDWIDTH_HZ, DECODE_SNR_DB
from repro.core.ingest import flight_reports_to_json
from repro.environment.links import AdsbLinkModel
from repro.experiments.common import build_world
from repro.geo.coords import GeoPoint
from repro.node.sensor import SensorNode

OUT_DIR = os.path.join("examples", "data")


def main() -> int:
    os.makedirs(OUT_DIR, exist_ok=True)
    world = build_world()
    node = SensorNode("sample", world.testbed.site("rooftop"))
    rng = np.random.default_rng(2026)
    link = AdsbLinkModel(
        env=node.environment, rx_antenna=node.antenna
    )
    decoder = Dump1090Decoder(receiver_position=node.position)
    threshold = (
        node.sdr.noise_floor_dbm(ADSB_BANDWIDTH_HZ) + DECODE_SNR_DB
    )
    messages = []
    for event in world.traffic.squitters_between(0.0, 30.0, rng):
        tx = GeoPoint(event.lat_deg, event.lon_deg, event.alt_m)
        rx = link.message_received_power_dbm(
            event.frame.icao,
            tx,
            event.tx_power_w,
            rng,
            time_s=event.time_s,
        )
        if rx < threshold:
            continue
        msg = decoder.decode_frame_bytes(
            event.frame.data,
            event.time_s,
            node.sdr.input_dbm_to_dbfs(rx),
        )
        if msg is not None:
            messages.append(msg)

    sbs_path = os.path.join(OUT_DIR, "sample_feed.sbs")
    with open(sbs_path, "w") as f:
        f.write(stream_to_sbs(messages))
        f.write("\n")
    print(f"wrote {sbs_path} ({len(messages)} messages)")

    reports = world.ground_truth.query(
        node.position, 100_000.0, 15.0
    )
    tracker_path = os.path.join(OUT_DIR, "sample_tracker.json")
    with open(tracker_path, "w") as f:
        f.write(flight_reports_to_json(reports, indent=1))
    print(f"wrote {tracker_path} ({len(reports)} flights)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
