"""Batch execution of the §3.1 directional scan.

``DirectionalEvaluator.run`` dispatches here by default. The scalar
pipeline (``run_scalar``) handles one squitter at a time; this engine
runs the same capture as five array passes:

1. schedule + trajectories as arrays (no frame objects built);
2. ray geometry + obstruction per event, optionally cached per
   track-segment anchor;
3. received power for every event with one batched RNG call;
4. threshold mask — only the surviving events get frames, synthesized
   as one uint8 matrix (:mod:`repro.batch.frames`);
5. one vectorized decoder pass (`decode_frame_matrix`) and bincount
   tallies.

The per-aircraft CPR parity bookkeeping the scalar path does while
building every position frame is reproduced arithmetically: position
frame k of an aircraft uses parity ``initial ^ (k odd)``, and the
transponder's parity state is advanced afterwards exactly as if every
frame had been built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.adsb.decoder import Dump1090Decoder
from repro.adsb.icao import IcaoAddress
from repro.adsb.messages import identification_me_bits
from repro.batch.frames import (
    pack_frame_matrix,
    position_me_bits,
    velocity_me_bits,
)
from repro.batch.geomcache import batch_rays
from repro.batch.links import batch_received_power_dbm
from repro.batch.schedule import (
    KIND_ACQUISITION,
    KIND_IDENTIFICATION,
    KIND_POSITION,
    KIND_VELOCITY,
    build_batch_squitters,
)
from repro.core.observations import DirectionalScan
from repro.environment.links import ADSB_FREQ_HZ, AdsbLinkModel
from repro.interference.collisions import (
    frame_durations_s,
    resolve_collisions,
)

if TYPE_CHECKING:
    from repro.core.directional import DirectionalEvaluator


def run_directional_scan_batch(
    evaluator: "DirectionalEvaluator", rng: np.random.Generator
) -> DirectionalScan:
    """Run one full directional evaluation through the batch engine.

    Consumes the RNG exactly as ``run_scalar`` does (jitter draws,
    then link draws, then the ground-truth query), so a fixed seed
    yields the same decode set on both paths.
    """
    from repro.core.directional import _AircraftTally

    node = evaluator.node
    link = AdsbLinkModel(
        env=node.environment, rx_antenna=node.antenna
    )
    threshold = evaluator.decode_threshold_dbm()

    squitters = build_batch_squitters(
        evaluator.traffic, 0.0, evaluator.duration_s, rng
    )
    aircraft = evaluator.traffic.aircraft
    speeds = np.array(
        [ac.route.speed_ms for ac in aircraft], dtype=np.float64
    )
    rays = batch_rays(
        node.environment.position,
        node.environment.obstruction_map,
        ADSB_FREQ_HZ,
        squitters,
        speeds,
        evaluator.geometry_epsilon_m,
    )
    rx_dbm = batch_received_power_dbm(
        node.environment,
        node.antenna,
        squitters,
        rays,
        rng,
        link.rician_k_db,
        link.coherence_time_s,
    )

    decoder = Dump1090Decoder(receiver_position=node.position)
    initial_parity = np.array(
        [ac.transponder._odd_next for ac in aircraft], dtype=bool
    )
    per_aircraft: Dict[IcaoAddress, _AircraftTally] = {}
    decoded_count = 0

    collision_stats = None
    if evaluator.interference_enabled():
        assert evaluator.interference is not None
        decodable, collision_stats = resolve_collisions(
            squitters.time_s,
            frame_durations_s(squitters.kind_idx),
            rx_dbm,
            threshold,
            evaluator.noise_floor_dbm(),
            evaluator.interference.capture_margin_db,
        )
        sel = np.flatnonzero(decodable)
    else:
        sel = np.flatnonzero(rx_dbm >= threshold)
    if sel.size:
        ai = squitters.aircraft_idx[sel]
        kind = squitters.kind_idx[sel]
        icao_by_ac = np.array(
            [ac.transponder.icao.value for ac in aircraft],
            dtype=np.int64,
        )

        me64 = np.zeros(sel.size, dtype=np.uint64)
        pos_m = kind == KIND_POSITION
        if pos_m.any():
            odd = initial_parity[ai[pos_m]] ^ (
                squitters.pos_seq[sel][pos_m] % 2 == 1
            )
            me64[pos_m] = position_me_bits(
                squitters.lat_deg[sel][pos_m],
                squitters.lon_deg[sel][pos_m],
                squitters.alt_m[sel][pos_m] / 0.3048,
                odd,
            )
        vel_m = kind == KIND_VELOCITY
        if vel_m.any():
            me64[vel_m] = velocity_me_bits(
                squitters.east_kt[sel][vel_m],
                squitters.north_kt[sel][vel_m],
            )
        id_m = kind == KIND_IDENTIFICATION
        if id_m.any():
            ident_me = np.zeros(len(aircraft), dtype=np.uint64)
            for a in np.unique(ai[id_m]).tolist():
                ident_me[a] = identification_me_bits(
                    aircraft[a].transponder.callsign
                )
            me64[id_m] = ident_me[ai[id_m]]

        data, lengths = pack_frame_matrix(
            kind != KIND_ACQUISITION, icao_by_ac[ai], me64
        )
        times = squitters.time_s[sel]
        result = decoder.decode_frame_matrix(data, lengths, times)

        rssi_dbfs = node.sdr.input_dbm_to_dbfs_array(rx_dbm[sel])
        dec = result.decoded
        decoded_count = int(dec.sum())
        uniq, inverse = np.unique(
            result.icao24[dec], return_inverse=True
        )
        n_messages = np.bincount(inverse)
        # bincount accumulates in row order — the same per-aircraft
        # time-ordered float additions the scalar tally performs.
        rssi_sums = np.bincount(inverse, weights=rssi_dbfs[dec])
        for u, c, s in zip(
            uniq.tolist(), n_messages.tolist(), rssi_sums.tolist()
        ):
            per_aircraft[IcaoAddress(int(u))] = _AircraftTally(
                n_messages=int(c), rssi_sum_dbfs=float(s)
            )

    # Advance every transponder's CPR parity as if all position frames
    # had been built, keeping object state identical to a scalar run.
    n_pos = np.bincount(
        squitters.aircraft_idx[squitters.kind_idx == KIND_POSITION],
        minlength=len(aircraft),
    )
    for a, ac in enumerate(aircraft):
        ac.transponder._odd_next = bool(initial_parity[a]) ^ (
            int(n_pos[a]) % 2 == 1
        )

    return evaluator._finalize(
        per_aircraft,
        decoded_count,
        rng,
        collision_stats=collision_stats,
    )
