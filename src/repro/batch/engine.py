"""Batch execution of the §3.1 directional scan.

``DirectionalEvaluator.run`` dispatches here by default. The scalar
pipeline (``run_scalar``) handles one squitter at a time; this engine
runs the same capture as five array passes:

1. schedule + trajectories as arrays (no frame objects built);
2. ray geometry + obstruction per event, optionally cached per
   track-segment anchor;
3. received power for every event with one batched RNG call;
4. threshold mask — only the surviving events get frames, synthesized
   as one uint8 matrix (:mod:`repro.batch.frames`);
5. one vectorized decoder pass (`decode_frame_matrix`) and bincount
   tallies.

The per-aircraft CPR parity bookkeeping the scalar path does while
building every position frame is reproduced arithmetically: position
frame k of an aircraft uses parity ``initial ^ (k odd)``, and the
transponder's parity state is advanced afterwards exactly as if every
frame had been built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.adsb.decoder import Dump1090Decoder
from repro.adsb.icao import IcaoAddress
from repro.adsb.messages import identification_me_bits
from repro.batch.frames import (
    pack_frame_matrix,
    position_me_bits,
    velocity_me_bits,
)
from repro.batch.geomcache import batch_rays
from repro.batch.links import batch_received_power_dbm
from repro.batch.schedule import (
    KIND_ACQUISITION,
    KIND_IDENTIFICATION,
    KIND_POSITION,
    KIND_VELOCITY,
    BatchSquitters,
    build_batch_squitters,
)
from repro.core.observations import DirectionalScan
from repro.engines.pathcache import get_path_cache
from repro.engines.registry import resolve_engine
from repro.environment.links import ADSB_FREQ_HZ, AdsbLinkModel
from repro.geo.coords import GeoPoint
from repro.interference.collisions import (
    CollisionStats,
    frame_durations_s,
    resolve_collisions,
)

if TYPE_CHECKING:
    from repro.core.directional import DirectionalEvaluator


def run_directional_scan_batch(
    evaluator: "DirectionalEvaluator", rng: np.random.Generator
) -> DirectionalScan:
    """Run one full directional evaluation through the batch engine.

    Consumes the RNG exactly as ``run_scalar`` does (jitter draws,
    then link draws, then the ground-truth query), so a fixed seed
    yields the same decode set on both paths.
    """
    from repro.core.directional import _AircraftTally

    node = evaluator.node
    engine = resolve_engine(evaluator.engine)
    link = AdsbLinkModel(
        env=node.environment, rx_antenna=node.antenna
    )
    threshold = evaluator.decode_threshold_dbm()

    squitters = build_batch_squitters(
        evaluator.traffic, 0.0, evaluator.duration_s, rng
    )
    aircraft = evaluator.traffic.aircraft
    speeds = np.array(
        [ac.route.speed_ms for ac in aircraft], dtype=np.float64
    )
    rays = batch_rays(
        node.environment.position,
        node.environment.obstruction_map,
        ADSB_FREQ_HZ,
        squitters,
        speeds,
        evaluator.geometry_epsilon_m,
        engine=engine,
    )
    rx_dbm = batch_received_power_dbm(
        node.environment,
        node.antenna,
        squitters,
        rays,
        rng,
        link.rician_k_db,
        link.coherence_time_s,
        engine=engine,
    )

    initial_parity = np.array(
        [ac.transponder._odd_next for ac in aircraft], dtype=bool
    )
    icao_by_ac = np.array(
        [ac.transponder.icao.value for ac in aircraft],
        dtype=np.int64,
    )
    callsigns = tuple(ac.transponder.callsign for ac in aircraft)
    if evaluator.interference_enabled():
        assert evaluator.interference is not None
        interference_params: Optional[Tuple[float, float]] = (
            evaluator.noise_floor_dbm(),
            evaluator.interference.capture_margin_db,
        )
    else:
        interference_params = None

    # Frame synthesis + CRC decode are deterministic given the event
    # set, powers, and CPR parity snapshot; the parity joins the key
    # (it alternates between two states across repeated runs, so at
    # most two variants get cached and later rounds replay fully).
    decoded_count, uniq, n_messages, rssi_sums, collision_stats = (
        get_path_cache().get_or_compute(
            (
                "batch_decode",
                squitters.time_s,
                squitters.aircraft_idx,
                squitters.kind_idx,
                squitters.pos_seq,
                squitters.lat_deg,
                squitters.lon_deg,
                squitters.alt_m,
                squitters.east_kt,
                squitters.north_kt,
                rx_dbm,
                threshold,
                initial_parity,
                icao_by_ac,
                "\0".join(callsigns),
                interference_params,
                node.position,
                node.sdr,
            ),
            lambda: _decode_stage(
                squitters,
                rx_dbm,
                threshold,
                initial_parity,
                icao_by_ac,
                callsigns,
                interference_params,
                node.position,
                node.sdr,
            ),
        )
    )
    per_aircraft: Dict[IcaoAddress, _AircraftTally] = {}
    for u, c, s in zip(
        uniq.tolist(), n_messages.tolist(), rssi_sums.tolist()
    ):
        per_aircraft[IcaoAddress(int(u))] = _AircraftTally(
            n_messages=int(c), rssi_sum_dbfs=float(s)
        )

    # Advance every transponder's CPR parity as if all position frames
    # had been built, keeping object state identical to a scalar run.
    n_pos = np.bincount(
        squitters.aircraft_idx[squitters.kind_idx == KIND_POSITION],
        minlength=len(aircraft),
    )
    for a, ac in enumerate(aircraft):
        ac.transponder._odd_next = bool(initial_parity[a]) ^ (
            int(n_pos[a]) % 2 == 1
        )

    return evaluator._finalize(
        per_aircraft,
        decoded_count,
        rng,
        collision_stats=collision_stats,
    )


def _decode_stage(
    squitters: BatchSquitters,
    rx_dbm: np.ndarray,
    threshold: float,
    initial_parity: np.ndarray,
    icao_by_ac: np.ndarray,
    callsigns: Tuple[str, ...],
    interference_params: Optional[Tuple[float, float]],
    receiver_position: GeoPoint,
    sdr,
) -> Tuple[
    int, np.ndarray, np.ndarray, np.ndarray, Optional[CollisionStats]
]:
    """Threshold, synthesize, and decode one capture's frames.

    Returns ``(decoded_count, unique icao24 values, message counts,
    RSSI sums, collision stats)`` — the pure-array products the
    caller folds into per-aircraft tallies.
    """
    collision_stats: Optional[CollisionStats] = None
    if interference_params is not None:
        noise_dbm, capture_margin_db = interference_params
        decodable, collision_stats = resolve_collisions(
            squitters.time_s,
            frame_durations_s(squitters.kind_idx),
            rx_dbm,
            threshold,
            noise_dbm,
            capture_margin_db,
        )
        sel = np.flatnonzero(decodable)
    else:
        sel = np.flatnonzero(rx_dbm >= threshold)

    decoded_count = 0
    uniq = np.empty(0, dtype=np.int64)
    n_messages = np.empty(0, dtype=np.int64)
    rssi_sums = np.empty(0, dtype=np.float64)
    if sel.size:
        ai = squitters.aircraft_idx[sel]
        kind = squitters.kind_idx[sel]

        me64 = np.zeros(sel.size, dtype=np.uint64)
        pos_m = kind == KIND_POSITION
        if pos_m.any():
            odd = initial_parity[ai[pos_m]] ^ (
                squitters.pos_seq[sel][pos_m] % 2 == 1
            )
            me64[pos_m] = position_me_bits(
                squitters.lat_deg[sel][pos_m],
                squitters.lon_deg[sel][pos_m],
                squitters.alt_m[sel][pos_m] / 0.3048,
                odd,
            )
        vel_m = kind == KIND_VELOCITY
        if vel_m.any():
            me64[vel_m] = velocity_me_bits(
                squitters.east_kt[sel][vel_m],
                squitters.north_kt[sel][vel_m],
            )
        id_m = kind == KIND_IDENTIFICATION
        if id_m.any():
            ident_me = np.zeros(len(callsigns), dtype=np.uint64)
            for a in np.unique(ai[id_m]).tolist():
                ident_me[a] = identification_me_bits(callsigns[a])
            me64[id_m] = ident_me[ai[id_m]]

        data, lengths = pack_frame_matrix(
            kind != KIND_ACQUISITION, icao_by_ac[ai], me64
        )
        times = squitters.time_s[sel]
        decoder = Dump1090Decoder(receiver_position=receiver_position)
        result = decoder.decode_frame_matrix(data, lengths, times)

        rssi_dbfs = sdr.input_dbm_to_dbfs_array(rx_dbm[sel])
        dec = result.decoded
        decoded_count = int(dec.sum())
        uniq, inverse = np.unique(
            result.icao24[dec], return_inverse=True
        )
        n_messages = np.bincount(inverse)
        # bincount accumulates in row order — the same per-aircraft
        # time-ordered float additions the scalar tally performs.
        rssi_sums = np.bincount(inverse, weights=rssi_dbfs[dec])
    return decoded_count, uniq, n_messages, rssi_sums, collision_stats
