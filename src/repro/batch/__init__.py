"""Vectorized batch engine for the squitter hot path.

The §3.1 directional scan used to walk squitters one Python object at
a time: schedule each transmission, evaluate the trajectory, build the
frame, run the link physics, then decode — all per event. This
package replaces the per-event interpreter with numpy array kernels:

- :mod:`repro.batch.schedule` — the whole population's squitter
  schedule and trajectory states as flat arrays;
- :mod:`repro.batch.geomcache` — ray geometry + obstruction loss,
  computed per track-segment anchor and reused across squitters;
- :mod:`repro.batch.links` — received power for every event in one
  pass, with all fading randomness drawn as a single batched RNG call
  under a documented draw-order discipline;
- :mod:`repro.batch.engine` — the drop-in replacement for
  :meth:`repro.core.directional.DirectionalEvaluator.run`.

The batch path is equivalence-tested against the scalar path: with a
fixed seed it must decode the identical message set and produce powers
within 1e-9 dB (see tests/test_batch_equivalence.py and
docs/performance.md for the discipline that makes this possible).
"""

from repro.batch.engine import run_directional_scan_batch
from repro.batch.schedule import BatchSquitters, build_batch_squitters

__all__ = [
    "BatchSquitters",
    "build_batch_squitters",
    "run_directional_scan_batch",
]
