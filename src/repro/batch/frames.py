"""Vectorized Mode S frame synthesis for the thresholded subset.

The scalar path builds every squitter's frame — CPR encode, bit
packing, CRC — one Python integer at a time, before the link model has
even said whether the frame is receivable. Here the engine builds
frames only for events that cleared the decode threshold, and builds
them all at once: ME fields as uint64 arrays, assembly and parity as
columnwise operations on an (n, 14) uint8 matrix.

Field layouts and encoding rules mirror ``repro.adsb.messages``
bit for bit (altitude and velocity quantization use the same
round-half-even rule as the scalar ``int(round(...))``). CPR counts
come from :func:`repro.adsb.cpr.cpr_encode_arrays`, whose libm calls
may differ from the scalar chain by 1 ulp at zone-boundary latitudes —
that can wiggle a CPR count by one (a ~5 m position shift) but never
changes frame validity, ICAO, or message kind, which is what the
directional scan consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.adsb.cpr import cpr_encode_arrays
from repro.adsb.crc import crc24_matrix
from repro.adsb.messages import DF11_BYTES, DF17_BYTES, FrameError

#: First byte of every frame we emit: DF + capability 5 (airborne).
_DF17_HEADER = (17 << 3) | 5
_DF11_HEADER = (11 << 3) | 5


def position_me_bits(
    lat_deg: np.ndarray,
    lon_deg: np.ndarray,
    altitude_ft: np.ndarray,
    odd: np.ndarray,
    type_code: int = 11,
) -> np.ndarray:
    """ME fields of airborne position squitters, as uint64.

    Mirrors ``build_airborne_position``: CPR-encoded lat/lon, Q=1
    25 ft altitude, surveillance status / single antenna / time sync
    all zero.
    """
    if not 9 <= type_code <= 18:
        raise FrameError(f"type code must be 9-18: {type_code}")
    odd_b = np.asarray(odd, dtype=bool)
    yz, xz = cpr_encode_arrays(lat_deg, lon_deg, odd_b)
    n = np.rint(
        (np.asarray(altitude_ft, dtype=np.float64) + 1000.0) / 25.0
    ).astype(np.int64)
    if np.any((n < 0) | (n >= (1 << 11))):
        raise FrameError("altitude not encodable with Q=1")
    alt = (((n >> 4) & 0x7F) << 5) | (1 << 4) | (n & 0x0F)
    bits = np.full(yz.shape, type_code << 51, dtype=np.int64)
    bits |= alt << 36
    bits |= odd_b.astype(np.int64) << 34
    bits |= yz << 17
    bits |= xz
    return bits.astype(np.uint64)


def velocity_me_bits(
    east_velocity_kt: np.ndarray, north_velocity_kt: np.ndarray
) -> np.ndarray:
    """ME fields of airborne velocity squitters (TC 19, subtype 1).

    Mirrors ``build_airborne_velocity`` with zero vertical rate (the
    only rate the simulated traffic flies).
    """
    east = np.asarray(east_velocity_kt, dtype=np.float64)
    north = np.asarray(north_velocity_kt, dtype=np.float64)
    v_ew = np.rint(np.abs(east)).astype(np.int64) + 1
    v_ns = np.rint(np.abs(north)).astype(np.int64) + 1
    if np.any(v_ew > 1023) or np.any(v_ns > 1023):
        raise FrameError("velocity exceeds subtype-1 encoding range")
    # type code 19, subtype 1, vertical rate field = 1 (0 fpm).
    const = (19 << 51) | (1 << 48) | (1 << 10)
    bits = np.full(east.shape, const, dtype=np.int64)
    bits |= (east < 0).astype(np.int64) << 42
    bits |= v_ew << 32
    bits |= (north < 0).astype(np.int64) << 31
    bits |= v_ns << 21
    return bits.astype(np.uint64)


def assemble_long_frames(
    icao24: np.ndarray, me_bits: np.ndarray
) -> np.ndarray:
    """Parity-correct DF17 frames as an (n, 14) uint8 matrix.

    Mirrors ``_assemble``: header byte, ICAO, 7 ME bytes, CRC-24 of
    the first 11 bytes as the parity field.
    """
    icao = np.asarray(icao24, dtype=np.int64)
    me = np.asarray(me_bits, dtype=np.uint64)
    mat = np.zeros((icao.size, DF17_BYTES), dtype=np.uint8)
    mat[:, 0] = _DF17_HEADER
    mat[:, 1] = (icao >> 16) & 0xFF
    mat[:, 2] = (icao >> 8) & 0xFF
    mat[:, 3] = icao & 0xFF
    for k in range(7):
        mat[:, 4 + k] = (
            (me >> np.uint64(8 * (6 - k))) & np.uint64(0xFF)
        ).astype(np.uint8)
    parity = crc24_matrix(mat[:, :11])
    mat[:, 11] = (parity >> 16) & 0xFF
    mat[:, 12] = (parity >> 8) & 0xFF
    mat[:, 13] = parity & 0xFF
    return mat


def assemble_short_frames(icao24: np.ndarray) -> np.ndarray:
    """Parity-correct DF11 acquisition squitters, (n, 7) uint8.

    Mirrors ``build_acquisition_squitter``.
    """
    icao = np.asarray(icao24, dtype=np.int64)
    mat = np.zeros((icao.size, DF11_BYTES), dtype=np.uint8)
    mat[:, 0] = _DF11_HEADER
    mat[:, 1] = (icao >> 16) & 0xFF
    mat[:, 2] = (icao >> 8) & 0xFF
    mat[:, 3] = icao & 0xFF
    parity = crc24_matrix(mat[:, :4])
    mat[:, 4] = (parity >> 16) & 0xFF
    mat[:, 5] = (parity >> 8) & 0xFF
    mat[:, 6] = parity & 0xFF
    return mat


def pack_frame_matrix(
    long_mask: np.ndarray,
    icao24: np.ndarray,
    me_bits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All frames of a mixed-length batch in one padded matrix.

    Long rows (``long_mask``) become DF17 frames from their ME bits;
    the rest become DF11 acquisition squitters padded with zeros.
    Returns ``(data, lengths)`` ready for
    ``Dump1090Decoder.decode_frame_matrix``.
    """
    long_b = np.asarray(long_mask, dtype=bool)
    icao = np.asarray(icao24, dtype=np.int64)
    data = np.zeros((icao.size, DF17_BYTES), dtype=np.uint8)
    lengths = np.where(long_b, DF17_BYTES, DF11_BYTES).astype(np.int64)
    if long_b.any():
        data[long_b] = assemble_long_frames(
            icao[long_b], np.asarray(me_bits)[long_b]
        )
    short_b = ~long_b
    if short_b.any():
        data[short_b, :DF11_BYTES] = assemble_short_frames(icao[short_b])
    return data, lengths
