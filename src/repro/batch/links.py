"""Batch 1090 MHz link engine: every squitter's power in one pass.

Replicates :class:`repro.environment.links.AdsbLinkModel` draw for
draw. The scalar model consumes, per event in time order:

1. a shadowing candidate ``normal(0, shadow_sigma)`` — ``setdefault``
   evaluates its argument eagerly, so this is drawn on EVERY event and
   discarded unless the event is its aircraft's first;
2. a leakage candidate ``normal(0, leak_sigma)`` — same eager draw;
3. iff the event opens a new (aircraft, coherence-block) fading key:
   two normals (Rician I then Q).

``Generator.normal(loc, scale)`` is ``loc + scale*standard_normal()``
and a batched ``standard_normal(n)`` consumes the bit stream exactly
like n scalar calls, so the whole capture's randomness is ONE
``standard_normal(total)`` call indexed by per-event offsets. This is
the draw-order discipline documented in docs/performance.md; the
equivalence suite holds it to fixed-seed agreement with the scalar
path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.batch.geomcache import BatchRays
from repro.batch.schedule import BatchSquitters
from repro.engines.pathcache import get_path_cache
from repro.engines.registry import resolve_engine
from repro.environment.links import ADSB_FREQ_HZ
from repro.environment.site import SiteEnvironment
from repro.rf.fading import rician_fading_db_from_normals
from repro.sdr.antenna import Antenna


def batch_received_power_dbm(
    env: SiteEnvironment,
    rx_antenna: Antenna,
    squitters: BatchSquitters,
    rays: BatchRays,
    rng: np.random.Generator,
    rician_k_db: float,
    coherence_time_s: float,
    engine: Any = None,
) -> np.ndarray:
    """Received power at the SDR input for every event, in dBm.

    Events must be time-sorted (as :func:`build_batch_squitters`
    returns them); the RNG is advanced exactly as the scalar model
    would advance it over the same events. The stage consumes
    randomness, so its path-cache entry keys on the generator's
    bit-stream position alongside the static content — a hit replays
    the stored powers and fast-forwards the RNG to the saved
    post-stage state.
    """
    n = squitters.n
    if n == 0:
        return np.empty(0, dtype=np.float64)
    eng = resolve_engine(engine)
    return get_path_cache().get_or_compute_rng(
        (
            "batch_rx_power",
            eng.kernel_token,
            env.shadowing_sigma_db,
            env.leakage_sigma_db,
            env.leakage_base_db,
            rx_antenna,
            squitters.time_s,
            squitters.aircraft_idx,
            squitters.tx_power_w,
            rays.slant_m,
            rays.azimuth_deg,
            rays.obstruction_db,
            rician_k_db,
            coherence_time_s,
        ),
        rng,
        lambda: _received_power_compute(
            env,
            rx_antenna,
            squitters,
            rays,
            rng,
            rician_k_db,
            coherence_time_s,
            eng.kernels,
        ),
    )


def _received_power_compute(
    env: SiteEnvironment,
    rx_antenna: Antenna,
    squitters: BatchSquitters,
    rays: BatchRays,
    rng: np.random.Generator,
    rician_k_db: float,
    coherence_time_s: float,
    kernels: Any,
) -> np.ndarray:
    n = squitters.n
    tx_dbm = 10.0 * np.log10(squitters.tx_power_w * 1000.0)
    path = kernels.fspl_db(rays.slant_m, ADSB_FREQ_HZ)
    rx_gain = rx_antenna.gain_at_array(ADSB_FREQ_HZ, rays.azimuth_deg)
    unobstructed_dbm = tx_dbm - path + rx_gain

    ai = squitters.aircraft_idx
    block = np.floor_divide(
        squitters.time_s, coherence_time_s
    ).astype(np.int64)
    b_min = int(block.min())
    b_span = int(block.max()) - b_min + 1
    fade_key = ai * b_span + (block - b_min)
    _, fade_first, fade_inverse = np.unique(
        fade_key, return_index=True, return_inverse=True
    )
    is_new_fade = np.zeros(n, dtype=bool)
    is_new_fade[fade_first] = True

    # One batched draw covering the whole capture: 2 candidates per
    # event + 2 Rician quadratures per new fading key, laid out in
    # event order.
    counts = 2 + 2 * is_new_fade.astype(np.int64)
    ends = np.cumsum(counts)
    offsets = ends - counts
    z = rng.standard_normal(int(ends[-1]))

    _, a_first, a_inverse = np.unique(ai, return_index=True, return_inverse=True)
    shadow = (env.shadowing_sigma_db * z[offsets[a_first]])[a_inverse]
    leak = (env.leakage_sigma_db * z[offsets[a_first] + 1])[a_inverse]
    fade = rician_fading_db_from_normals(
        z[offsets[fade_first] + 2],
        z[offsets[fade_first] + 3],
        rician_k_db,
    )[fade_inverse]

    return kernels.received_power_dbm(
        unobstructed_dbm,
        rays.obstruction_db,
        shadow,
        leak,
        env.leakage_base_db,
        fade,
    )
