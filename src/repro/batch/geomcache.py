"""Per-capture geometry/obstruction cache over track segments.

Ray geometry and obstruction attenuation change slowly along an
aircraft's track: at 260 m/s, successive squitters 0.1 s apart move
the transmitter ~26 m — a ~0.03° bearing change at 50 km. With a
positive ``epsilon_m``, each aircraft's track is cut into along-track
segments of that length, the geometry + obstruction stack is computed
once per (aircraft, segment) anchor — the segment's first event — and
every other event in the segment reuses the anchor's values.

``epsilon_m <= 0`` (the default everywhere) disables the
approximation: every event is its own anchor and the results are
exactly the per-event computation. The equivalence suite runs in this
mode; campaigns that can tolerate a bounded geometry staleness opt in
via ``DirectionalEvaluator.geometry_epsilon_m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.batch.schedule import BatchSquitters
from repro.engines import kernels_numpy as _default_kernels
from repro.engines.pathcache import get_path_cache
from repro.engines.registry import resolve_engine
from repro.environment.obstruction import ObstructionMap
from repro.geo.coords import GeoPoint, geo_to_enu_arrays


@dataclass
class BatchRays:
    """Per-event arrival geometry + obstruction loss.

    Attributes:
        azimuth_deg / elevation_deg / slant_m: arrival geometry per
            event (slant clamped to >= 1 m like ``ray_geometry``).
        obstruction_db: obstruction-map loss per event.
        n_anchors: how many (aircraft, segment) anchors were actually
            computed; equals the event count when the cache is off.
    """

    azimuth_deg: np.ndarray
    elevation_deg: np.ndarray
    slant_m: np.ndarray
    obstruction_db: np.ndarray
    n_anchors: int


def ray_arrays(
    origin: GeoPoint,
    lat_deg: np.ndarray,
    lon_deg: np.ndarray,
    alt_m: np.ndarray,
    kernels: Any = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch ``ray_geometry``: (azimuth, elevation, clamped slant).

    Mirrors the scalar ENU property chain, including
    ``atan2(0, 0) = 0`` for the degenerate straight-up ray.
    ``kernels`` is an engine kernel namespace; the numpy baseline
    runs when none is given.
    """
    east, north, up = geo_to_enu_arrays(origin, lat_deg, lon_deg, alt_m)
    if kernels is None:
        kernels = _default_kernels
    return kernels.rays_from_enu(east, north, up)


def batch_rays(
    origin: GeoPoint,
    obstruction_map: ObstructionMap,
    freq_hz: float,
    squitters: BatchSquitters,
    speeds_ms: np.ndarray,
    epsilon_m: float = 0.0,
    engine: Any = None,
) -> BatchRays:
    """Geometry + obstruction for every event, cached per segment.

    ``speeds_ms`` is the per-aircraft ground speed (indexable by
    ``squitters.aircraft_idx``), used to convert elapsed time into
    along-track displacement for segment bucketing. The whole result
    is content-keyed in the path cache: a second capture with the
    same node position, obstruction map, frequency, and event set
    replays these arrays without recomputing a single ray.
    """
    n = squitters.n
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return BatchRays(empty, empty, empty, empty, 0)
    eng = resolve_engine(engine)
    return get_path_cache().get_or_compute(
        (
            "batch_rays",
            eng.kernel_token,
            origin,
            obstruction_map,
            freq_hz,
            squitters.lat_deg,
            squitters.lon_deg,
            squitters.alt_m,
            squitters.time_s,
            squitters.aircraft_idx,
            speeds_ms,
            epsilon_m,
        ),
        lambda: _batch_rays_compute(
            origin,
            obstruction_map,
            freq_hz,
            squitters,
            speeds_ms,
            epsilon_m,
            eng.kernels,
        ),
    )


def _batch_rays_compute(
    origin: GeoPoint,
    obstruction_map: ObstructionMap,
    freq_hz: float,
    squitters: BatchSquitters,
    speeds_ms: np.ndarray,
    epsilon_m: float,
    kernels: Any,
) -> BatchRays:
    n = squitters.n
    if epsilon_m <= 0.0:
        az, el, slant = ray_arrays(
            origin,
            squitters.lat_deg,
            squitters.lon_deg,
            squitters.alt_m,
            kernels=kernels,
        )
        obstruction = obstruction_map.loss_db_array(
            az, el, freq_hz, slant
        )
        return BatchRays(az, el, slant, obstruction, n)

    ai = squitters.aircraft_idx
    # Elapsed time since each aircraft's first event (events are
    # time-sorted, so a running minimum per aircraft is just the first
    # occurrence).
    _, first_pos = np.unique(ai, return_index=True)
    t_first = np.zeros(int(ai.max()) + 1, dtype=np.float64)
    t_first[ai[first_pos]] = squitters.time_s[first_pos]
    moved_m = speeds_ms[ai] * (squitters.time_s - t_first[ai])
    segment = np.floor_divide(moved_m, epsilon_m).astype(np.int64)
    seg_min = int(segment.min())
    seg_span = int(segment.max()) - seg_min + 1
    key = ai * seg_span + (segment - seg_min)
    _, anchor_idx, inverse = np.unique(
        key, return_index=True, return_inverse=True
    )
    az_a, el_a, slant_a = ray_arrays(
        origin,
        squitters.lat_deg[anchor_idx],
        squitters.lon_deg[anchor_idx],
        squitters.alt_m[anchor_idx],
        kernels=kernels,
    )
    obstruction_a = obstruction_map.loss_db_array(
        az_a, el_a, freq_hz, slant_a
    )
    return BatchRays(
        azimuth_deg=az_a[inverse],
        elevation_deg=el_a[inverse],
        slant_m=slant_a[inverse],
        obstruction_db=obstruction_a[inverse],
        n_anchors=int(anchor_idx.size),
    )
