"""Batched squitter schedule: the population's transmissions as arrays.

The scalar path (``TrafficSimulator.squitters_between``) materializes a
``SquitterEvent`` object per transmission — frame included — before the
link model has said whether the squitter is even receivable. Here the
schedule is flat arrays (times, positions, velocities, kinds), frames
are NOT built, and the engine constructs Python frame objects only for
the thresholded subset.

RNG discipline: the scalar path draws one uniform jitter per event, per
(aircraft, kind) block, aircraft in construction order, kinds in
``position, velocity, identification, acquisition`` order.
``Transponder.schedule_times`` draws each block as one batched
``rng.uniform`` call — bit-identical to the scalar sequence — and this
module visits blocks in exactly that order.

Sort discipline: the scalar path stable-sorts each aircraft's events by
time, then stable-sorts the concatenation. A single stable argsort of
the (aircraft-major, kind-block-minor) concatenation yields the same
permutation: ties keep concatenation order either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adsb.transponder import (
    ACQUISITION_INTERVAL_S,
    IDENT_INTERVAL_S,
    POSITION_INTERVAL_S,
    VELOCITY_INTERVAL_S,
)
from repro.airspace.aircraft import MS_TO_KT
from repro.airspace.traffic import TrafficSimulator
from repro.engines.pathcache import get_path_cache

#: Kind indices into :data:`KIND_INTERVALS`.
KIND_POSITION = 0
KIND_VELOCITY = 1
KIND_IDENTIFICATION = 2
KIND_ACQUISITION = 3

#: Kinds in the scalar path's RNG-draw order.
KIND_INTERVALS = (
    POSITION_INTERVAL_S,
    VELOCITY_INTERVAL_S,
    IDENT_INTERVAL_S,
    ACQUISITION_INTERVAL_S,
)


@dataclass
class BatchSquitters:
    """Every squitter of a capture, as time-sorted parallel arrays.

    Attributes:
        time_s: jittered transmission times, ascending.
        aircraft_idx: index into ``traffic.aircraft`` per event.
        kind_idx: squitter kind per event (``KIND_*`` constants).
        pos_seq: for position squitters, the event's index within its
            aircraft's position block in generation order — this is
            what determines the CPR even/odd parity; -1 otherwise.
        lat_deg / lon_deg / alt_m: transmitter position per event
            (longitudes normalized to [-180, 180)).
        east_kt / north_kt: ground-velocity components per event.
        tx_power_w: transponder output power per event.
    """

    time_s: np.ndarray
    aircraft_idx: np.ndarray
    kind_idx: np.ndarray
    pos_seq: np.ndarray
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    alt_m: np.ndarray
    east_kt: np.ndarray
    north_kt: np.ndarray
    tx_power_w: np.ndarray

    @property
    def n(self) -> int:
        return int(self.time_s.size)


def traffic_content_token(traffic: TrafficSimulator) -> tuple:
    """The content that determines a population's squitter schedule.

    Compact arrays (fast to hash) covering everything the schedule
    and the sampled trajectories depend on — deliberately EXCLUDING
    the transponder's mutable CPR parity state, which affects frame
    bits but never the schedule. Computed fresh on every call
    (sub-ms for a fleet-sized population) so in-place mutations of
    the traffic are always observed; memoizing by object identity
    would hide them.
    """
    aircraft = traffic.aircraft
    return (
        np.array(
            [ac.transponder.icao.value for ac in aircraft],
            dtype=np.int64,
        ),
        "\0".join(ac.transponder.callsign for ac in aircraft),
        np.array(
            [
                (
                    ac.transponder.tx_power_w,
                    ac.transponder.jitter_s,
                    ac.route.start.lat_deg,
                    ac.route.start.lon_deg,
                    ac.route.start.alt_m,
                    ac.route.track_deg,
                    ac.route.speed_ms,
                    ac.route.start_time_s,
                )
                for ac in aircraft
            ],
            dtype=np.float64,
        ),
    )


def build_batch_squitters(
    traffic: TrafficSimulator,
    t0_s: float,
    t1_s: float,
    rng: np.random.Generator,
) -> BatchSquitters:
    """The population's schedule in [t0, t1) as sorted arrays.

    Consumes exactly the jitter draws ``traffic.squitters_between``
    would, in the same order, and returns events in the same sorted
    order (ties included). The stage draws jitter, so its path-cache
    entry keys on the RNG bit-stream position; a hit replays the
    arrays and fast-forwards the generator past the jitter draws.
    """
    return get_path_cache().get_or_compute_rng(
        (
            "batch_schedule",
            traffic_content_token(traffic),
            t0_s,
            t1_s,
        ),
        rng,
        lambda: _build_batch_squitters_compute(traffic, t0_s, t1_s, rng),
    )


def _build_batch_squitters_compute(
    traffic: TrafficSimulator,
    t0_s: float,
    t1_s: float,
    rng: np.random.Generator,
) -> BatchSquitters:
    times_parts = []
    aidx_parts = []
    kind_parts = []
    pseq_parts = []
    power_parts = []
    lat_parts = []
    lon_parts = []
    alt_parts = []
    ekt_parts = []
    nkt_parts = []
    for ai, ac in enumerate(traffic.aircraft):
        tp = ac.transponder
        ac_times = []
        ac_kinds = []
        ac_pseq = []
        for kind_idx, interval_s in enumerate(KIND_INTERVALS):
            ts = tp.schedule_times(t0_s, t1_s, interval_s, rng)
            ac_times.append(ts)
            ac_kinds.append(np.full(ts.size, kind_idx, dtype=np.int64))
            if kind_idx == KIND_POSITION:
                ac_pseq.append(np.arange(ts.size, dtype=np.int64))
            else:
                ac_pseq.append(np.full(ts.size, -1, dtype=np.int64))
        t = np.concatenate(ac_times)
        lat, lon, track = ac.route.sample_arrays(t)
        east_kt = (
            ac.route.speed_ms * np.sin(np.radians(track)) * MS_TO_KT
        )
        north_kt = (
            ac.route.speed_ms * np.cos(np.radians(track)) * MS_TO_KT
        )
        times_parts.append(t)
        aidx_parts.append(np.full(t.size, ai, dtype=np.int64))
        kind_parts.append(np.concatenate(ac_kinds))
        pseq_parts.append(np.concatenate(ac_pseq))
        power_parts.append(
            np.full(t.size, tp.tx_power_w, dtype=np.float64)
        )
        lat_parts.append(lat)
        lon_parts.append(lon)
        alt_parts.append(
            np.full(t.size, ac.route.start.alt_m, dtype=np.float64)
        )
        ekt_parts.append(east_kt)
        nkt_parts.append(north_kt)

    time_s = np.concatenate(times_parts) if times_parts else np.empty(0)
    order = np.argsort(time_s, kind="stable")
    return BatchSquitters(
        time_s=time_s[order],
        aircraft_idx=_cat(aidx_parts, np.int64)[order],
        kind_idx=_cat(kind_parts, np.int64)[order],
        pos_seq=_cat(pseq_parts, np.int64)[order],
        lat_deg=_cat(lat_parts, np.float64)[order],
        lon_deg=_cat(lon_parts, np.float64)[order],
        alt_m=_cat(alt_parts, np.float64)[order],
        east_kt=_cat(ekt_parts, np.float64)[order],
        north_kt=_cat(nkt_parts, np.float64)[order],
        tx_power_w=_cat(power_parts, np.float64)[order],
    )


def _cat(parts, dtype) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts)
