"""Antenna gain model.

A real wide-band antenna has roughly flat gain inside its rated band
and rolls off outside it — it still receives strong out-of-band
signals (the paper measured 213 MHz TV on a 700-2700 MHz antenna),
just with reduced efficiency. We model that with a per-octave rolloff
outside the rated edges plus an optional azimuth gain pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class Antenna:
    """An antenna with a rated band and out-of-band rolloff.

    Attributes:
        low_hz / high_hz: rated band edges.
        gain_dbi: in-band peak gain.
        rolloff_db_per_octave: gain slope outside the rated band.
        azimuth_pattern: optional function bearing_deg -> relative gain
            in dB (0 for omni); lets experiments model directional
            antennas without subclassing.
    """

    low_hz: float
    high_hz: float
    gain_dbi: float = 2.0
    rolloff_db_per_octave: float = 9.0
    azimuth_pattern: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.low_hz < self.high_hz:
            raise ValueError(
                f"bad antenna band: [{self.low_hz}, {self.high_hz}]"
            )
        if self.rolloff_db_per_octave < 0.0:
            raise ValueError(
                f"rolloff must be >= 0: {self.rolloff_db_per_octave}"
            )

    def in_band(self, freq_hz: float) -> bool:
        """Whether a frequency is inside the rated band."""
        return self.low_hz <= freq_hz <= self.high_hz

    def gain_at(self, freq_hz: float, bearing_deg: float = 0.0) -> float:
        """Effective gain in dBi toward ``bearing_deg`` at ``freq_hz``."""
        if freq_hz <= 0.0:
            raise ValueError(f"frequency must be positive: {freq_hz}")
        gain = self.gain_dbi
        if freq_hz < self.low_hz:
            octaves = math.log2(self.low_hz / freq_hz)
            gain -= self.rolloff_db_per_octave * octaves
        elif freq_hz > self.high_hz:
            octaves = math.log2(freq_hz / self.high_hz)
            gain -= self.rolloff_db_per_octave * octaves
        if self.azimuth_pattern is not None:
            gain += self.azimuth_pattern(bearing_deg % 360.0)
        return gain

    def gain_at_array(
        self, freq_hz: float, bearing_deg: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`gain_at`: one frequency, many bearings.

        The frequency-dependent part is scalar (one carrier per batch);
        an ``azimuth_pattern`` is an arbitrary Python callable, so it
        falls back to a per-bearing loop — omni antennas (the common
        case) stay fully vectorized.
        """
        if freq_hz <= 0.0:
            raise ValueError(f"frequency must be positive: {freq_hz}")
        gain = self.gain_dbi
        if freq_hz < self.low_hz:
            octaves = math.log2(self.low_hz / freq_hz)
            gain -= self.rolloff_db_per_octave * octaves
        elif freq_hz > self.high_hz:
            octaves = math.log2(freq_hz / self.high_hz)
            gain -= self.rolloff_db_per_octave * octaves
        b = np.asarray(bearing_deg, dtype=np.float64)
        if self.azimuth_pattern is None:
            return np.full(b.shape, gain, dtype=np.float64)
        return np.array(
            [gain + self.azimuth_pattern(float(x) % 360.0) for x in b],
            dtype=np.float64,
        )

    def gain_at_multifreq(
        self, freq_hz: np.ndarray, bearing_deg: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`gain_at`: per-element frequency AND bearing.

        The §3.2 batch kernels evaluate every tower at its own carrier
        in one pass. The rolloff arms are computed everywhere and
        masked (their logs are always of positive ratios), matching
        the scalar branch values element for element.
        """
        f = np.asarray(freq_hz, dtype=np.float64)
        if np.any(f <= 0.0):
            raise ValueError("frequencies must be positive")
        below = f < self.low_hz
        above = f > self.high_hz
        gain = np.full(f.shape, self.gain_dbi, dtype=np.float64)
        gain -= self.rolloff_db_per_octave * np.where(
            below, np.log2(self.low_hz / f), 0.0
        )
        gain -= self.rolloff_db_per_octave * np.where(
            above, np.log2(f / self.high_hz), 0.0
        )
        b = np.asarray(bearing_deg, dtype=np.float64)
        if self.azimuth_pattern is None:
            return gain + np.zeros(b.shape, dtype=np.float64)
        return gain + np.array(
            [self.azimuth_pattern(float(x) % 360.0) for x in b],
            dtype=np.float64,
        )


#: The 700-2700 MHz wide-band antenna used in the paper's testbed.
WIDEBAND_700_2700 = Antenna(low_hz=700e6, high_hz=2700e6, gain_dbi=2.0)
