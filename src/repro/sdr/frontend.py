"""SDR receiver front-end model.

Captures the receiver properties the calibration pipeline depends on:
tuning range (a node can only be evaluated at frequencies its SDR can
reach), noise figure (sets the decode floor), fixed RF gain, and the
full-scale reference that converts absolute input power into the dBFS
numbers the paper's TV experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.noise import noise_floor_dbm
from repro.rf.units import dbm_to_dbfs


class TuningError(ValueError):
    """Requested frequency is outside the SDR's tuning range."""


@dataclass(frozen=True)
class SdrFrontEnd:
    """A software-defined radio receiver.

    Attributes:
        name: model name, for reports.
        min_freq_hz / max_freq_hz: tuning range.
        max_sample_rate_hz: maximum complex sample rate.
        noise_figure_db: cascade noise figure at the antenna port.
        gain_db: fixed RF/IF gain (the paper fixes gain to avoid AGC
            artifacts).
        full_scale_dbm: input power that drives the ADC to full scale
            at ``gain_db`` — the dBFS reference point.
        adc_bits: ADC resolution, bounding the dynamic range.
    """

    name: str
    min_freq_hz: float
    max_freq_hz: float
    max_sample_rate_hz: float
    noise_figure_db: float = 7.0
    gain_db: float = 40.0
    full_scale_dbm: float = -20.0
    adc_bits: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.min_freq_hz < self.max_freq_hz:
            raise ValueError(
                f"bad tuning range [{self.min_freq_hz}, {self.max_freq_hz}]"
            )
        if self.max_sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive: {self.max_sample_rate_hz}"
            )
        if self.adc_bits < 1:
            raise ValueError(f"adc_bits must be >= 1: {self.adc_bits}")

    def can_tune(self, freq_hz: float) -> bool:
        """Whether ``freq_hz`` is inside the tuning range."""
        return self.min_freq_hz <= freq_hz <= self.max_freq_hz

    def check_tune(self, freq_hz: float) -> None:
        """Raise :class:`TuningError` if the frequency is unreachable."""
        if not self.can_tune(freq_hz):
            raise TuningError(
                f"{self.name} cannot tune {freq_hz / 1e6:.3f} MHz "
                f"(range {self.min_freq_hz / 1e6:.0f}-"
                f"{self.max_freq_hz / 1e6:.0f} MHz)"
            )

    def noise_floor_dbm(self, bandwidth_hz: float) -> float:
        """Receiver noise floor over ``bandwidth_hz``."""
        return noise_floor_dbm(bandwidth_hz, self.noise_figure_db)

    def input_dbm_to_dbfs(self, power_dbm: float) -> float:
        """Convert an input power into the digital dBFS reading."""
        return dbm_to_dbfs(power_dbm, self.full_scale_dbm)

    def input_dbm_to_dbfs_array(
        self, power_dbm: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`input_dbm_to_dbfs` (same affine conversion)."""
        return (
            np.asarray(power_dbm, dtype=np.float64)
            - self.full_scale_dbm
        )

    def dynamic_range_db(self) -> float:
        """Theoretical ADC dynamic range (6.02 dB per bit)."""
        return 6.02 * self.adc_bits

    def dbfs_floor(self) -> float:
        """Lowest representable level given the ADC resolution."""
        return -self.dynamic_range_db()


#: The BladeRF xA9 used in the paper (47 MHz-6 GHz, 61.44 Msps).
BLADERF_XA9 = SdrFrontEnd(
    name="BladeRF xA9",
    min_freq_hz=47e6,
    max_freq_hz=6e9,
    max_sample_rate_hz=61.44e6,
    noise_figure_db=7.0,
    gain_db=40.0,
    full_scale_dbm=-20.0,
    adc_bits=12,
)
