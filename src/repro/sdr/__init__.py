"""SDR substrate: receiver front-end and antenna models.

Models the paper's hardware — a BladeRF xA9 SDR driven through a
700-2700 MHz wide-band antenna — at the level the calibration
arithmetic needs: tuning-range checks, noise figure, fixed gain,
full-scale (dBFS) reference, and antenna gain versus frequency
including out-of-band rolloff.
"""

from repro.sdr.antenna import Antenna, WIDEBAND_700_2700
from repro.sdr.frontend import SdrFrontEnd, BLADERF_XA9, TuningError
from repro.sdr.capture import CaptureSession

__all__ = [
    "Antenna",
    "WIDEBAND_700_2700",
    "SdrFrontEnd",
    "BLADERF_XA9",
    "TuningError",
    "CaptureSession",
]
