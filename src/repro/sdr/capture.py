"""IQ capture sessions.

A :class:`CaptureSession` turns "signals present at these powers at
the antenna port" into a digitized IQ block: antenna and SDR gain are
applied, receiver noise at the configured noise figure is added, and
the result is scaled so full-scale corresponds to the SDR's
``full_scale_dbm``. This is what the TV power meter and the IQ-level
ADS-B demo capture through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dsp.iq import IQBuffer, awgn, frequency_shift
from repro.sdr.antenna import Antenna
from repro.sdr.frontend import SdrFrontEnd


@dataclass
class CaptureSession:
    """A tuned receive session on an SDR.

    Attributes:
        sdr: the receiver front end.
        antenna: the connected antenna.
        center_freq_hz: RF tuning frequency.
        sample_rate_hz: capture sample rate.
    """

    sdr: SdrFrontEnd
    antenna: Antenna
    center_freq_hz: float
    sample_rate_hz: float

    def __post_init__(self) -> None:
        self.sdr.check_tune(self.center_freq_hz)
        if not 0.0 < self.sample_rate_hz <= self.sdr.max_sample_rate_hz:
            raise ValueError(
                f"sample rate {self.sample_rate_hz} outside "
                f"(0, {self.sdr.max_sample_rate_hz}]"
            )

    def full_scale_amplitude_for(self, power_dbm: float) -> float:
        """Digital amplitude (fraction of full scale) for an input power.

        Full scale (amplitude 1.0) corresponds to
        ``sdr.full_scale_dbm`` at the antenna port; power scales as
        amplitude squared.
        """
        rel_db = power_dbm - self.sdr.full_scale_dbm
        return 10.0 ** (rel_db / 20.0)

    def noise_power_fullscale(self) -> float:
        """Receiver noise power in full-scale units over the capture BW."""
        noise_dbm = self.sdr.noise_floor_dbm(self.sample_rate_hz)
        rel_db = noise_dbm - self.sdr.full_scale_dbm
        return 10.0 ** (rel_db / 10.0)

    def capture(
        self,
        signals: List[Tuple[np.ndarray, float]],
        rng: np.random.Generator,
        n_samples: int,
    ) -> IQBuffer:
        """Digitize ``n_samples`` of the given baseband signals.

        Args:
            signals: (unit-power baseband waveform, power_dbm at the
                antenna port) pairs, already frequency-shifted to their
                offset within the capture bandwidth. Waveforms shorter
                than ``n_samples`` are zero-padded (burst signals).
            rng: noise source.
            n_samples: capture length.

        Returns:
            An :class:`IQBuffer` in full-scale units with receiver
            noise added.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        out = awgn(rng, n_samples, self.noise_power_fullscale())
        for waveform, power_dbm in signals:
            amplitude = self.full_scale_amplitude_for(power_dbm)
            n = min(len(waveform), n_samples)
            out[:n] += amplitude * waveform[:n]
        return IQBuffer(out, self.sample_rate_hz, self.center_freq_hz)


@dataclass
class WidebandCapture(CaptureSession):
    """One wide capture whose band covers several channels at once.

    The §3.2 channelizer path digitizes every in-band tower into one
    IQ block instead of one :meth:`CaptureSession.capture` per
    channel. Receiver noise is drawn **once** over the full capture
    bandwidth, not once per channel.

    RNG draw-order contract (the same discipline as ``repro.batch``):
    callers synthesize the per-channel waveforms first, in ascending
    channel-frequency order, then :meth:`capture_channels` consumes
    exactly one ``awgn`` block (2 * n_samples standard normals). A
    fixed seed therefore reproduces the capture bit for bit, and the
    equivalence suite pins it.
    """

    def capture_channels(
        self,
        signals: List[Tuple[np.ndarray, float, float]],
        rng: np.random.Generator,
        n_samples: int,
    ) -> IQBuffer:
        """Digitize several channels' signals into one block.

        Args:
            signals: (unit-power baseband waveform, channel offset in
                Hz from the capture center, power_dbm at the antenna
                port) triples. Waveforms are synthesized at their own
                channel's baseband; this method shifts each to its
                offset inside the capture band.
            rng: noise source (one draw for the whole capture).
            n_samples: capture length.

        Returns:
            An :class:`IQBuffer` in full-scale units with receiver
            noise over the full capture bandwidth added.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive: {n_samples}")
        nyquist = self.sample_rate_hz / 2.0
        out = awgn(rng, n_samples, self.noise_power_fullscale())
        for waveform, offset_hz, power_dbm in signals:
            if abs(offset_hz) >= nyquist:
                raise ValueError(
                    f"channel offset {offset_hz} Hz outside the "
                    f"+/-{nyquist} Hz capture band"
                )
            amplitude = self.full_scale_amplitude_for(power_dbm)
            n = min(len(waveform), n_samples)
            shifted = waveform[:n]
            if offset_hz != 0.0:
                shifted = frequency_shift(
                    shifted, offset_hz, self.sample_rate_hz
                )
            out[:n] += amplitude * shifted
        return IQBuffer(out, self.sample_rate_hz, self.center_freq_hz)
