"""FFT-based wideband channelizer.

Crowd-sourced sensing platforms (Electrosense, RadioHound) capture a
wide band once and read every channel of interest out of the same IQ
block, because per-channel sweeps do not scale to fleet-sized
workloads. This module is that shape for the §3.2 pipeline: a
:class:`Channelizer` takes one wideband capture, runs one FFT, and
reports per-channel band power with the exact bin convention of
:func:`repro.dsp.power.parseval_band_power`; polyphase-style channel
extraction (:meth:`Channelizer.extract_channel`) recovers a decimated
baseband time series for any channel from the same spectrum.

:func:`plan_capture_groups` decides how many captures a band needs:
channels are greedily packed into windows no wider than the SDR's
usable sample rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Smallest power reported by the dBFS readers (= -150 dBFS), matching
#: repro.dsp.power's floor.
_POWER_FLOOR = 1e-15


@dataclass(frozen=True)
class ChannelSpec:
    """One channel inside a wideband capture.

    Attributes:
        label: channel name, for reports ("K22CC", "ch36", ...).
        offset_hz: channel center relative to the capture center.
        bandwidth_hz: occupied bandwidth to integrate over.
    """

    label: str
    offset_hz: float
    bandwidth_hz: float

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ValueError(
                f"bandwidth must be positive: {self.bandwidth_hz}"
            )

    @property
    def low_hz(self) -> float:
        return self.offset_hz - self.bandwidth_hz / 2.0

    @property
    def high_hz(self) -> float:
        return self.offset_hz + self.bandwidth_hz / 2.0


@dataclass
class Channelizer:
    """Reads every configured channel out of one wideband IQ block.

    One FFT per block; each channel's power is the Parseval sum over
    its frequency bins — the same ``(freqs >= low) & (freqs <= high)``
    mask :func:`repro.dsp.power.parseval_band_power` uses, so the two
    agree channel for channel on the same samples.

    Attributes:
        sample_rate_hz: capture sample rate.
        channels: channels to extract; all must fit inside the
            capture's Nyquist band.
    """

    sample_rate_hz: float
    channels: Sequence[ChannelSpec]
    _masks: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive: {self.sample_rate_hz}"
            )
        self.channels = tuple(self.channels)
        if not self.channels:
            raise ValueError("need at least one channel")
        nyquist = self.sample_rate_hz / 2.0
        for spec in self.channels:
            if abs(spec.offset_hz) + spec.bandwidth_hz / 2.0 > nyquist:
                raise ValueError(
                    f"channel {spec.label!r} at offset {spec.offset_hz}"
                    f" Hz does not fit in a {self.sample_rate_hz} Hz"
                    " capture"
                )

    def _channel_masks(self, n: int) -> np.ndarray:
        """(n_channels, n) boolean bin masks for an n-point FFT."""
        if n not in self._masks:
            freqs = np.fft.fftfreq(n, d=1.0 / self.sample_rate_hz)
            self._masks[n] = np.stack(
                [
                    (freqs >= spec.low_hz) & (freqs <= spec.high_hz)
                    for spec in self.channels
                ]
            )
        return self._masks[n]

    def band_powers(self, samples: np.ndarray) -> np.ndarray:
        """Linear power per channel from one FFT of the block."""
        n = len(samples)
        if n == 0:
            raise ValueError("cannot measure power of an empty block")
        psd = np.abs(np.fft.fft(samples)) ** 2
        masks = self._channel_masks(n)
        return masks @ psd / (n * n)

    def band_powers_dbfs(
        self, samples: np.ndarray, full_scale: float = 1.0
    ) -> np.ndarray:
        """Per-channel band power in dBFS."""
        if full_scale <= 0.0:
            raise ValueError(
                f"full scale must be positive: {full_scale}"
            )
        powers = self.band_powers(samples) / (full_scale**2)
        return 10.0 * np.log10(np.maximum(powers, _POWER_FLOOR))

    def extract_channel(
        self, samples: np.ndarray, index: int
    ) -> Tuple[np.ndarray, float]:
        """Polyphase-style extraction of one channel at a reduced rate.

        Selects the channel's FFT bins, recenters them at baseband, and
        inverse-transforms at the decimated rate. The extracted block's
        mean power equals the channel's bin power (amplitudes are
        rescaled by the decimation ratio), so power read either way
        agrees.

        Returns:
            (baseband samples, decimated sample rate in Hz).
        """
        n = len(samples)
        if n == 0:
            raise ValueError("cannot extract from an empty block")
        spec = self.channels[index]
        df = self.sample_rate_hz / n
        half_bins = int(math.ceil((spec.bandwidth_hz / 2.0) / df))
        center_bin = int(round(spec.offset_hz / df))
        nsub = 2 * half_bins + 1
        if nsub > n:
            raise ValueError(
                f"channel {spec.label!r} needs {nsub} bins but the"
                f" block only has {n}"
            )
        spectrum = np.fft.fft(samples)
        # Sub-spectrum bins in FFT order: 0, +1, ..., +half, -half, ..., -1.
        order = np.fft.fftfreq(nsub, d=1.0 / nsub).astype(np.int64)
        sub = spectrum[(center_bin + order) % n]
        baseband = np.fft.ifft(sub) * (nsub / n)
        return baseband, nsub * df


def plan_capture_groups(
    edges_hz: Sequence[Tuple[float, float]], max_span_hz: float
) -> List[List[int]]:
    """Pack channels into capture windows no wider than ``max_span_hz``.

    Greedy over channels sorted by lower edge: a channel joins the
    current window while the combined span still fits; otherwise it
    opens a new one. Returns groups of indices into ``edges_hz``
    (each group sorted by frequency).
    """
    if max_span_hz <= 0.0:
        raise ValueError(
            f"max span must be positive: {max_span_hz}"
        )
    for low, high in edges_hz:
        if high <= low:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        if high - low > max_span_hz:
            raise ValueError(
                f"channel [{low}, {high}] is wider than the"
                f" {max_span_hz} Hz capture limit"
            )
    from repro.engines.pathcache import get_path_cache

    # The plan is a pure function of the frequency set and the SDR's
    # usable span; fleet runs re-plan the same band layout per node,
    # so the result is path-cached (fresh lists returned per call).
    groups = get_path_cache().get_or_compute(
        (
            "capture_groups",
            tuple((float(lo), float(hi)) for lo, hi in edges_hz),
            float(max_span_hz),
        ),
        lambda: _plan_capture_groups_compute(edges_hz, max_span_hz),
    )
    return [list(group) for group in groups]


def _plan_capture_groups_compute(
    edges_hz: Sequence[Tuple[float, float]], max_span_hz: float
) -> Tuple[Tuple[int, ...], ...]:
    order = sorted(
        range(len(edges_hz)), key=lambda i: edges_hz[i]
    )
    groups: List[List[int]] = []
    group_low = 0.0
    for i in order:
        low, high = edges_hz[i]
        if groups and high - group_low <= max_span_hz:
            groups[-1].append(i)
        else:
            groups.append([i])
            group_low = low
    return tuple(tuple(group) for group in groups)
