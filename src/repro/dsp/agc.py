"""Gain control models.

The paper configured the SDR with *fixed* gain "to prevent measurement
differences from automatic gain control" — so :class:`FixedGain` is
what the calibration pipeline uses, and :class:`AGC` exists to show
(and test) exactly the distortion the paper avoided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FixedGain:
    """A constant linear gain stage.

    Attributes:
        gain_db: gain applied to the signal, in dB.
    """

    gain_db: float = 0.0

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Scale a block of samples by the fixed gain."""
        scale = 10.0 ** (self.gain_db / 20.0)
        return samples * scale


@dataclass
class AGC:
    """A simple feedback AGC that normalizes average envelope power.

    Attributes:
        target_power: desired mean |x|^2 after the loop settles.
        attack: loop gain per sample in (0, 1]; larger is faster.
        max_gain_db: gain ceiling so silence does not blow up.
    """

    target_power: float = 1.0
    attack: float = 1e-3
    max_gain_db: float = 60.0

    def __post_init__(self) -> None:
        if self.target_power <= 0.0:
            raise ValueError(
                f"target power must be positive: {self.target_power}"
            )
        if not 0.0 < self.attack <= 1.0:
            raise ValueError(f"attack must be in (0, 1]: {self.attack}")

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Run the AGC loop over a block; returns the gained samples.

        Implemented sample-by-sample (vectorization would change loop
        dynamics); fine for the test-scale blocks used here.
        """
        max_gain = 10.0 ** (self.max_gain_db / 20.0)
        gain = 1.0
        out = np.empty_like(samples, dtype=np.complex128)
        for i, x in enumerate(samples):
            y = x * gain
            out[i] = y
            err = self.target_power - abs(y) ** 2
            gain = min(max(gain + self.attack * err, 1e-6), max_gain)
        return out
