"""DSP substrate: IQ buffers, filtering, and power measurement.

Implements the signal-processing chain the paper's broadcast-TV
experiment built in GNU Radio — bandpass filter a desired channel,
square the magnitude, and run a very long moving average (Parseval's
identity) — plus the IQ plumbing the ADS-B modem needs.
"""

from repro.dsp.iq import (
    IQBuffer,
    complex_tone,
    awgn,
    frequency_shift,
    mix_signals,
)
from repro.dsp.filters import (
    design_lowpass_fir,
    design_bandpass_fir,
    design_lowpass_fir_cached,
    design_bandpass_fir_cached,
    fir_filter,
    fft_fir_filter,
    moving_average,
    scaled_num_taps,
)
from repro.dsp.channelizer import (
    ChannelSpec,
    Channelizer,
    plan_capture_groups,
)
from repro.dsp.power import (
    mean_power,
    mean_power_dbfs,
    parseval_band_power,
    ParsevalPowerMeter,
)
from repro.dsp.agc import AGC, FixedGain

__all__ = [
    "IQBuffer",
    "complex_tone",
    "awgn",
    "frequency_shift",
    "mix_signals",
    "design_lowpass_fir",
    "design_bandpass_fir",
    "design_lowpass_fir_cached",
    "design_bandpass_fir_cached",
    "fir_filter",
    "fft_fir_filter",
    "moving_average",
    "scaled_num_taps",
    "ChannelSpec",
    "Channelizer",
    "plan_capture_groups",
    "mean_power",
    "mean_power_dbfs",
    "parseval_band_power",
    "ParsevalPowerMeter",
    "AGC",
    "FixedGain",
]
