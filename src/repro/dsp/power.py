"""Band-power measurement via Parseval's identity.

Reproduces the measurement program the paper wrote in GNU Radio for
Figure 4: bandpass filter the desired ATSC channel, square the
magnitude of the time-domain samples, and run a very long moving
average to obtain a live power estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import (
    design_bandpass_fir_cached,
    fft_fir_filter,
    fir_filter,
    moving_average,
)

#: Smallest power we report, to keep log10 finite (= -150 dBFS).
_POWER_FLOOR = 1e-15


def mean_power(samples: np.ndarray) -> float:
    """Mean of |x|^2 over a block of samples."""
    if len(samples) == 0:
        raise ValueError("cannot measure power of an empty block")
    return float(np.mean(np.abs(samples) ** 2))


def mean_power_dbfs(samples: np.ndarray, full_scale: float = 1.0) -> float:
    """Mean power in dB relative to a full-scale amplitude.

    A constant-envelope signal at amplitude ``full_scale`` measures
    0 dBFS.
    """
    if full_scale <= 0.0:
        raise ValueError(f"full scale must be positive: {full_scale}")
    p = mean_power(samples) / (full_scale**2)
    return 10.0 * math.log10(max(p, _POWER_FLOOR))


def parseval_band_power(
    samples: np.ndarray,
    sample_rate_hz: float,
    low_hz: float,
    high_hz: float,
) -> float:
    """Linear power within [low, high] Hz, computed in the frequency domain.

    By Parseval's identity this equals the time-domain power of the
    ideally-bandpassed signal; used as the reference the filter-based
    meter is validated against in tests.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("cannot measure power of an empty block")
    spectrum = np.fft.fftshift(np.fft.fft(samples))
    freqs = np.fft.fftshift(np.fft.fftfreq(n, d=1.0 / sample_rate_hz))
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    return float(np.sum(np.abs(spectrum[mask]) ** 2) / (n * n))


@dataclass
class ParsevalPowerMeter:
    """GNU Radio-style live band-power meter.

    Chain: complex band-pass FIR -> |x|^2 -> long moving average.
    ``read_dbfs`` reports the settled average (the last output sample
    once the moving average has seen at least one full window).

    Attributes:
        sample_rate_hz: input sample rate.
        band_low_hz: lower band edge at baseband.
        band_high_hz: upper band edge at baseband.
        num_taps: FIR length (odd).
        average_window: moving-average length in samples.
        filter_mode: "direct" convolves in the time domain (the
            original GNU Radio shape); "fft" applies the same taps
            through the overlap-save :func:`fft_fir_filter` — needed
            when long filters meet wideband rates.
    """

    sample_rate_hz: float
    band_low_hz: float
    band_high_hz: float
    num_taps: int = 257
    average_window: int = 8192
    filter_mode: str = "direct"

    def __post_init__(self) -> None:
        if self.filter_mode not in ("direct", "fft"):
            raise ValueError(
                f"filter_mode must be 'direct' or 'fft': "
                f"{self.filter_mode!r}"
            )
        # Tap design repeats with identical keys across towers and
        # runs; the cached design shares one read-only array.
        self._taps = design_bandpass_fir_cached(
            self.band_low_hz,
            self.band_high_hz,
            self.sample_rate_hz,
            self.num_taps,
        )

    def measure(self, samples: np.ndarray) -> np.ndarray:
        """Running power estimate (linear) for every input sample."""
        if self.filter_mode == "fft":
            filtered = fft_fir_filter(self._taps, samples)
        else:
            filtered = fir_filter(self._taps, samples)
        inst_power = np.abs(filtered) ** 2
        return moving_average(inst_power, self.average_window)

    def read_dbfs(self, samples: np.ndarray, full_scale: float = 1.0) -> float:
        """Settled band power in dBFS for a capture block."""
        if full_scale <= 0.0:
            raise ValueError(f"full scale must be positive: {full_scale}")
        trace = self.measure(samples)
        settled = trace[-1] / (full_scale**2)
        return 10.0 * math.log10(max(float(settled), _POWER_FLOOR))
