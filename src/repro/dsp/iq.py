"""Complex-baseband IQ sample buffers and synthesis helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IQBuffer:
    """A block of complex baseband samples with its sample rate.

    Attributes:
        samples: complex64/complex128 array of IQ samples.
        sample_rate_hz: sampling rate the block was captured at.
        center_freq_hz: RF frequency the block is centered on.
    """

    samples: np.ndarray
    sample_rate_hz: float
    center_freq_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive: {self.sample_rate_hz}"
            )
        self.samples = np.asarray(self.samples, dtype=np.complex128)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Length of the buffer in seconds."""
        return len(self.samples) / self.sample_rate_hz

    def slice_time(self, start_s: float, stop_s: float) -> "IQBuffer":
        """Extract the samples between two timestamps (seconds)."""
        if start_s < 0.0 or stop_s < start_s:
            raise ValueError(f"bad time slice [{start_s}, {stop_s}]")
        lo = int(round(start_s * self.sample_rate_hz))
        hi = int(round(stop_s * self.sample_rate_hz))
        return IQBuffer(
            self.samples[lo:hi], self.sample_rate_hz, self.center_freq_hz
        )

    def magnitude(self) -> np.ndarray:
        """|IQ| for every sample."""
        return np.abs(self.samples)

    def power(self) -> np.ndarray:
        """Instantaneous power |IQ|^2 for every sample."""
        return np.abs(self.samples) ** 2


def complex_tone(
    freq_hz: float,
    sample_rate_hz: float,
    n_samples: int,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A complex exponential at baseband offset ``freq_hz``."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0: {n_samples}")
    t = np.arange(n_samples) / sample_rate_hz
    return amplitude * np.exp(
        1j * (2.0 * np.pi * freq_hz * t + phase_rad)
    )


def awgn(
    rng: np.random.Generator, n_samples: int, noise_power: float
) -> np.ndarray:
    """Complex white Gaussian noise with total power ``noise_power``.

    Power is split evenly between I and Q, so E[|n|^2] = noise_power.
    """
    if noise_power < 0.0:
        raise ValueError(f"noise power must be >= 0: {noise_power}")
    sigma = np.sqrt(noise_power / 2.0)
    return sigma * (
        rng.standard_normal(n_samples)
        + 1j * rng.standard_normal(n_samples)
    )


def frequency_shift(
    samples: np.ndarray, shift_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """Shift a baseband signal by ``shift_hz`` (complex mixing)."""
    n = len(samples)
    t = np.arange(n) / sample_rate_hz
    return samples * np.exp(1j * 2.0 * np.pi * shift_hz * t)


def mix_signals(*signals: np.ndarray) -> np.ndarray:
    """Sum several equal-rate baseband signals, zero-padding shorter ones."""
    if not signals:
        raise ValueError("need at least one signal")
    n = max(len(s) for s in signals)
    out = np.zeros(n, dtype=np.complex128)
    for s in signals:
        out[: len(s)] += s
    return out
