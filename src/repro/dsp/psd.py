"""Power spectral density estimation (Welch) and occupancy detection.

The paper's §2: sensor hosts "may perform various processing tasks on
the I/Q data, such as signal detection or computing the Fast Fourier
Transform, before transmitting the data to the cloud". This module is
that host-side processing: a Welch PSD over a capture and a
noise-floor-relative occupancy detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import signal as sp_signal


def welch_psd(
    samples: np.ndarray,
    sample_rate_hz: float,
    nperseg: int = 1024,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD of a complex capture.

    Returns (freqs_hz, psd) with frequencies centered on zero
    (baseband) and PSD in power per Hz, both sorted ascending.
    """
    if len(samples) < nperseg:
        raise ValueError(
            f"need at least nperseg={nperseg} samples, "
            f"got {len(samples)}"
        )
    freqs, psd = sp_signal.welch(
        samples,
        fs=sample_rate_hz,
        nperseg=nperseg,
        return_onesided=False,
        detrend=False,
    )
    order = np.argsort(freqs)
    return freqs[order], psd[order]


@dataclass(frozen=True)
class OccupiedBand:
    """One detected emission in a PSD.

    Attributes:
        low_hz / high_hz: band edges (baseband, relative to capture
            center).
        peak_power_db: peak PSD inside the band, dB relative to the
            estimated noise floor.
    """

    low_hz: float
    high_hz: float
    peak_power_db: float

    @property
    def bandwidth_hz(self) -> float:
        return self.high_hz - self.low_hz

    @property
    def center_hz(self) -> float:
        return 0.5 * (self.low_hz + self.high_hz)


def estimate_noise_floor(psd: np.ndarray, quantile: float = 0.2) -> float:
    """Noise-floor estimate: a low quantile of the PSD bins.

    A wideband emission (e.g. a 5.38 MHz ATSC channel in an 8 MHz
    capture) can occupy most of the bins, so the median would land
    inside the signal; the 20th percentile stays on the noise as long
    as at least that fraction of the capture is quiet.
    """
    if len(psd) == 0:
        raise ValueError("empty PSD")
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1): {quantile}")
    return float(np.quantile(psd, quantile))


def detect_occupied_bands(
    freqs_hz: np.ndarray,
    psd: np.ndarray,
    threshold_db: float = 6.0,
    min_bins: int = 2,
) -> List[OccupiedBand]:
    """Find contiguous PSD regions above the noise floor.

    A bin is "hot" when it exceeds the median noise floor by
    ``threshold_db``; runs of at least ``min_bins`` hot bins become
    detected emissions.
    """
    if len(freqs_hz) != len(psd):
        raise ValueError("freqs and psd must align")
    if min_bins < 1:
        raise ValueError(f"min_bins must be >= 1: {min_bins}")
    floor = estimate_noise_floor(psd)
    if floor <= 0.0:
        raise ValueError("degenerate noise floor")
    hot = psd > floor * 10.0 ** (threshold_db / 10.0)
    bands: List[OccupiedBand] = []
    start = None
    for i, flag in enumerate(hot):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            if i - start >= min_bins:
                seg = psd[start:i]
                bands.append(
                    OccupiedBand(
                        low_hz=float(freqs_hz[start]),
                        high_hz=float(freqs_hz[i - 1]),
                        peak_power_db=float(
                            10.0 * np.log10(np.max(seg) / floor)
                        ),
                    )
                )
            start = None
    if start is not None and len(hot) - start >= min_bins:
        seg = psd[start:]
        bands.append(
            OccupiedBand(
                low_hz=float(freqs_hz[start]),
                high_hz=float(freqs_hz[-1]),
                peak_power_db=float(
                    10.0 * np.log10(np.max(seg) / floor)
                ),
            )
        )
    return bands
