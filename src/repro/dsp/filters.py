"""FIR filter design and application (windowed-sinc, as GNU Radio uses)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import signal as sp_signal


def design_lowpass_fir(
    cutoff_hz: float, sample_rate_hz: float, num_taps: int = 129
) -> np.ndarray:
    """Hamming-windowed low-pass FIR prototype.

    ``num_taps`` must be odd so the filter has integer group delay.
    """
    _check_taps(num_taps)
    nyquist = sample_rate_hz / 2.0
    if not 0.0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz outside (0, {nyquist}) Hz"
        )
    return sp_signal.firwin(num_taps, cutoff_hz, fs=sample_rate_hz)


def design_bandpass_fir(
    low_hz: float,
    high_hz: float,
    sample_rate_hz: float,
    num_taps: int = 257,
) -> np.ndarray:
    """Hamming-windowed band-pass FIR for a complex baseband signal.

    Designed as a real band-pass over [low, high]; for baseband IQ the
    band edges may be negative, in which case a frequency-shifted
    low-pass is built instead.
    """
    _check_taps(num_taps)
    if high_hz <= low_hz:
        raise ValueError(f"need low < high, got [{low_hz}, {high_hz}]")
    nyquist = sample_rate_hz / 2.0
    if high_hz >= nyquist or low_hz <= -nyquist:
        raise ValueError(
            f"band [{low_hz}, {high_hz}] outside (+/-{nyquist}) Hz"
        )
    center = 0.5 * (low_hz + high_hz)
    half_width = 0.5 * (high_hz - low_hz)
    lowpass = sp_signal.firwin(num_taps, half_width, fs=sample_rate_hz)
    if center == 0.0:
        return lowpass
    n = np.arange(num_taps)
    shift = np.exp(1j * 2.0 * np.pi * center * n / sample_rate_hz)
    return lowpass * shift


@lru_cache(maxsize=256)
def _lowpass_taps(
    cutoff_hz: float, sample_rate_hz: float, num_taps: int
) -> np.ndarray:
    taps = design_lowpass_fir(cutoff_hz, sample_rate_hz, num_taps)
    taps.setflags(write=False)
    return taps


@lru_cache(maxsize=256)
def _bandpass_taps(
    low_hz: float, high_hz: float, sample_rate_hz: float, num_taps: int
) -> np.ndarray:
    taps = design_bandpass_fir(low_hz, high_hz, sample_rate_hz, num_taps)
    taps.setflags(write=False)
    return taps


def design_lowpass_fir_cached(
    cutoff_hz: float, sample_rate_hz: float, num_taps: int = 129
) -> np.ndarray:
    """Memoized :func:`design_lowpass_fir`.

    Tap design repeats with the same (cutoff, rate, taps) key across
    towers and runs; the returned array is shared and read-only, so
    callers must copy before mutating (none do — taps feed straight
    into convolution).
    """
    return _lowpass_taps(
        float(cutoff_hz), float(sample_rate_hz), int(num_taps)
    )


def design_bandpass_fir_cached(
    low_hz: float,
    high_hz: float,
    sample_rate_hz: float,
    num_taps: int = 257,
) -> np.ndarray:
    """Memoized :func:`design_bandpass_fir` (read-only shared array)."""
    return _bandpass_taps(
        float(low_hz), float(high_hz), float(sample_rate_hz), int(num_taps)
    )


def scaled_num_taps(
    base_num_taps: int, base_rate_hz: float, sample_rate_hz: float
) -> int:
    """Tap count that keeps a design's transition width in Hz.

    A Hamming-windowed FIR's transition band is ~3.3/N of the sample
    rate, so a prototype designed with ``base_num_taps`` at
    ``base_rate_hz`` needs proportionally more taps at a wider rate to
    shape the same spectrum. Result is odd (integer group delay) and
    never below the prototype length.
    """
    if base_rate_hz <= 0.0 or sample_rate_hz <= 0.0:
        raise ValueError("sample rates must be positive")
    _check_taps(base_num_taps)
    n = int(round(base_num_taps * sample_rate_hz / base_rate_hz))
    n = max(n, base_num_taps)
    return n if n % 2 == 1 else n + 1


def fir_filter(taps: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Apply an FIR filter (same-length output, zero-padded edges)."""
    if len(taps) == 0:
        raise ValueError("empty tap vector")
    return np.convolve(samples, taps, mode="same")


def fft_fir_filter(
    taps: np.ndarray,
    samples: np.ndarray,
    nfft: int = 0,
) -> np.ndarray:
    """Overlap-save frequency-domain equivalent of :func:`fir_filter`.

    Computes the identical ``np.convolve(samples, taps, mode="same")``
    result in O(N log B) instead of O(N*M) by filtering fixed-size
    blocks in the frequency domain, which is what makes long filters
    affordable at wideband capture rates (a 915-tap channel-shaping
    filter over 64k samples at 56 Msps).

    Tolerance vs. the scalar path: both routes accumulate in float64;
    FFT rounding bounds the difference at ~1e-12 relative to the
    signal's RMS (the equivalence suite asserts 1e-9). Output dtype
    matches ``fir_filter``: real when both inputs are real, complex
    otherwise.

    Args:
        taps: FIR coefficients.
        samples: input block.
        nfft: FFT block size; 0 picks a power of two sized for the
            filter (>= 4x the tap count, at least 4096).
    """
    if len(taps) == 0:
        raise ValueError("empty tap vector")
    taps_arr = np.asarray(taps)
    x = np.asarray(samples)
    m = len(taps_arr)
    n = len(x)
    complex_out = np.iscomplexobj(taps_arr) or np.iscomplexobj(x)
    if n == 0:
        return np.zeros(
            0, dtype=np.complex128 if complex_out else np.float64
        )
    if m > n:
        # np.convolve's "same" output is max(n, m) long here; keep the
        # exact scalar semantics for this degenerate shape.
        return fir_filter(taps_arr, x)
    full = n + m - 1
    if nfft <= 0:
        nfft = 1 << int(np.ceil(np.log2(max(4 * m, 4096))))
        nfft = min(nfft, 1 << int(np.ceil(np.log2(full))))
    if nfft < m:
        raise ValueError(f"nfft {nfft} shorter than the {m}-tap filter")
    step = nfft - (m - 1)
    h = np.fft.fft(taps_arr, nfft)
    padded = np.zeros(m - 1 + n, dtype=np.complex128)
    padded[m - 1 :] = x
    out = np.empty(full, dtype=np.complex128)
    pos = 0
    while pos < full:
        block = padded[pos : pos + nfft]
        if len(block) < nfft:
            block = np.concatenate(
                [block, np.zeros(nfft - len(block), dtype=np.complex128)]
            )
        y = np.fft.ifft(np.fft.fft(block) * h)
        take = min(step, full - pos)
        out[pos : pos + take] = y[m - 1 : m - 1 + take]
        pos += step
    lead = (m - 1) // 2
    result = out[lead : lead + n]
    return result if complex_out else result.real.copy()


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Causal moving average with a growing-edge start.

    The paper's TV power meter uses "a very long moving average filter"
    over magnitude-squared samples. Output[i] is the mean of the last
    ``window`` inputs (fewer at the start).
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    samples = np.asarray(samples, dtype=np.float64)
    csum = np.cumsum(samples)
    out = np.empty_like(samples)
    if window >= len(samples):
        denom = np.arange(1, len(samples) + 1)
        return csum / denom
    out[:window] = csum[:window] / np.arange(1, window + 1)
    out[window:] = (csum[window:] - csum[:-window]) / window
    return out


def _check_taps(num_taps: int) -> None:
    if num_taps < 3 or num_taps % 2 == 0:
        raise ValueError(
            f"num_taps must be an odd integer >= 3: {num_taps}"
        )
