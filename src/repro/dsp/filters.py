"""FIR filter design and application (windowed-sinc, as GNU Radio uses)."""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal


def design_lowpass_fir(
    cutoff_hz: float, sample_rate_hz: float, num_taps: int = 129
) -> np.ndarray:
    """Hamming-windowed low-pass FIR prototype.

    ``num_taps`` must be odd so the filter has integer group delay.
    """
    _check_taps(num_taps)
    nyquist = sample_rate_hz / 2.0
    if not 0.0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz outside (0, {nyquist}) Hz"
        )
    return sp_signal.firwin(num_taps, cutoff_hz, fs=sample_rate_hz)


def design_bandpass_fir(
    low_hz: float,
    high_hz: float,
    sample_rate_hz: float,
    num_taps: int = 257,
) -> np.ndarray:
    """Hamming-windowed band-pass FIR for a complex baseband signal.

    Designed as a real band-pass over [low, high]; for baseband IQ the
    band edges may be negative, in which case a frequency-shifted
    low-pass is built instead.
    """
    _check_taps(num_taps)
    if high_hz <= low_hz:
        raise ValueError(f"need low < high, got [{low_hz}, {high_hz}]")
    nyquist = sample_rate_hz / 2.0
    if high_hz >= nyquist or low_hz <= -nyquist:
        raise ValueError(
            f"band [{low_hz}, {high_hz}] outside (+/-{nyquist}) Hz"
        )
    center = 0.5 * (low_hz + high_hz)
    half_width = 0.5 * (high_hz - low_hz)
    lowpass = sp_signal.firwin(num_taps, half_width, fs=sample_rate_hz)
    if center == 0.0:
        return lowpass
    n = np.arange(num_taps)
    shift = np.exp(1j * 2.0 * np.pi * center * n / sample_rate_hz)
    return lowpass * shift


def fir_filter(taps: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Apply an FIR filter (same-length output, zero-padded edges)."""
    if len(taps) == 0:
        raise ValueError("empty tap vector")
    return np.convolve(samples, taps, mode="same")


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Causal moving average with a growing-edge start.

    The paper's TV power meter uses "a very long moving average filter"
    over magnitude-squared samples. Output[i] is the mean of the last
    ``window`` inputs (fewer at the start).
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    samples = np.asarray(samples, dtype=np.float64)
    csum = np.cumsum(samples)
    out = np.empty_like(samples)
    if window >= len(samples):
        denom = np.arange(1, len(samples) + 1)
        return csum / denom
    out[:window] = csum[:window] / np.arange(1, window + 1)
    out[window:] = (csum[window:] - csum[:-window]) / window
    return out


def _check_taps(num_taps: int) -> None:
    if num_taps < 3 or num_taps % 2 == 0:
        raise ValueError(
            f"num_taps must be an odd integer >= 3: {num_taps}"
        )
