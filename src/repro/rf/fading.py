"""Small- and large-scale fading draws.

All randomness flows through an explicitly-passed numpy Generator so
experiments are reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np


def lognormal_shadowing_db(
    rng: np.random.Generator, sigma_db: float = 6.0
) -> float:
    """One draw of log-normal shadowing, zero-mean in dB.

    ``sigma_db`` ~4 dB suits elevated LoS-ish links, 6-8 dB urban
    ground links.
    """
    if sigma_db < 0.0:
        raise ValueError(f"sigma must be non-negative: {sigma_db}")
    return float(rng.normal(0.0, sigma_db))


def rayleigh_fading_db(rng: np.random.Generator) -> float:
    """One draw of Rayleigh fading, as power gain in dB (mean 0 dB).

    Rayleigh power is exponential with unit mean, so the dB gain is
    10*log10(Exp(1)).
    """
    power = rng.exponential(1.0)
    power = max(power, 1e-12)
    return 10.0 * math.log10(power)


def rician_fading_db(rng: np.random.Generator, k_factor_db: float) -> float:
    """One draw of Rician fading as power gain in dB (mean 0 dB).

    ``k_factor_db`` is the LoS-to-scatter power ratio. Large K
    approaches no fading, K -> -inf approaches Rayleigh.
    """
    k = 10.0 ** (k_factor_db / 10.0)
    # LoS component has power k/(k+1); scatter power 1/(k+1) split
    # across two Gaussian quadratures.
    sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
    los = math.sqrt(k / (k + 1.0))
    i = rng.normal(los, sigma)
    q = rng.normal(0.0, sigma)
    power = i * i + q * q
    power = max(power, 1e-12)
    return 10.0 * math.log10(power)


def rician_fading_db_from_normals(
    i_z: np.ndarray, q_z: np.ndarray, k_factor_db: float
) -> np.ndarray:
    """Batch Rician fading from pre-drawn standard-normal deviates.

    ``Generator.normal(loc, scale)`` is computed as
    ``loc + scale * standard_normal()``, so feeding this the deviates
    of one batched ``standard_normal`` call reproduces a sequence of
    scalar :func:`rician_fading_db` calls draw-for-draw — the
    draw-order discipline the batch link engine relies on (see
    docs/performance.md).
    """
    k = 10.0 ** (k_factor_db / 10.0)
    sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
    los = math.sqrt(k / (k + 1.0))
    i = los + sigma * np.asarray(i_z, dtype=np.float64)
    q = sigma * np.asarray(q_z, dtype=np.float64)
    power = i * i + q * q
    power = np.maximum(power, 1e-12)
    return 10.0 * np.log10(power)
