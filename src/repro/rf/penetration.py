"""Building-entry and material penetration loss vs frequency.

The paper's key frequency-response observation is that the 700 MHz
cellular band penetrates buildings far better than the 2 GHz+ bands
(Figure 3), while sub-600 MHz TV remains usable even indoors
(Figure 4). We model this with per-material loss tables plus an
ITU-R P.2109-style frequency ramp for whole-building entry loss.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

#: Per-material one-wall loss, dB, as (loss at 1 GHz, dB per GHz slope).
#: Values follow published measurement surveys (e.g. ITU-R P.2040):
#: modern low-emissivity glass and concrete are strongly frequency
#: dependent; drywall and wood barely are.
MATERIAL_LOSS_DB: Dict[str, Tuple[float, float]] = {
    "free_space": (0.0, 0.0),
    "wood": (3.0, 0.6),
    "drywall": (2.0, 0.5),
    "glass": (2.5, 0.8),
    "low_e_glass": (25.0, 3.0),
    "brick": (8.0, 3.5),
    "concrete": (17.0, 8.0),
    "reinforced_concrete": (25.0, 10.0),
    "metal": (40.0, 5.0),
}


def material_loss_db(material: str, freq_hz: float) -> float:
    """One-wall penetration loss for ``material`` at ``freq_hz``.

    Linear-in-frequency model anchored at 1 GHz, clamped at zero.
    Unknown materials raise KeyError so typos fail loudly.
    """
    if material not in MATERIAL_LOSS_DB:
        raise KeyError(
            f"unknown material {material!r}; "
            f"known: {sorted(MATERIAL_LOSS_DB)}"
        )
    base, slope = MATERIAL_LOSS_DB[material]
    freq_ghz = freq_hz / 1e9
    return max(0.0, base + slope * (freq_ghz - 1.0))


def material_loss_db_array(
    material: str, freq_hz: np.ndarray
) -> np.ndarray:
    """Batch :func:`material_loss_db` over a frequency array."""
    if material not in MATERIAL_LOSS_DB:
        raise KeyError(
            f"unknown material {material!r}; "
            f"known: {sorted(MATERIAL_LOSS_DB)}"
        )
    base, slope = MATERIAL_LOSS_DB[material]
    freq_ghz = np.asarray(freq_hz, dtype=np.float64) / 1e9
    return np.maximum(0.0, base + slope * (freq_ghz - 1.0))


def building_entry_loss_db(
    freq_hz: float,
    traditional: bool = True,
    depth_walls: int = 1,
) -> float:
    """Median building-entry loss following ITU-R P.2109's shape.

    The P.2109 median for traditional construction is roughly
    ``12.6 log10(f_GHz) + 12.6`` dB (thermally-efficient construction
    is ~10-15 dB worse). ``depth_walls`` adds interior-wall losses for
    sensors deep inside a building, which is how location ③ ("at least
    8 meters from windows") differs from a room at the facade.
    """
    if depth_walls < 0:
        raise ValueError(f"depth_walls must be >= 0: {depth_walls}")
    freq_ghz = max(freq_hz / 1e9, 0.05)
    median = 12.6 * math.log10(freq_ghz) + 12.6
    if not traditional:
        median += 12.0
    median = max(median, 0.0)
    interior = depth_walls * material_loss_db("drywall", freq_hz)
    return median + interior
