"""RF physics substrate: units, noise, path loss, fading, link budgets.

This package provides the physical-layer arithmetic the whole
simulation rests on. Every model here is a standard textbook model
(free-space Friis, log-distance, single knife-edge diffraction, ITU-R
P.2109-style building entry loss, log-normal shadowing) chosen so the
calibration pipeline sees the same qualitative behaviour the paper's
real testbed saw.
"""

from repro.rf.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    dbm_to_dbfs,
    dbfs_to_dbm,
    wavelength_m,
)
from repro.rf.noise import (
    BOLTZMANN_J_PER_K,
    thermal_noise_dbm,
    noise_floor_dbm,
    snr_db,
)
from repro.rf.pathloss import (
    free_space_path_loss_db,
    log_distance_path_loss_db,
    two_ray_path_loss_db,
)
from repro.rf.diffraction import (
    fresnel_v,
    knife_edge_loss_db,
)
from repro.rf.penetration import (
    building_entry_loss_db,
    MATERIAL_LOSS_DB,
    material_loss_db,
)
from repro.rf.fading import (
    lognormal_shadowing_db,
    rician_fading_db,
    rayleigh_fading_db,
)
from repro.rf.link import LinkBudget, received_power_dbm

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_dbfs",
    "dbfs_to_dbm",
    "wavelength_m",
    "BOLTZMANN_J_PER_K",
    "thermal_noise_dbm",
    "noise_floor_dbm",
    "snr_db",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "two_ray_path_loss_db",
    "fresnel_v",
    "knife_edge_loss_db",
    "building_entry_loss_db",
    "MATERIAL_LOSS_DB",
    "material_loss_db",
    "lognormal_shadowing_db",
    "rician_fading_db",
    "rayleigh_fading_db",
    "LinkBudget",
    "received_power_dbm",
]
