"""Path-loss models: free-space, log-distance, two-ray ground."""

from __future__ import annotations

import math

import numpy as np

from repro.rf.units import wavelength_m, wavelength_m_array


def free_space_path_loss_db(distance_m: float, freq_hz: float) -> float:
    """Friis free-space path loss in dB.

    FSPL = 20 log10(4 pi d / lambda). Distances below one wavelength
    are clamped to one wavelength so near-field geometries do not
    produce negative loss.
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative: {distance_m}")
    lam = wavelength_m(freq_hz)
    d = max(distance_m, lam)
    return 20.0 * math.log10(4.0 * math.pi * d / lam)


def free_space_path_loss_db_array(
    distance_m: np.ndarray, freq_hz: float
) -> np.ndarray:
    """Friis free-space path loss over an array of distances.

    Batch form of :func:`free_space_path_loss_db` with the same
    operation order per element, so results agree with the scalar
    function to the last ulp of the platform's log10.
    """
    d = np.asarray(distance_m, dtype=np.float64)
    if np.any(d < 0.0):
        raise ValueError("distances must be non-negative")
    lam = wavelength_m(freq_hz)
    d = np.maximum(d, lam)
    return 20.0 * np.log10(4.0 * math.pi * d / lam)


def free_space_path_loss_db_multifreq(
    distance_m: np.ndarray, freq_hz: np.ndarray
) -> np.ndarray:
    """Friis FSPL with a per-element carrier frequency.

    Unlike :func:`free_space_path_loss_db_array` (one carrier, many
    distances), every element gets its own wavelength — the §3.2 batch
    kernels evaluate each tower at its own downlink frequency in one
    pass. Same per-element operation order as the scalar function.
    """
    d = np.asarray(distance_m, dtype=np.float64)
    if np.any(d < 0.0):
        raise ValueError("distances must be non-negative")
    lam = wavelength_m_array(freq_hz)
    d = np.maximum(d, lam)
    return 20.0 * np.log10(4.0 * math.pi * d / lam)


def log_distance_path_loss_db(
    distance_m: float,
    freq_hz: float,
    exponent: float = 2.0,
    reference_m: float = 1.0,
) -> float:
    """Log-distance path loss with configurable exponent.

    Free-space loss up to ``reference_m``, then ``10*n*log10(d/d0)``
    beyond it. Exponents of 2.7-3.5 model urban macro links; the
    simulation uses ~2.0-2.2 for elevated LoS links like ADS-B.
    """
    if exponent <= 0.0:
        raise ValueError(f"path-loss exponent must be positive: {exponent}")
    if reference_m <= 0.0:
        raise ValueError(f"reference distance must be positive: {reference_m}")
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative: {distance_m}")
    ref_loss = free_space_path_loss_db(reference_m, freq_hz)
    d = max(distance_m, reference_m)
    return ref_loss + 10.0 * exponent * math.log10(d / reference_m)


def two_ray_path_loss_db(
    distance_m: float,
    freq_hz: float,
    tx_height_m: float,
    rx_height_m: float,
) -> float:
    """Two-ray ground-reflection path loss.

    Below the crossover distance ``4*pi*ht*hr/lambda`` this reduces to
    free space; beyond it the loss follows 40 log10(d) independent of
    frequency. Used for low tower-to-ground links.
    """
    if tx_height_m <= 0.0 or rx_height_m <= 0.0:
        raise ValueError("antenna heights must be positive")
    lam = wavelength_m(freq_hz)
    crossover = 4.0 * math.pi * tx_height_m * rx_height_m / lam
    if distance_m <= crossover:
        return free_space_path_loss_db(distance_m, freq_hz)
    d = distance_m
    return 40.0 * math.log10(d) - 20.0 * math.log10(
        tx_height_m * rx_height_m
    )
