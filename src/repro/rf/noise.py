"""Thermal noise and receiver noise-floor arithmetic."""

from __future__ import annotations

import math

#: Boltzmann constant, J/K.
BOLTZMANN_J_PER_K = 1.380649e-23

#: Standard reference temperature for noise calculations, kelvin.
REFERENCE_TEMPERATURE_K = 290.0


def thermal_noise_dbm(
    bandwidth_hz: float, temperature_k: float = REFERENCE_TEMPERATURE_K
) -> float:
    """Thermal noise power kTB in dBm for a given bandwidth.

    At 290 K this is the familiar -174 dBm/Hz + 10*log10(B).
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive: {bandwidth_hz}")
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive: {temperature_k}")
    watts = BOLTZMANN_J_PER_K * temperature_k * bandwidth_hz
    return 10.0 * math.log10(watts) + 30.0


def noise_floor_dbm(
    bandwidth_hz: float,
    noise_figure_db: float,
    temperature_k: float = REFERENCE_TEMPERATURE_K,
) -> float:
    """Receiver noise floor: thermal noise degraded by the noise figure."""
    if noise_figure_db < 0.0:
        raise ValueError(
            f"noise figure cannot be negative: {noise_figure_db}"
        )
    return thermal_noise_dbm(bandwidth_hz, temperature_k) + noise_figure_db


def snr_db(signal_dbm: float, noise_dbm: float) -> float:
    """Signal-to-noise ratio in dB."""
    return signal_dbm - noise_dbm
