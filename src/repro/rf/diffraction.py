"""Single knife-edge diffraction loss (ITU-R P.526 approximation).

Obstruction maps convert "a building blocks this bearing by h meters
above the ray" into a frequency-dependent extra loss through this
model. Higher frequencies diffract less, which is exactly the effect
the paper measures in Figures 3 and 4: the same physical obstruction
costs more dB at 2.6 GHz than at 700 MHz.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rf.units import wavelength_m, wavelength_m_array


def fresnel_v(
    obstacle_height_m: float,
    dist_tx_m: float,
    dist_rx_m: float,
    freq_hz: float,
) -> float:
    """Fresnel-Kirchhoff diffraction parameter ``v``.

    ``obstacle_height_m`` is the height of the knife edge above the
    straight line between transmitter and receiver (negative when the
    edge is below the line, i.e. the path is clear).
    """
    if dist_tx_m <= 0.0 or dist_rx_m <= 0.0:
        raise ValueError("edge-to-endpoint distances must be positive")
    lam = wavelength_m(freq_hz)
    return obstacle_height_m * math.sqrt(
        2.0 * (dist_tx_m + dist_rx_m) / (lam * dist_tx_m * dist_rx_m)
    )


def knife_edge_loss_db(v: float) -> float:
    """Diffraction loss for Fresnel parameter ``v``.

    Uses the ITU-R P.526 closed-form approximation
    ``J(v) = 6.9 + 20 log10(sqrt((v-0.1)^2 + 1) + v - 0.1)`` for
    v > -0.78 and zero loss below (unobstructed path).
    """
    if v <= -0.78:
        return 0.0
    term = math.sqrt((v - 0.1) ** 2 + 1.0) + v - 0.1
    return 6.9 + 20.0 * math.log10(term)


def fresnel_v_array(
    obstacle_height_m: np.ndarray,
    dist_tx_m: float,
    dist_rx_m: np.ndarray,
    freq_hz: float,
) -> np.ndarray:
    """Batch :func:`fresnel_v` over edge heights and RX distances.

    ``dist_tx_m`` (sensor-to-edge) stays scalar: one obstruction has
    one edge distance. Operation order matches the scalar function per
    element.
    """
    if dist_tx_m <= 0.0:
        raise ValueError("edge-to-endpoint distances must be positive")
    lam = wavelength_m(freq_hz)
    return obstacle_height_m * np.sqrt(
        2.0 * (dist_tx_m + dist_rx_m) / (lam * dist_tx_m * dist_rx_m)
    )


def fresnel_v_multifreq(
    obstacle_height_m: np.ndarray,
    dist_tx_m: float,
    dist_rx_m: np.ndarray,
    freq_hz: np.ndarray,
) -> np.ndarray:
    """:func:`fresnel_v_array` with a per-element carrier frequency.

    The §3.2 batch kernels diffract every tower at its own carrier in
    one pass; ``dist_tx_m`` (sensor-to-edge) stays scalar as in the
    array form.
    """
    if dist_tx_m <= 0.0:
        raise ValueError("edge-to-endpoint distances must be positive")
    lam = wavelength_m_array(freq_hz)
    return obstacle_height_m * np.sqrt(
        2.0 * (dist_tx_m + dist_rx_m) / (lam * dist_tx_m * dist_rx_m)
    )


def knife_edge_loss_db_array(v: np.ndarray) -> np.ndarray:
    """Batch :func:`knife_edge_loss_db`.

    ``sqrt((v-0.1)^2 + 1) + v - 0.1`` is positive for every real v, so
    the log10 is evaluated everywhere and masked afterwards — no
    warnings, identical values where v > -0.78.
    """
    term = np.sqrt((v - 0.1) ** 2 + 1.0) + v - 0.1
    return np.where(v <= -0.78, 0.0, 6.9 + 20.0 * np.log10(term))
