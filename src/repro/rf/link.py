"""End-to-end link-budget computation.

A :class:`LinkBudget` collects every gain/loss term on a path from a
transmitter to a receiver's ADC; :func:`received_power_dbm` is the
single place where they are summed, so every subsystem (ADS-B,
cellular, TV) computes received power identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LinkBudget:
    """Itemized link budget, all terms in dB/dBm.

    Attributes:
        tx_power_dbm: transmitter output power.
        tx_antenna_gain_dbi: transmit antenna gain toward the receiver.
        path_loss_db: propagation loss (positive number).
        obstruction_loss_db: extra loss from obstructions/penetration.
        fading_db: fading gain (signed; negative is a fade).
        rx_antenna_gain_dbi: receive antenna gain toward the transmitter.
        cable_loss_db: feedline loss at the receiver (positive number).
        extras_db: named additional signed gain terms for bookkeeping.
    """

    tx_power_dbm: float
    tx_antenna_gain_dbi: float = 0.0
    path_loss_db: float = 0.0
    obstruction_loss_db: float = 0.0
    fading_db: float = 0.0
    rx_antenna_gain_dbi: float = 0.0
    cable_loss_db: float = 0.0
    extras_db: Dict[str, float] = field(default_factory=dict)

    def received_power_dbm(self) -> float:
        """Power at the receiver input (before SDR gain)."""
        total = (
            self.tx_power_dbm
            + self.tx_antenna_gain_dbi
            - self.path_loss_db
            - self.obstruction_loss_db
            + self.fading_db
            + self.rx_antenna_gain_dbi
            - self.cable_loss_db
        )
        return total + sum(self.extras_db.values())

    def itemized(self) -> Dict[str, float]:
        """All terms by name, for reports and debugging."""
        items = {
            "tx_power_dbm": self.tx_power_dbm,
            "tx_antenna_gain_dbi": self.tx_antenna_gain_dbi,
            "path_loss_db": -self.path_loss_db,
            "obstruction_loss_db": -self.obstruction_loss_db,
            "fading_db": self.fading_db,
            "rx_antenna_gain_dbi": self.rx_antenna_gain_dbi,
            "cable_loss_db": -self.cable_loss_db,
        }
        items.update(self.extras_db)
        return items


def received_power_dbm(budget: LinkBudget) -> float:
    """Functional alias for :meth:`LinkBudget.received_power_dbm`."""
    return budget.received_power_dbm()
