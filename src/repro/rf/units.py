"""RF unit conversions: dB, dBm, watts, dBFS, wavelength."""

from __future__ import annotations

import math

import numpy as np

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT_M_S = 299_792_458.0


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises ValueError for non-positive ratios rather than returning
    -inf silently; callers that want a floor should clamp first.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive: {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert power in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert power in watts to dBm."""
    if watts <= 0.0:
        raise ValueError(f"power must be positive: {watts}")
    return 10.0 * math.log10(watts) + 30.0


def dbm_to_dbfs(power_dbm: float, full_scale_dbm: float) -> float:
    """Express an absolute power relative to an ADC's full scale.

    ``full_scale_dbm`` is the input power that produces a full-scale
    digital sample after the receiver's fixed gain. The paper's TV
    experiment reports received signal strength in dBFS because SDRs
    are not absolutely calibrated.
    """
    return power_dbm - full_scale_dbm


def dbfs_to_dbm(power_dbfs: float, full_scale_dbm: float) -> float:
    """Inverse of :func:`dbm_to_dbfs`."""
    return power_dbfs + full_scale_dbm


def wavelength_m(freq_hz: float) -> float:
    """Wavelength in meters for a carrier frequency in Hz."""
    if freq_hz <= 0.0:
        raise ValueError(f"frequency must be positive: {freq_hz}")
    return SPEED_OF_LIGHT_M_S / freq_hz


def wavelength_m_array(freq_hz: np.ndarray) -> np.ndarray:
    """Batch :func:`wavelength_m` over a frequency array."""
    f = np.asarray(freq_hz, dtype=np.float64)
    if np.any(f <= 0.0):
        raise ValueError("frequencies must be positive")
    return SPEED_OF_LIGHT_M_S / f
