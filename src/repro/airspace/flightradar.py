"""FlightRadar24-style ground-truth flight service.

The paper queries FlightRadar24 15 s into each 30 s measurement for
all flights within 100 km of the sensor and matches ICAO addresses
against locally-decoded messages. FR24 reports with about 10 s of
latency, which at enroute speeds means reported positions are within
~2.5 km of truth — "sufficient for our purpose".

This module reproduces those query semantics against the simulated
traffic picture, including the latency and an optional coverage-miss
probability (FR24's crowd-sourced network occasionally lacks a feeder
for some aircraft).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.adsb.icao import IcaoAddress
from repro.airspace.traffic import TrafficSimulator
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_m


@dataclass(frozen=True)
class FlightReport:
    """One flight as reported by the ground-truth service.

    Attributes:
        icao: aircraft address (the join key used by the paper).
        callsign: flight identification.
        position: reported position — the aircraft's location
            ``latency_s`` before the query, like the real service.
        ground_speed_ms: reported ground speed.
        track_deg: reported track.
    """

    icao: IcaoAddress
    callsign: str
    position: GeoPoint
    ground_speed_ms: float
    track_deg: float


@dataclass
class FlightRadarService:
    """Queryable ground-truth view over a :class:`TrafficSimulator`.

    Attributes:
        traffic: the simulated traffic picture.
        latency_s: reporting latency (paper: 10 s).
        coverage_miss_rate: probability an aircraft is absent from the
            report despite being in range (0 = perfect coverage).
    """

    traffic: TrafficSimulator
    latency_s: float = 10.0
    coverage_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0.0:
            raise ValueError(f"latency must be >= 0: {self.latency_s}")
        if not 0.0 <= self.coverage_miss_rate < 1.0:
            raise ValueError(
                f"miss rate must be in [0, 1): {self.coverage_miss_rate}"
            )

    def query(
        self,
        center: GeoPoint,
        radius_m: float,
        time_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[FlightReport]:
        """All flights within ``radius_m`` of ``center`` at ``time_s``.

        Positions reflect the service latency: each aircraft is
        reported where it was ``latency_s`` ago, and the radius filter
        applies to the *reported* position, exactly as a client of the
        real API would experience.
        """
        if radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {radius_m}")
        report_time = time_s - self.latency_s
        out: List[FlightReport] = []
        for ac in self.traffic.aircraft:
            if self.coverage_miss_rate > 0.0:
                if rng is None:
                    raise ValueError(
                        "coverage_miss_rate > 0 requires an rng"
                    )
                if rng.uniform() < self.coverage_miss_rate:
                    continue
            state = ac.state_at(report_time)
            if haversine_m(center, state.position) > radius_m:
                continue
            out.append(
                FlightReport(
                    icao=ac.icao,
                    callsign=ac.callsign,
                    position=state.position,
                    ground_speed_ms=state.ground_speed_ms,
                    track_deg=state.track_deg,
                )
            )
        return out
