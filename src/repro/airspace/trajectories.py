"""Flight trajectory generation.

Aircraft fly great-circle chords through the disk around the sensor
site at typical enroute speeds and altitudes. Chords are drawn so the
population is spread uniformly over the disk (uniform random chords
through a random interior point with a random heading), matching the
paper's observation that "airplanes fly in all directions".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geo.coords import GeoPoint
from repro.geo.distance import (
    destination_point,
    destination_point_arrays,
    destination_points_fixed_leg,
    initial_bearing_deg,
    initial_bearing_deg_arrays,
)

#: Typical enroute ground speeds, m/s (about 180-500 kt).
MIN_SPEED_MS = 90.0
MAX_SPEED_MS = 260.0

#: Altitude band for enroute/approach traffic, meters.
MIN_ALTITUDE_M = 1_500.0
MAX_ALTITUDE_M = 12_000.0


@dataclass(frozen=True)
class GreatCircleRoute:
    """Constant-speed, constant-altitude great-circle leg.

    Attributes:
        start: position at time ``start_time_s``.
        track_deg: initial great-circle bearing.
        speed_ms: ground speed.
        start_time_s: when the aircraft is at ``start``.
    """

    start: GeoPoint
    track_deg: float
    speed_ms: float
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_ms <= 0.0:
            raise ValueError(f"speed must be positive: {self.speed_ms}")

    def position_and_track(
        self, time_s: float
    ) -> Tuple[GeoPoint, float]:
        """Position and instantaneous track at ``time_s``.

        Negative elapsed time back-projects along the same great
        circle, so routes can be sampled before their nominal start.
        """
        elapsed = time_s - self.start_time_s
        distance = self.speed_ms * abs(elapsed)
        backwards = (self.track_deg + 180.0) % 360.0
        bearing = self.track_deg if elapsed >= 0 else backwards
        point = destination_point(self.start, bearing, distance)
        if distance < 1.0:
            return point, self.track_deg
        # Instantaneous track = bearing from a point slightly behind.
        behind = destination_point(point, backwards, 1000.0)
        track = initial_bearing_deg(behind, point)
        return point, track

    def sample_arrays(
        self, times_s: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch :meth:`position_and_track` over a time array.

        Returns (lat_deg, lon_deg, track_deg); altitude is the
        route's constant ``start.alt_m``. Replicates the scalar
        method's operation sequence — including the degree→radian
        round-trips the intermediate :class:`GeoPoint` objects
        introduce — so per-element results match the scalar path.
        """
        t = np.asarray(times_s, dtype=np.float64)
        elapsed = t - self.start_time_s
        distance = self.speed_ms * np.abs(elapsed)
        backwards = (self.track_deg + 180.0) % 360.0
        bearing = np.where(elapsed >= 0, self.track_deg, backwards)
        lat_deg, lon_deg = destination_point_arrays(
            self.start, bearing, distance
        )
        # Instantaneous track = bearing from a point slightly behind.
        blat, blon = destination_points_fixed_leg(
            lat_deg, lon_deg, backwards, 1000.0
        )
        track = initial_bearing_deg_arrays(blat, blon, lat_deg, lon_deg)
        track = np.where(distance < 1.0, self.track_deg, track)
        return lat_deg, lon_deg, track


def random_route_through_disk(
    center: GeoPoint,
    radius_m: float,
    rng: np.random.Generator,
    start_time_s: float = 0.0,
) -> GreatCircleRoute:
    """Draw a route passing through the disk around ``center``.

    A waypoint is drawn uniformly over the disk area, a heading
    uniformly over [0, 360), a cruise speed and altitude uniformly over
    the enroute bands; the aircraft crosses the waypoint at
    ``start_time_s``.
    """
    if radius_m <= 0.0:
        raise ValueError(f"radius must be positive: {radius_m}")
    # Uniform over area: r ~ R*sqrt(u).
    r = radius_m * math.sqrt(rng.uniform())
    theta = rng.uniform(0.0, 360.0)
    waypoint = destination_point(center, theta, r)
    altitude = float(rng.uniform(MIN_ALTITUDE_M, MAX_ALTITUDE_M))
    waypoint = waypoint.with_altitude(altitude)
    heading = float(rng.uniform(0.0, 360.0))
    speed = float(rng.uniform(MIN_SPEED_MS, MAX_SPEED_MS))
    return GreatCircleRoute(
        start=waypoint,
        track_deg=heading,
        speed_ms=speed,
        start_time_s=start_time_s,
    )
