"""Aircraft state and kinematics."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.adsb.icao import IcaoAddress
from repro.adsb.transponder import Transponder
from repro.airspace.trajectories import GreatCircleRoute
from repro.geo.coords import GeoPoint

#: Knots per meter-per-second.
MS_TO_KT = 1.0 / 0.514444


@dataclass(frozen=True)
class AircraftState:
    """Instantaneous aircraft state.

    Attributes:
        position: location including altitude (meters).
        track_deg: ground track (compass bearing of motion).
        ground_speed_ms: ground speed in m/s.
    """

    position: GeoPoint
    track_deg: float
    ground_speed_ms: float

    @property
    def east_velocity_kt(self) -> float:
        return (
            self.ground_speed_ms
            * math.sin(math.radians(self.track_deg))
            * MS_TO_KT
        )

    @property
    def north_velocity_kt(self) -> float:
        return (
            self.ground_speed_ms
            * math.cos(math.radians(self.track_deg))
            * MS_TO_KT
        )


@dataclass
class Aircraft:
    """A simulated aircraft: identity, route, and transponder.

    Attributes:
        icao: 24-bit address.
        callsign: flight identification.
        route: great-circle route flown at constant speed/altitude.
        transponder: the DF17 squitter source for this aircraft.
    """

    icao: IcaoAddress
    callsign: str
    route: GreatCircleRoute
    transponder: Transponder

    def state_at(self, time_s: float) -> AircraftState:
        """Aircraft state at simulation time ``time_s``."""
        position, track = self.route.position_and_track(time_s)
        return AircraftState(
            position=position,
            track_deg=track,
            ground_speed_ms=self.route.speed_ms,
        )

    def squitter_position_at(self, time_s: float):
        """Adapter for :meth:`Transponder.squitters_between`."""
        state = self.state_at(time_s)
        return (
            state.position.lat_deg,
            state.position.lon_deg,
            state.position.alt_m,
            state.east_velocity_kt,
            state.north_velocity_kt,
        )
