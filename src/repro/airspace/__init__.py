"""Airspace substrate: simulated aircraft traffic and ground truth.

Replaces the live airplanes and the FlightRadar24 API the paper used:
a traffic simulator spawns aircraft on great-circle routes through a
disk around the sensor site, each carrying a DF17 transponder, and a
ground-truth service answers "all flights within R km" queries with
the configurable reporting latency the paper accounts for (10 s ⇒
aircraft within 2.5 km of the reported position).
"""

from repro.airspace.aircraft import Aircraft, AircraftState
from repro.airspace.trajectories import (
    GreatCircleRoute,
    random_route_through_disk,
)
from repro.airspace.traffic import TrafficSimulator, TrafficConfig
from repro.airspace.flightradar import (
    FlightRadarService,
    FlightReport,
)

__all__ = [
    "Aircraft",
    "AircraftState",
    "GreatCircleRoute",
    "random_route_through_disk",
    "TrafficSimulator",
    "TrafficConfig",
    "FlightRadarService",
    "FlightReport",
]
