"""Traffic simulation: a population of aircraft around a site."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.adsb.icao import random_icao
from repro.adsb.transponder import SquitterEvent, Transponder
from repro.airspace.aircraft import Aircraft
from repro.airspace.trajectories import random_route_through_disk
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_m

_AIRLINE_CODES = (
    "UAL", "DAL", "AAL", "SWA", "ASA", "JBU", "SKW", "FDX", "UPS",
    "QXE", "NKS", "FFT", "HAL", "ACA", "WJA",
)

#: Named traffic densities: aircraft within the 100 km disk. The
#: paper's Bay Area captures sit around the default; "dense-urban"
#: triples it to the level where 1090 MHz collisions start to matter.
TRAFFIC_PRESETS = {
    "default": 80,
    "dense-urban": 240,
}


@dataclass
class TrafficConfig:
    """Parameters of the simulated traffic picture.

    Attributes:
        n_aircraft: aircraft present during the observation window.
            The paper's Bay Area experiments show on the order of
            60-120 aircraft within 100 km.
        radius_m: disk radius the traffic occupies.
        density_profile: optional multiplier on aircraft count as a
            function of time-of-day hour (0-24), used by the
            measurement scheduler experiments.
    """

    n_aircraft: int = 80
    radius_m: float = 100_000.0
    density_profile: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if self.n_aircraft < 0:
            raise ValueError(f"n_aircraft must be >= 0: {self.n_aircraft}")
        if self.radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {self.radius_m}")

    def aircraft_count_at_hour(self, hour: float) -> int:
        """Aircraft count scaled by the time-of-day density profile."""
        if self.density_profile is None:
            return self.n_aircraft
        scale = max(0.0, self.density_profile(hour % 24.0))
        return int(round(self.n_aircraft * scale))

    @classmethod
    def from_preset(cls, name: str, **overrides) -> "TrafficConfig":
        """Build a config from a named density preset.

        ``name`` is a :data:`TRAFFIC_PRESETS` key; keyword overrides
        are passed through to the constructor.
        """
        if name not in TRAFFIC_PRESETS:
            known = ", ".join(sorted(TRAFFIC_PRESETS))
            raise ValueError(
                f"unknown traffic preset {name!r} (known: {known})"
            )
        overrides.setdefault("n_aircraft", TRAFFIC_PRESETS[name])
        return cls(**overrides)


@dataclass
class TrafficSimulator:
    """A fixed population of aircraft flying around ``center``.

    Aircraft are spawned once (at construction) with routes that pass
    through the disk around the observation window's midpoint, so the
    picture over a 30 s capture is realistic: most aircraft stay in
    range, a few enter or leave.
    """

    center: GeoPoint
    config: TrafficConfig
    rng_seed: int = 0
    aircraft: List[Aircraft] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.aircraft:
            self._spawn()

    def _spawn(self) -> None:
        rng = np.random.default_rng(self.rng_seed)
        used_icaos = set()
        for i in range(self.config.n_aircraft):
            icao = random_icao(rng)
            while icao in used_icaos:
                icao = random_icao(rng)
            used_icaos.add(icao)
            airline = _AIRLINE_CODES[
                int(rng.integers(0, len(_AIRLINE_CODES)))
            ]
            callsign = f"{airline}{int(rng.integers(1, 9999)):04d}"
            # Routes cross their waypoint at a random moment inside a
            # +/-60 s window so positions at t=0..30 are well spread.
            waypoint_time = float(rng.uniform(-60.0, 60.0))
            route = random_route_through_disk(
                self.center, self.config.radius_m, rng, waypoint_time
            )
            transponder = Transponder.with_random_power(
                icao, callsign, rng
            )
            self.aircraft.append(
                Aircraft(
                    icao=icao,
                    callsign=callsign,
                    route=route,
                    transponder=transponder,
                )
            )

    def aircraft_within(
        self, time_s: float, radius_m: Optional[float] = None
    ) -> List[Aircraft]:
        """Aircraft inside ``radius_m`` of the center at ``time_s``."""
        limit = radius_m if radius_m is not None else self.config.radius_m
        out = []
        for ac in self.aircraft:
            state = ac.state_at(time_s)
            if haversine_m(self.center, state.position) <= limit:
                out.append(ac)
        return out

    def squitters_between(
        self, t0_s: float, t1_s: float, rng: np.random.Generator
    ) -> List[SquitterEvent]:
        """Every squitter transmitted by the population in [t0, t1)."""
        events: List[SquitterEvent] = []
        for ac in self.aircraft:
            events.extend(
                ac.transponder.squitters_between(
                    t0_s, t1_s, ac.squitter_position_at, rng
                )
            )
        events.sort(key=lambda e: e.time_s)
        return events
