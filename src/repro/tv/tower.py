"""Broadcast TV transmitter model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.coords import GeoPoint
from repro.tv.channels import (
    atsc_channel_center_hz,
    atsc_channel_edges_hz,
)


@dataclass(frozen=True)
class TvTower:
    """One ATSC transmitter.

    Attributes:
        callsign: station callsign, for reports.
        channel: RF channel number.
        position: transmitter site (altitude = radiation center).
        erp_dbm: effective radiated power toward the horizon.
    """

    callsign: str
    channel: int
    position: GeoPoint
    erp_dbm: float = 75.0

    def __post_init__(self) -> None:
        atsc_channel_edges_hz(self.channel)  # validates the channel

    @property
    def center_freq_hz(self) -> float:
        return atsc_channel_center_hz(self.channel)

    @property
    def band_edges_hz(self):
        return atsc_channel_edges_hz(self.channel)
