"""ATSC RF channel plan (North America).

6 MHz channels: VHF-low 2-6, VHF-high 7-13 (174-216 MHz), UHF 14-36
(470-608 MHz post-repack). The paper's six measured carriers — 213,
473, 521, 545, 587 and 605 MHz — are the centers of channels 13, 14,
22, 26, 33 and 36.
"""

from __future__ import annotations

from typing import Tuple

#: ATSC channel bandwidth.
ATSC_CHANNEL_WIDTH_HZ = 6e6


def atsc_channel_edges_hz(channel: int) -> Tuple[float, float]:
    """(lower, upper) band edge of an RF channel number."""
    if 2 <= channel <= 4:
        low = 54e6 + (channel - 2) * 6e6
    elif 5 <= channel <= 6:
        low = 76e6 + (channel - 5) * 6e6
    elif 7 <= channel <= 13:
        low = 174e6 + (channel - 7) * 6e6
    elif 14 <= channel <= 36:
        low = 470e6 + (channel - 14) * 6e6
    else:
        raise ValueError(f"unknown ATSC RF channel: {channel}")
    return low, low + ATSC_CHANNEL_WIDTH_HZ


def atsc_channel_center_hz(channel: int) -> float:
    """Center frequency of an RF channel."""
    low, high = atsc_channel_edges_hz(channel)
    return 0.5 * (low + high)


def atsc_channel_for_freq(freq_hz: float) -> int:
    """RF channel number containing ``freq_hz``.

    Raises ValueError for frequencies outside the broadcast plan.
    """
    for channel in list(range(2, 7)) + list(range(7, 14)) + list(
        range(14, 37)
    ):
        low, high = atsc_channel_edges_hz(channel)
        if low <= freq_hz < high:
            return channel
    raise ValueError(f"{freq_hz} Hz is not in an ATSC channel")
