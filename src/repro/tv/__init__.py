"""Broadcast-TV substrate: ATSC channels, towers, and the power meter.

Extends the frequency-response evaluation below the cellular bands,
exactly as the paper does: known ATSC transmitters (sub-600 MHz, up to
50 km away) are measured with a GNU Radio-style chain — bandpass the
desired channel, magnitude-square, very long moving average (Parseval)
— at fixed SDR gain, and the result is reported in dBFS.
"""

from repro.tv.channels import (
    ATSC_CHANNEL_WIDTH_HZ,
    atsc_channel_for_freq,
    atsc_channel_center_hz,
    atsc_channel_edges_hz,
)
from repro.tv.tower import TvTower
from repro.tv.waveform import atsc_waveform
from repro.tv.meter import TvMeasurement, TvPowerMeter

__all__ = [
    "ATSC_CHANNEL_WIDTH_HZ",
    "atsc_channel_for_freq",
    "atsc_channel_center_hz",
    "atsc_channel_edges_hz",
    "TvTower",
    "atsc_waveform",
    "TvMeasurement",
    "TvPowerMeter",
]
