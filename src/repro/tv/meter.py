"""The broadcast-TV received-power measurement.

Reproduces the paper's GNU Radio program: tune the SDR (fixed gain,
no AGC) to the desired ATSC channel, bandpass filter it, and measure
band power by running magnitude-squared samples through a very long
moving average (Parseval's identity). Reports dBFS, because SDRs are
not absolutely calibrated.

Two measurement paths are provided:

- ``measure_iq`` — the full DSP path: synthesize the 8VSB waveform at
  the propagated receive power, digitize it through a
  :class:`~repro.sdr.capture.CaptureSession`, and run the
  :class:`~repro.dsp.power.ParsevalPowerMeter` chain. This is the
  paper's actual measurement program.
- ``measure_budget`` — the fast path: the same link budget without
  waveform synthesis, used by wide parameter sweeps. Tests verify the
  two paths agree to within a dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dsp.channelizer import (
    ChannelSpec,
    Channelizer,
    plan_capture_groups,
)
from repro.dsp.filters import scaled_num_taps
from repro.dsp.power import ParsevalPowerMeter
from repro.environment.links import (
    direct_received_power_dbm,
    direct_received_power_dbm_multifreq,
)
from repro.environment.site import SiteEnvironment
from repro.sdr.antenna import Antenna
from repro.sdr.capture import CaptureSession, WidebandCapture
from repro.sdr.frontend import SdrFrontEnd
from repro.tv.tower import TvTower
from repro.tv.waveform import VSB_OCCUPIED_HZ, atsc_waveform

#: Capture sample rate for TV measurements (covers one 6 MHz channel).
TV_SAMPLE_RATE_HZ = 8e6

#: Headroom factor between a capture group's span and its sample rate
#: (anti-alias margin; also bounds how full the SDR's rate gets).
CAPTURE_GUARD_FACTOR = 1.05


@dataclass(frozen=True)
class TvMeasurement:
    """One channel-power measurement.

    Attributes:
        callsign: transmitter measured.
        channel: RF channel number.
        freq_hz: channel center frequency.
        power_dbfs: measured band power relative to full scale.
        above_noise_db: margin over the receiver noise in the band —
            how usable this channel is for spectrum measurements.
    """

    callsign: str
    channel: int
    freq_hz: float
    power_dbfs: float
    above_noise_db: float


@dataclass
class TvPowerMeter:
    """Measures ATSC channel power from one sensor node.

    Attributes:
        env: installation site.
        sdr: receiver front end (gain fixed; AGC deliberately unused).
        antenna: receive antenna.
    """

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna

    def received_power_dbm(self, tower: TvTower) -> float:
        """Median received channel power at the SDR input."""
        return direct_received_power_dbm(
            self.env,
            tower.position,
            tower.erp_dbm,
            tower.center_freq_hz,
            self.antenna,
        )

    def noise_dbfs(self) -> float:
        """Receiver noise power within the occupied bandwidth, in dBFS."""
        noise_dbm = self.sdr.noise_floor_dbm(VSB_OCCUPIED_HZ)
        return self.sdr.input_dbm_to_dbfs(noise_dbm)

    def measure_budget(self, tower: TvTower) -> TvMeasurement:
        """Fast link-budget measurement (no waveform synthesis)."""
        power_dbm = self.received_power_dbm(tower)
        power_dbfs = self.sdr.input_dbm_to_dbfs(power_dbm)
        return TvMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def measure_iq(
        self,
        tower: TvTower,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
        sample_rate_hz: float = TV_SAMPLE_RATE_HZ,
        average_window: Optional[int] = None,
    ) -> TvMeasurement:
        """Full-DSP measurement through the GNU Radio-style chain."""
        self.sdr.check_tune(tower.center_freq_hz)
        session = CaptureSession(
            sdr=self.sdr,
            antenna=self.antenna,
            center_freq_hz=tower.center_freq_hz,
            sample_rate_hz=sample_rate_hz,
        )
        waveform = atsc_waveform(rng, n_samples, sample_rate_hz)
        power_dbm = self.received_power_dbm(tower)
        capture = session.capture([(waveform, power_dbm)], rng, n_samples)

        half = VSB_OCCUPIED_HZ / 2.0
        window = average_window or max(n_samples // 2, 1024)
        meter = ParsevalPowerMeter(
            sample_rate_hz=sample_rate_hz,
            band_low_hz=-half,
            band_high_hz=half,
            average_window=window,
        )
        power_dbfs = meter.read_dbfs(capture.samples)
        return TvMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def received_power_dbm_batch(
        self, towers: Sequence[TvTower]
    ) -> np.ndarray:
        """Median received power for many towers in one array pass."""
        return direct_received_power_dbm_multifreq(
            self.env,
            [t.position for t in towers],
            np.array([t.erp_dbm for t in towers], dtype=np.float64),
            np.array(
                [t.center_freq_hz for t in towers], dtype=np.float64
            ),
            self.antenna,
        )

    def measure_budget_batch(
        self, towers: Sequence[TvTower]
    ) -> List[TvMeasurement]:
        """Batch :meth:`measure_budget`: all towers in one pass."""
        if not towers:
            return []
        power_dbfs = self.sdr.input_dbm_to_dbfs_array(
            self.received_power_dbm_batch(towers)
        )
        noise = self.noise_dbfs()
        return [
            TvMeasurement(
                callsign=t.callsign,
                channel=t.channel,
                freq_hz=t.center_freq_hz,
                power_dbfs=float(p),
                above_noise_db=float(p) - noise,
            )
            for t, p in zip(towers, power_dbfs)
        ]

    def measure_iq_batch(
        self,
        towers: Sequence[TvTower],
        rng: np.random.Generator,
        n_samples: int = 1 << 14,
    ) -> List[TvMeasurement]:
        """Channelized IQ measurement: capture each band once.

        Channels are packed into as few wideband captures as the SDR's
        sample rate allows (:func:`plan_capture_groups`); each capture
        digitizes every tower in its window into one IQ block through
        :class:`~repro.sdr.capture.WidebandCapture`, and per-channel
        power is read from one FFT by the
        :class:`~repro.dsp.channelizer.Channelizer`.

        The default capture is shorter than ``measure_iq``'s: a
        channel's power estimate averages ``n_samples * bw / rate``
        FFT bins, so 2**14 samples keep >1000 in-band bins per 6 MHz
        channel even at the SDR's full 61.44 Msps (~0.1 dB estimator
        noise, far inside the documented tolerance budget).

        RNG draw-order contract: per capture group (ascending
        frequency), the towers' waveforms are synthesized in channel
        order (2 * n_samples normals each), then one AWGN block
        (2 * n_samples normals) is drawn for the whole capture. All
        towers must be tunable; callers gate ``can_tune`` like the
        evaluator does. Results align with ``towers``.
        """
        if not towers:
            return []
        for t in towers:
            self.sdr.check_tune(t.center_freq_hz)
        edges = [t.band_edges_hz for t in towers]
        groups = plan_capture_groups(
            edges, self.sdr.max_sample_rate_hz / CAPTURE_GUARD_FACTOR
        )
        power_dbm = self.received_power_dbm_batch(towers)
        noise = self.noise_dbfs()
        results: Dict[int, TvMeasurement] = {}
        for group in groups:
            low = min(edges[i][0] for i in group)
            high = max(edges[i][1] for i in group)
            center = 0.5 * (low + high)
            rate = min(
                max(
                    (high - low) * CAPTURE_GUARD_FACTOR,
                    TV_SAMPLE_RATE_HZ,
                ),
                self.sdr.max_sample_rate_hz,
            )
            session = WidebandCapture(
                sdr=self.sdr,
                antenna=self.antenna,
                center_freq_hz=center,
                sample_rate_hz=rate,
            )
            # Keep the shaping filter's transition width in Hz as the
            # rate grows, or out-of-mask leakage eats the tolerance.
            num_taps = scaled_num_taps(129, TV_SAMPLE_RATE_HZ, rate)
            signals = []
            for i in group:
                waveform = atsc_waveform(
                    rng,
                    n_samples,
                    rate,
                    num_taps=num_taps,
                    filter_mode="fft",
                )
                signals.append(
                    (
                        waveform,
                        towers[i].center_freq_hz - center,
                        float(power_dbm[i]),
                    )
                )
            buffer = session.capture_channels(signals, rng, n_samples)
            channelizer = Channelizer(
                rate,
                [
                    ChannelSpec(
                        label=towers[i].callsign,
                        offset_hz=towers[i].center_freq_hz - center,
                        bandwidth_hz=VSB_OCCUPIED_HZ,
                    )
                    for i in group
                ],
            )
            dbfs = channelizer.band_powers_dbfs(buffer.samples)
            for i, p in zip(group, dbfs):
                results[i] = TvMeasurement(
                    callsign=towers[i].callsign,
                    channel=towers[i].channel,
                    freq_hz=towers[i].center_freq_hz,
                    power_dbfs=float(p),
                    above_noise_db=float(p) - noise,
                )
        return [results[i] for i in range(len(towers))]
