"""The broadcast-TV received-power measurement.

Reproduces the paper's GNU Radio program: tune the SDR (fixed gain,
no AGC) to the desired ATSC channel, bandpass filter it, and measure
band power by running magnitude-squared samples through a very long
moving average (Parseval's identity). Reports dBFS, because SDRs are
not absolutely calibrated.

Two measurement paths are provided:

- ``measure_iq`` — the full DSP path: synthesize the 8VSB waveform at
  the propagated receive power, digitize it through a
  :class:`~repro.sdr.capture.CaptureSession`, and run the
  :class:`~repro.dsp.power.ParsevalPowerMeter` chain. This is the
  paper's actual measurement program.
- ``measure_budget`` — the fast path: the same link budget without
  waveform synthesis, used by wide parameter sweeps. Tests verify the
  two paths agree to within a dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.power import ParsevalPowerMeter
from repro.environment.links import direct_received_power_dbm
from repro.environment.site import SiteEnvironment
from repro.sdr.antenna import Antenna
from repro.sdr.capture import CaptureSession
from repro.sdr.frontend import SdrFrontEnd
from repro.tv.tower import TvTower
from repro.tv.waveform import VSB_OCCUPIED_HZ, atsc_waveform

#: Capture sample rate for TV measurements (covers one 6 MHz channel).
TV_SAMPLE_RATE_HZ = 8e6


@dataclass(frozen=True)
class TvMeasurement:
    """One channel-power measurement.

    Attributes:
        callsign: transmitter measured.
        channel: RF channel number.
        freq_hz: channel center frequency.
        power_dbfs: measured band power relative to full scale.
        above_noise_db: margin over the receiver noise in the band —
            how usable this channel is for spectrum measurements.
    """

    callsign: str
    channel: int
    freq_hz: float
    power_dbfs: float
    above_noise_db: float


@dataclass
class TvPowerMeter:
    """Measures ATSC channel power from one sensor node.

    Attributes:
        env: installation site.
        sdr: receiver front end (gain fixed; AGC deliberately unused).
        antenna: receive antenna.
    """

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna

    def received_power_dbm(self, tower: TvTower) -> float:
        """Median received channel power at the SDR input."""
        return direct_received_power_dbm(
            self.env,
            tower.position,
            tower.erp_dbm,
            tower.center_freq_hz,
            self.antenna,
        )

    def noise_dbfs(self) -> float:
        """Receiver noise power within the occupied bandwidth, in dBFS."""
        noise_dbm = self.sdr.noise_floor_dbm(VSB_OCCUPIED_HZ)
        return self.sdr.input_dbm_to_dbfs(noise_dbm)

    def measure_budget(self, tower: TvTower) -> TvMeasurement:
        """Fast link-budget measurement (no waveform synthesis)."""
        power_dbm = self.received_power_dbm(tower)
        power_dbfs = self.sdr.input_dbm_to_dbfs(power_dbm)
        return TvMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def measure_iq(
        self,
        tower: TvTower,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
        sample_rate_hz: float = TV_SAMPLE_RATE_HZ,
        average_window: Optional[int] = None,
    ) -> TvMeasurement:
        """Full-DSP measurement through the GNU Radio-style chain."""
        self.sdr.check_tune(tower.center_freq_hz)
        session = CaptureSession(
            sdr=self.sdr,
            antenna=self.antenna,
            center_freq_hz=tower.center_freq_hz,
            sample_rate_hz=sample_rate_hz,
        )
        waveform = atsc_waveform(rng, n_samples, sample_rate_hz)
        power_dbm = self.received_power_dbm(tower)
        capture = session.capture([(waveform, power_dbm)], rng, n_samples)

        half = VSB_OCCUPIED_HZ / 2.0
        window = average_window or max(n_samples // 2, 1024)
        meter = ParsevalPowerMeter(
            sample_rate_hz=sample_rate_hz,
            band_low_hz=-half,
            band_high_hz=half,
            average_window=window,
        )
        power_dbfs = meter.read_dbfs(capture.samples)
        return TvMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )
