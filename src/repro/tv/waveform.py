"""Synthetic ATSC 8VSB baseband waveform.

8VSB occupies ~5.38 MHz of its 6 MHz channel with a nearly flat,
noise-like spectrum plus a pilot tone 310 kHz above the lower band
edge. For power measurement that is well modelled as band-limited
Gaussian noise plus a small CW pilot — the meter never demodulates.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import (
    design_lowpass_fir_cached,
    fft_fir_filter,
    fir_filter,
)
from repro.dsp.iq import complex_tone, frequency_shift

#: Occupied bandwidth of the 8VSB signal.
VSB_OCCUPIED_HZ = 5.38e6

#: Pilot offset above the lower channel edge.
PILOT_OFFSET_HZ = 309_441.0

#: Fraction of total power in the pilot (about -11.3 dB).
PILOT_POWER_FRACTION = 0.07


def atsc_waveform(
    rng: np.random.Generator,
    n_samples: int,
    sample_rate_hz: float,
    channel_offset_hz: float = 0.0,
    num_taps: int = 129,
    filter_mode: str = "direct",
) -> np.ndarray:
    """Unit-mean-power ATSC-like waveform at a baseband offset.

    Args:
        rng: randomness source for the data-like noise.
        n_samples: waveform length.
        sample_rate_hz: sample rate; must fit the occupied bandwidth
            at the requested offset.
        channel_offset_hz: channel center relative to capture center.
        num_taps: shaping-filter length. The 129-tap default matches
            the original 8 Msps design; wideband captures must scale
            it with the rate (``scaled_num_taps``) or the transition
            band leaks outside the channel mask.
        filter_mode: "direct" time-domain shaping (the oracle) or
            "fft" overlap-save shaping for long filters.

    Returns:
        Complex baseband samples with mean power 1.0.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive: {n_samples}")
    if filter_mode not in ("direct", "fft"):
        raise ValueError(
            f"filter_mode must be 'direct' or 'fft': {filter_mode!r}"
        )
    half_occupied = VSB_OCCUPIED_HZ / 2.0
    nyquist = sample_rate_hz / 2.0
    if abs(channel_offset_hz) + half_occupied >= nyquist:
        raise ValueError(
            f"channel at offset {channel_offset_hz} Hz does not fit in "
            f"a {sample_rate_hz} Hz capture"
        )
    noise = (
        rng.standard_normal(n_samples)
        + 1j * rng.standard_normal(n_samples)
    ) / np.sqrt(2.0)
    taps = design_lowpass_fir_cached(
        half_occupied, sample_rate_hz, num_taps
    )
    if filter_mode == "fft":
        shaped = fft_fir_filter(taps, noise)
    else:
        shaped = fir_filter(taps, noise)
    power = np.mean(np.abs(shaped) ** 2)
    if power <= 0.0:
        raise RuntimeError("degenerate shaped-noise power")
    shaped = shaped / np.sqrt(power)

    pilot_offset = -half_occupied + PILOT_OFFSET_HZ
    pilot = complex_tone(
        pilot_offset,
        sample_rate_hz,
        n_samples,
        amplitude=np.sqrt(PILOT_POWER_FRACTION),
    )
    signal = (
        np.sqrt(1.0 - PILOT_POWER_FRACTION) * shaped + pilot
    )
    if channel_offset_hz != 0.0:
        signal = frequency_shift(signal, channel_offset_hz, sample_rate_hz)
    return signal
