"""Azimuth-sector arithmetic.

Obstruction maps and field-of-view estimates are expressed as sets of
azimuth sectors (compass-angle intervals that may wrap through north).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


def normalize_bearing(bearing_deg: float) -> float:
    """Fold an angle into [0, 360)."""
    if not math.isfinite(bearing_deg):
        raise ValueError(f"bearing must be finite: {bearing_deg}")
    return bearing_deg % 360.0


def bearing_difference(a_deg: float, b_deg: float) -> float:
    """Smallest absolute angular difference between two bearings.

    Result is in [0, 180].
    """
    diff = abs(normalize_bearing(a_deg) - normalize_bearing(b_deg))
    return min(diff, 360.0 - diff)


@dataclass(frozen=True)
class AzimuthSector:
    """A compass-angle interval [start, start+width), may wrap north.

    Attributes:
        start_deg: starting bearing of the sector, in [0, 360).
        width_deg: angular width in degrees, in (0, 360].
    """

    start_deg: float
    width_deg: float

    def __post_init__(self) -> None:
        if not 0.0 < self.width_deg <= 360.0:
            raise ValueError(f"width out of range: {self.width_deg}")
        object.__setattr__(
            self, "start_deg", normalize_bearing(self.start_deg)
        )

    @property
    def end_deg(self) -> float:
        """End bearing, normalized to [0, 360)."""
        return normalize_bearing(self.start_deg + self.width_deg)

    @property
    def center_deg(self) -> float:
        """Bearing of the sector's center."""
        return normalize_bearing(self.start_deg + self.width_deg / 2.0)

    def contains(self, bearing_deg: float) -> bool:
        """Whether ``bearing_deg`` falls inside the sector."""
        if self.width_deg >= 360.0:
            return True
        rel = normalize_bearing(bearing_deg - self.start_deg)
        return rel < self.width_deg

    def contains_array(self, bearing_deg: np.ndarray) -> np.ndarray:
        """Batch :meth:`contains` over a bearing array.

        Bearings must be finite (they come from ``atan2`` in the batch
        geometry kernels, so they always are); the scalar finiteness
        guard is skipped.
        """
        b = np.asarray(bearing_deg, dtype=np.float64)
        if self.width_deg >= 360.0:
            return np.ones(b.shape, dtype=bool)
        return (b - self.start_deg) % 360.0 < self.width_deg

    def overlaps(self, other: "AzimuthSector") -> bool:
        """Whether two sectors share any bearing."""
        return (
            self.contains(other.start_deg)
            or other.contains(self.start_deg)
        )

    @classmethod
    def from_edges(
        cls, start_deg: float, end_deg: float
    ) -> "AzimuthSector":
        """Build a sector from start/end bearings (clockwise).

        ``from_edges(350, 10)`` is a 20°-wide sector through north.
        Equal start and end denote the full circle.
        """
        start = normalize_bearing(start_deg)
        end = normalize_bearing(end_deg)
        width = normalize_bearing(end - start)
        if width == 0.0:
            width = 360.0
        return cls(start, width)


def _intervals(sectors: Iterable[AzimuthSector]) -> List[Tuple[float, float]]:
    """Unwrap sectors into non-wrapping [start, end] intervals."""
    out: List[Tuple[float, float]] = []
    for s in sectors:
        end = s.start_deg + s.width_deg
        if end <= 360.0:
            out.append((s.start_deg, end))
        else:
            out.append((s.start_deg, 360.0))
            out.append((0.0, end - 360.0))
    return out


def sector_union_width(sectors: Sequence[AzimuthSector]) -> float:
    """Total angular width covered by the union of ``sectors``.

    Overlapping sectors are counted once. Result is in [0, 360].
    """
    intervals = sorted(_intervals(sectors))
    total = 0.0
    covered_to = -1.0
    for start, end in intervals:
        if start > covered_to:
            total += end - start
            covered_to = end
        elif end > covered_to:
            total += end - covered_to
            covered_to = end
    return min(total, 360.0)
