"""Great-circle distance, bearing, and line-of-sight geometry."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geo.coords import EARTH_RADIUS_M, GeoPoint


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle ground distance between two points, in meters.

    Altitude is ignored; use :func:`slant_range_m` for the 3-D range.
    """
    dlat = b.lat_rad - a.lat_rad
    dlon = b.lon_rad - a.lon_rad
    sin_dlat = math.sin(dlat / 2.0)
    sin_dlon = math.sin(dlon / 2.0)
    h = (
        sin_dlat * sin_dlat
        + math.cos(a.lat_rad) * math.cos(b.lat_rad) * sin_dlon * sin_dlon
    )
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees.

    0 = north, 90 = east, normalized to [0, 360).
    """
    dlon = b.lon_rad - a.lon_rad
    x = math.sin(dlon) * math.cos(b.lat_rad)
    y = math.cos(a.lat_rad) * math.sin(b.lat_rad) - math.sin(
        a.lat_rad
    ) * math.cos(b.lat_rad) * math.cos(dlon)
    bearing = math.degrees(math.atan2(x, y))
    return bearing % 360.0


def destination_point(
    start: GeoPoint, bearing_deg: float, distance_m: float
) -> GeoPoint:
    """Point reached by travelling ``distance_m`` along ``bearing_deg``.

    Follows the great circle; altitude is carried over unchanged.
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative: {distance_m}")
    ang = distance_m / EARTH_RADIUS_M
    brg = math.radians(bearing_deg)
    sin_lat = math.sin(start.lat_rad) * math.cos(ang) + math.cos(
        start.lat_rad
    ) * math.sin(ang) * math.cos(brg)
    sin_lat = max(-1.0, min(1.0, sin_lat))
    lat2 = math.asin(sin_lat)
    y = math.sin(brg) * math.sin(ang) * math.cos(start.lat_rad)
    x = math.cos(ang) - math.sin(start.lat_rad) * sin_lat
    lon2 = start.lon_rad + math.atan2(y, x)
    return GeoPoint(math.degrees(lat2), math.degrees(lon2), start.alt_m)


def normalize_lon_deg_array(lon_deg: np.ndarray) -> np.ndarray:
    """Fold longitudes into [-180, 180) like ``GeoPoint.__post_init__``."""
    return ((lon_deg + 180.0) % 360.0) - 180.0


def destination_point_arrays(
    start: GeoPoint,
    bearing_deg: np.ndarray,
    distance_m: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch :func:`destination_point` from one fixed start point.

    Returns (lat_deg, lon_deg) arrays with longitudes normalized to
    [-180, 180), matching the :class:`GeoPoint` the scalar function
    would construct. Scalar-valued subexpressions go through ``math``
    so each element sees the exact scalar operation sequence.
    """
    ang = np.asarray(distance_m, dtype=np.float64) / EARTH_RADIUS_M
    brg = np.radians(np.asarray(bearing_deg, dtype=np.float64))
    sin_lat = math.sin(start.lat_rad) * np.cos(ang) + math.cos(
        start.lat_rad
    ) * np.sin(ang) * np.cos(brg)
    sin_lat = np.clip(sin_lat, -1.0, 1.0)
    lat2 = np.arcsin(sin_lat)
    y = np.sin(brg) * np.sin(ang) * math.cos(start.lat_rad)
    x = np.cos(ang) - math.sin(start.lat_rad) * sin_lat
    lon2 = start.lon_rad + np.arctan2(y, x)
    return np.degrees(lat2), normalize_lon_deg_array(np.degrees(lon2))


def destination_points_fixed_leg(
    lat_deg: np.ndarray,
    lon_deg: np.ndarray,
    bearing_deg: float,
    distance_m: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch :func:`destination_point` from many starts, one fixed leg.

    The dual of :func:`destination_point_arrays`: per-element start
    points (degree arrays, longitudes normalized) with a single
    bearing and distance. Used to drop a reference point a fixed
    distance behind each sampled trajectory position.
    """
    lat_rad = np.radians(np.asarray(lat_deg, dtype=np.float64))
    lon_rad = np.radians(np.asarray(lon_deg, dtype=np.float64))
    ang = distance_m / EARTH_RADIUS_M
    brg = math.radians(bearing_deg)
    sin_lat = np.sin(lat_rad) * math.cos(ang) + np.cos(lat_rad) * math.sin(
        ang
    ) * math.cos(brg)
    sin_lat = np.clip(sin_lat, -1.0, 1.0)
    lat2 = np.arcsin(sin_lat)
    y = math.sin(brg) * math.sin(ang) * np.cos(lat_rad)
    x = math.cos(ang) - np.sin(lat_rad) * sin_lat
    lon2 = lon_rad + np.arctan2(y, x)
    return np.degrees(lat2), normalize_lon_deg_array(np.degrees(lon2))


def initial_bearing_deg_arrays(
    lat_a_deg: np.ndarray,
    lon_a_deg: np.ndarray,
    lat_b_deg: np.ndarray,
    lon_b_deg: np.ndarray,
) -> np.ndarray:
    """Batch :func:`initial_bearing_deg` over degree arrays.

    Degree inputs (normalized longitudes) reproduce the scalar path's
    GeoPoint degree→radian round-trip, exactly like
    :func:`repro.geo.coords.geo_to_enu_arrays`.
    """
    lat_a = np.radians(np.asarray(lat_a_deg, dtype=np.float64))
    lon_a = np.radians(np.asarray(lon_a_deg, dtype=np.float64))
    lat_b = np.radians(np.asarray(lat_b_deg, dtype=np.float64))
    lon_b = np.radians(np.asarray(lon_b_deg, dtype=np.float64))
    dlon = lon_b - lon_a
    x = np.sin(dlon) * np.cos(lat_b)
    y = np.cos(lat_a) * np.sin(lat_b) - np.sin(lat_a) * np.cos(
        lat_b
    ) * np.cos(dlon)
    return np.degrees(np.arctan2(x, y)) % 360.0


def slant_range_m(a: GeoPoint, b: GeoPoint) -> float:
    """Straight-line (3-D) distance between two points in meters."""
    ground = haversine_m(a, b)
    dalt = b.alt_m - a.alt_m
    return math.hypot(ground, dalt)


def radio_horizon_m(
    antenna_height_m: float,
    target_height_m: float = 0.0,
    k_factor: float = 4.0 / 3.0,
) -> float:
    """Maximum line-of-sight range over a smooth Earth, in meters.

    Uses the standard-atmosphere effective Earth radius (k = 4/3,
    which bends VHF+ rays slightly around the curvature):
    ``d = sqrt(2*k*R*h1) + sqrt(2*k*R*h2)``. For a ground station and
    an aircraft at 12 km this is ~450 km — the physical ceiling on
    ADS-B reception range used by the position-claim checks.
    """
    if antenna_height_m < 0.0 or target_height_m < 0.0:
        raise ValueError("heights must be non-negative")
    if k_factor <= 0.0:
        raise ValueError(f"k factor must be positive: {k_factor}")
    effective_radius = k_factor * EARTH_RADIUS_M
    return math.sqrt(
        2.0 * effective_radius * antenna_height_m
    ) + math.sqrt(2.0 * effective_radius * target_height_m)


def elevation_angle_deg(observer: GeoPoint, target: GeoPoint) -> float:
    """Elevation angle of ``target`` above ``observer``'s horizontal.

    Positive when the target is above the observer's local horizon
    plane. Ignores Earth curvature drop, which is ≤0.8° at 100 km —
    small relative to the sector resolution used by obstruction maps.
    """
    ground = haversine_m(observer, target)
    dalt = target.alt_m - observer.alt_m
    if ground == 0.0:
        if dalt == 0.0:
            return 0.0
        return 90.0 if dalt > 0 else -90.0
    return math.degrees(math.atan2(dalt, ground))
