"""Great-circle distance, bearing, and line-of-sight geometry."""

from __future__ import annotations

import math

from repro.geo.coords import EARTH_RADIUS_M, GeoPoint


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle ground distance between two points, in meters.

    Altitude is ignored; use :func:`slant_range_m` for the 3-D range.
    """
    dlat = b.lat_rad - a.lat_rad
    dlon = b.lon_rad - a.lon_rad
    sin_dlat = math.sin(dlat / 2.0)
    sin_dlon = math.sin(dlon / 2.0)
    h = (
        sin_dlat * sin_dlat
        + math.cos(a.lat_rad) * math.cos(b.lat_rad) * sin_dlon * sin_dlon
    )
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees.

    0 = north, 90 = east, normalized to [0, 360).
    """
    dlon = b.lon_rad - a.lon_rad
    x = math.sin(dlon) * math.cos(b.lat_rad)
    y = math.cos(a.lat_rad) * math.sin(b.lat_rad) - math.sin(
        a.lat_rad
    ) * math.cos(b.lat_rad) * math.cos(dlon)
    bearing = math.degrees(math.atan2(x, y))
    return bearing % 360.0


def destination_point(
    start: GeoPoint, bearing_deg: float, distance_m: float
) -> GeoPoint:
    """Point reached by travelling ``distance_m`` along ``bearing_deg``.

    Follows the great circle; altitude is carried over unchanged.
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative: {distance_m}")
    ang = distance_m / EARTH_RADIUS_M
    brg = math.radians(bearing_deg)
    sin_lat = math.sin(start.lat_rad) * math.cos(ang) + math.cos(
        start.lat_rad
    ) * math.sin(ang) * math.cos(brg)
    sin_lat = max(-1.0, min(1.0, sin_lat))
    lat2 = math.asin(sin_lat)
    y = math.sin(brg) * math.sin(ang) * math.cos(start.lat_rad)
    x = math.cos(ang) - math.sin(start.lat_rad) * sin_lat
    lon2 = start.lon_rad + math.atan2(y, x)
    return GeoPoint(math.degrees(lat2), math.degrees(lon2), start.alt_m)


def slant_range_m(a: GeoPoint, b: GeoPoint) -> float:
    """Straight-line (3-D) distance between two points in meters."""
    ground = haversine_m(a, b)
    dalt = b.alt_m - a.alt_m
    return math.hypot(ground, dalt)


def radio_horizon_m(
    antenna_height_m: float,
    target_height_m: float = 0.0,
    k_factor: float = 4.0 / 3.0,
) -> float:
    """Maximum line-of-sight range over a smooth Earth, in meters.

    Uses the standard-atmosphere effective Earth radius (k = 4/3,
    which bends VHF+ rays slightly around the curvature):
    ``d = sqrt(2*k*R*h1) + sqrt(2*k*R*h2)``. For a ground station and
    an aircraft at 12 km this is ~450 km — the physical ceiling on
    ADS-B reception range used by the position-claim checks.
    """
    if antenna_height_m < 0.0 or target_height_m < 0.0:
        raise ValueError("heights must be non-negative")
    if k_factor <= 0.0:
        raise ValueError(f"k factor must be positive: {k_factor}")
    effective_radius = k_factor * EARTH_RADIUS_M
    return math.sqrt(
        2.0 * effective_radius * antenna_height_m
    ) + math.sqrt(2.0 * effective_radius * target_height_m)


def elevation_angle_deg(observer: GeoPoint, target: GeoPoint) -> float:
    """Elevation angle of ``target`` above ``observer``'s horizontal.

    Positive when the target is above the observer's local horizon
    plane. Ignores Earth curvature drop, which is ≤0.8° at 100 km —
    small relative to the sector resolution used by obstruction maps.
    """
    ground = haversine_m(observer, target)
    dalt = target.alt_m - observer.alt_m
    if ground == 0.0:
        if dalt == 0.0:
            return 0.0
        return 90.0 if dalt > 0 else -90.0
    return math.degrees(math.atan2(dalt, ground))
