"""Geographic coordinates and local tangent-plane (ENU) frames.

The simulation uses a spherical Earth. That is accurate to ~0.5% over
the ≤100 km ranges the paper's experiments cover, which is far below
the dB-scale effects the calibration techniques measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Mean Earth radius in meters (IUGG mean radius R1).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """A point on (or above) the Earth.

    Attributes:
        lat_deg: geodetic latitude in degrees, in [-90, 90].
        lon_deg: longitude in degrees, in [-180, 180).
        alt_m: altitude above the reference sphere in meters.
    """

    lat_deg: float
    lon_deg: float
    alt_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat_deg}")
        if not math.isfinite(self.lon_deg):
            raise ValueError(f"longitude must be finite: {self.lon_deg}")
        # Normalize longitude into [-180, 180) so equality and CPR
        # encoding behave predictably.
        lon = ((self.lon_deg + 180.0) % 360.0) - 180.0
        object.__setattr__(self, "lon_deg", lon)

    @property
    def lat_rad(self) -> float:
        return math.radians(self.lat_deg)

    @property
    def lon_rad(self) -> float:
        return math.radians(self.lon_deg)

    def with_altitude(self, alt_m: float) -> "GeoPoint":
        """Return a copy of this point at a different altitude."""
        return GeoPoint(self.lat_deg, self.lon_deg, alt_m)


@dataclass(frozen=True)
class ENU:
    """East-North-Up offset, in meters, relative to some origin."""

    east_m: float
    north_m: float
    up_m: float

    @property
    def horizontal_m(self) -> float:
        """Ground (horizontal) distance from the origin."""
        return math.hypot(self.east_m, self.north_m)

    @property
    def slant_m(self) -> float:
        """Straight-line distance from the origin."""
        return math.sqrt(
            self.east_m**2 + self.north_m**2 + self.up_m**2
        )

    @property
    def azimuth_deg(self) -> float:
        """Compass bearing (0 = north, 90 = east) of this offset."""
        az = math.degrees(math.atan2(self.east_m, self.north_m))
        return az % 360.0

    @property
    def elevation_deg(self) -> float:
        """Elevation angle above the local horizontal plane."""
        horiz = self.horizontal_m
        if horiz == 0.0 and self.up_m == 0.0:
            return 0.0
        return math.degrees(math.atan2(self.up_m, horiz))


def geo_to_enu(origin: GeoPoint, target: GeoPoint) -> ENU:
    """Project ``target`` into the local ENU frame of ``origin``.

    Uses the small-angle equirectangular projection, which is accurate
    to well under 1% for the ≤100 km geometries used here.
    """
    dlat = target.lat_rad - origin.lat_rad
    dlon = target.lon_rad - origin.lon_rad
    mean_lat = 0.5 * (target.lat_rad + origin.lat_rad)
    north = dlat * EARTH_RADIUS_M
    east = dlon * EARTH_RADIUS_M * math.cos(mean_lat)
    up = target.alt_m - origin.alt_m
    return ENU(east, north, up)


def geo_to_enu_arrays(
    origin: GeoPoint,
    lat_deg: np.ndarray,
    lon_deg: np.ndarray,
    alt_m: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch :func:`geo_to_enu`: (east, north, up) arrays in meters.

    Targets arrive as *degree* arrays because that is what the scalar
    path stores in :class:`GeoPoint` — converting here with
    ``np.radians`` reproduces the scalar ``lat_rad`` property's
    degree→radian round-trip exactly, which the equivalence suite
    depends on. Longitudes must already be normalized to [-180, 180)
    (the :class:`GeoPoint` constructor invariant).
    """
    lat_rad = np.radians(np.asarray(lat_deg, dtype=np.float64))
    lon_rad = np.radians(np.asarray(lon_deg, dtype=np.float64))
    dlat = lat_rad - origin.lat_rad
    dlon = lon_rad - origin.lon_rad
    mean_lat = 0.5 * (lat_rad + origin.lat_rad)
    north = dlat * EARTH_RADIUS_M
    east = dlon * EARTH_RADIUS_M * np.cos(mean_lat)
    up = np.asarray(alt_m, dtype=np.float64) - origin.alt_m
    return east, north, up


def enu_to_geo(origin: GeoPoint, offset: ENU) -> GeoPoint:
    """Inverse of :func:`geo_to_enu` (same small-angle projection)."""
    dlat = offset.north_m / EARTH_RADIUS_M
    lat_rad = origin.lat_rad + dlat
    mean_lat = 0.5 * (lat_rad + origin.lat_rad)
    cos_mean = math.cos(mean_lat)
    if abs(cos_mean) < 1e-12:
        raise ValueError("ENU inverse undefined at the poles")
    dlon = offset.east_m / (EARTH_RADIUS_M * cos_mean)
    lon_rad = origin.lon_rad + dlon
    return GeoPoint(
        math.degrees(lat_rad),
        math.degrees(lon_rad),
        origin.alt_m + offset.up_m,
    )
