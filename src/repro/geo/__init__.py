"""Geodesy substrate: coordinates, distances, bearings, and sector math.

Everything the calibration pipeline needs to reason about where
transmitters are relative to a sensor node: great-circle distance and
bearing on a spherical Earth, local East-North-Up frames for slant
geometry, and azimuth-sector arithmetic used by obstruction maps and
field-of-view estimators.
"""

from repro.geo.coords import (
    EARTH_RADIUS_M,
    ENU,
    GeoPoint,
    geo_to_enu,
    enu_to_geo,
)
from repro.geo.distance import (
    haversine_m,
    initial_bearing_deg,
    destination_point,
    slant_range_m,
    elevation_angle_deg,
    radio_horizon_m,
)
from repro.geo.sectors import (
    AzimuthSector,
    normalize_bearing,
    bearing_difference,
    sector_union_width,
)

__all__ = [
    "EARTH_RADIUS_M",
    "ENU",
    "GeoPoint",
    "geo_to_enu",
    "enu_to_geo",
    "haversine_m",
    "initial_bearing_deg",
    "destination_point",
    "slant_range_m",
    "elevation_angle_deg",
    "radio_horizon_m",
    "AzimuthSector",
    "normalize_bearing",
    "bearing_difference",
    "sector_union_width",
]
