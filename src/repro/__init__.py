"""repro — reproduction of "Automatic Calibration in Crowd-sourced
Network of Spectrum Sensors" (Abedi, Sanz, Sahai; HotNets '23).

The package implements the paper's automatic-calibration techniques —
ADS-B-based field-of-view evaluation and known-signal frequency-
response evaluation — together with every substrate they depend on,
simulated from scratch: a Mode S / ADS-B stack with a dump1090-style
decoder, aircraft traffic with a FlightRadar24-style ground-truth
service, LTE towers with an srsUE-style scanner, ATSC transmitters
with a GNU Radio-style power meter, SDR/antenna front-end models, and
a physical obstruction/propagation environment.

Typical entry points:

>>> from repro.environment import standard_testbed
>>> from repro.node import SensorNode
>>> from repro.core import CalibrationService

See ``examples/quickstart.py`` for a complete walk-through.
"""

__version__ = "1.0.0"

__all__ = [
    "adsb",
    "airspace",
    "cellular",
    "core",
    "dsp",
    "environment",
    "geo",
    "node",
    "rf",
    "runtime",
    "sdr",
    "tv",
]
