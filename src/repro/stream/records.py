"""Stream record types and the deterministic virtual clock.

Everything that flows through the ingest gateway is one of these
records. A live deployment produces :class:`SbsLineRecord` (raw
dump1090 port-30003 lines) and :class:`TruthBatchRecord` (periodic
flight-tracker queries); the replay source produces
:class:`ObservationRecord`/:class:`GhostRecord` (the §3.1 join of a
recorded scan, re-timed onto a virtual clock); every sender emits
:class:`HeartbeatRecord` so idle sessions can be told apart from dead
ones.

All records carry ``time_s`` on the *stream clock* — simulation or
replay time, never wall time — which keeps every downstream decision
(window boundaries, eviction, drift checks) deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.adsb.icao import IcaoAddress
from repro.airspace.flightradar import FlightReport
from repro.core.observations import AircraftObservation


@dataclass
class VirtualClock:
    """A deterministic, monotonically advancing stream clock.

    Replay and simulated sources stamp records from this clock instead
    of wall time, so a replayed campaign is bit-reproducible and tests
    never sleep.
    """

    now_s: float = 0.0

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` (never backwards)."""
        if dt_s < 0.0:
            raise ValueError(f"clock cannot run backwards: {dt_s}")
        self.now_s += dt_s
        return self.now_s

    def advance_to(self, t_s: float) -> float:
        """Jump to ``t_s`` if it is ahead of now (no-op otherwise)."""
        self.now_s = max(self.now_s, t_s)
        return self.now_s


@dataclass(frozen=True)
class SbsLineRecord:
    """One raw SBS-1 (BaseStation) line from a node's dump1090."""

    time_s: float
    line: str


@dataclass(frozen=True)
class TruthBatchRecord:
    """One flight-tracker query snapshot (the §3.1 ground truth)."""

    time_s: float
    reports: List[FlightReport]


@dataclass(frozen=True)
class ObservationRecord:
    """A pre-joined ground-truth observation (replay path)."""

    time_s: float
    observation: AircraftObservation


@dataclass(frozen=True)
class GhostRecord:
    """A locally-decoded ICAO absent from ground truth (replay path)."""

    time_s: float
    icao: IcaoAddress
    n_messages: int = 1


@dataclass(frozen=True)
class HeartbeatRecord:
    """Sender liveness marker; advances the session clock."""

    time_s: float


#: Everything a node session knows how to consume.
StreamRecord = Union[
    SbsLineRecord,
    TruthBatchRecord,
    ObservationRecord,
    GhostRecord,
    HeartbeatRecord,
]
