"""The live ingest gateway: broker + sessions + online engines.

`StreamGateway` is the deployable front door of the streaming
service: publishers push records through the bounded broker, node
sessions consume them into per-node online calibration engines, idle
senders are reaped, and the whole thing surfaces the same
counters/latency-percentile observability the fleet runtime's
campaigns report. Snapshots come out as batch-shaped
:class:`~repro.core.network.NodeAssessment` objects, so streaming
results drop into every existing consumer (serialization, result
cache, marketplace rendering) unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.metrics import MetricsRegistry
from repro.core.network import NodeAssessment
from repro.geo.coords import GeoPoint
from repro.stream.broker import OverflowPolicy, PutResult, StreamBroker
from repro.stream.drift import DriftEvent
from repro.stream.engine import EngineConfig
from repro.stream.records import StreamRecord
from repro.stream.session import NodeSession


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables for the whole gateway.

    Attributes:
        engine: per-node online-calibration settings (window length,
            sector binning, drift threshold).
        queue_capacity / policy: broker bound and overflow behaviour.
        idle_timeout_s: stream seconds without any record before a
            session is evicted by :meth:`StreamGateway.evict_idle`.
        quarantine_cap: malformed lines kept per session.
    """

    engine: EngineConfig = field(default_factory=EngineConfig)
    queue_capacity: int = 1024
    policy: OverflowPolicy = OverflowPolicy.BLOCK
    idle_timeout_s: float = 120.0
    quarantine_cap: int = 64

    def __post_init__(self) -> None:
        if self.idle_timeout_s <= 0.0:
            raise ValueError(
                f"idle timeout must be positive: {self.idle_timeout_s}"
            )


class StreamGateway:
    """Publishes, consumes, and exports a fleet of live node streams."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        positions: Optional[Dict[str, GeoPoint]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.broker = StreamBroker(
            capacity=self.config.queue_capacity,
            policy=self.config.policy,
            metrics=self.metrics,
        )
        #: Claimed receiver positions, needed only for live SBS joins.
        self.positions = dict(positions or {})
        self.sessions: Dict[str, NodeSession] = {}
        self.evicted_sessions: List[str] = []
        # Guards the session/eviction maps: the benchmark drives one
        # gateway from several producer and consumer threads at once,
        # and get-or-create on a bare dict is a lost-session race.
        self._lock = threading.Lock()
        # Per-node consume locks: NodeSession.handle is stateful and
        # single-consumer; concurrent drains of the *same* node must
        # serialize even though different nodes drain in parallel.
        self._drain_locks: Dict[str, threading.Lock] = {}
        # Downstream consumers of finished snapshots (e.g. the serve
        # store); invoked by export_snapshots, never under the lock.
        self._export_hooks: List[
            Callable[[Dict[str, NodeAssessment]], None]
        ] = []

    # ------------------------------------------------------------------
    # publish side

    def publish(
        self,
        node_id: str,
        record: StreamRecord,
        timeout_s: Optional[float] = None,
    ) -> PutResult:
        """Publish one record to a node's queue (policy applies)."""
        return self.broker.publish(node_id, record, timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # consume side

    def session_for(self, node_id: str) -> NodeSession:
        """The node's session, created (atomically) on first use."""
        with self._lock:
            session = self.sessions.get(node_id)
            if session is None:
                session = NodeSession(
                    node_id,
                    config=self.config.engine,
                    receiver_position=self.positions.get(node_id),
                    quarantine_cap=self.config.quarantine_cap,
                )
                self.sessions[node_id] = session
                self._drain_locks[node_id] = threading.Lock()
            return session

    def drain_node(self, node_id: str) -> int:
        """Consume everything queued for one node; returns the count."""
        started = time.perf_counter()
        session = self.session_for(node_id)
        with self._lock:
            drain_lock = self._drain_locks.get(node_id)
        if drain_lock is None:
            # Evicted between session_for and here; the fresh call
            # re-created the maps, so retry once.
            return self.drain_node(node_id)
        consumed = 0
        with drain_lock:
            for record in self.broker.queue_for(node_id).drain():
                session.handle(record)
                consumed += 1
        if consumed:
            self.metrics.incr("stream_records_consumed", consumed)
            self.metrics.observe(
                "stream_drain", time.perf_counter() - started
            )
        return consumed

    def drain(self) -> int:
        """Consume every queued record across all nodes."""
        return sum(
            self.drain_node(node_id)
            for node_id in self.broker.node_ids()
        )

    def flush(self) -> None:
        """Drain, then finalize every session's in-progress window."""
        self.drain()
        with self._lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            if session.engine.flush():
                self.metrics.incr("stream_windows_finalized")

    def evict_idle(self, now_s: float) -> List[str]:
        """Drop sessions idle past the timeout; returns evicted ids."""
        with self._lock:
            evicted = [
                node_id
                for node_id, session in self.sessions.items()
                if session.idle_for(now_s)
                > self.config.idle_timeout_s
            ]
            for node_id in evicted:
                del self.sessions[node_id]
                del self._drain_locks[node_id]
                self.evicted_sessions.append(node_id)
        for _ in evicted:
            self.metrics.incr("stream_sessions_evicted")
        return evicted

    # ------------------------------------------------------------------
    # export side

    def snapshot(self, node_id: str) -> NodeAssessment:
        """One node's online state as a batch-shaped assessment."""
        with self._lock:
            session = self.sessions.get(node_id)
        if session is None:
            raise KeyError(f"no live session for node {node_id!r}")
        return session.engine.snapshot()

    def snapshots(self) -> Dict[str, NodeAssessment]:
        """Assessments for every live session."""
        with self._lock:
            sessions = sorted(self.sessions.items())
        return {
            node_id: session.engine.snapshot()
            for node_id, session in sessions
        }

    def add_export_hook(
        self, hook: Callable[[Dict[str, NodeAssessment]], None]
    ) -> None:
        """Register a consumer of exported snapshot batches.

        The serve layer uses this to publish the gateway's state into
        a query store without the stream package importing it.
        """
        with self._lock:
            self._export_hooks.append(hook)

    def export_snapshots(self) -> Dict[str, NodeAssessment]:
        """Flush, snapshot every live session, and fan out to hooks.

        Returns the exported batch. Hooks run outside the gateway
        lock — a slow downstream store must not stall ingestion.
        """
        self.flush()
        batch = self.snapshots()
        with self._lock:
            hooks = list(self._export_hooks)
        for hook in hooks:
            hook(batch)
        self.metrics.incr("stream_snapshot_exports")
        return batch

    def drift_events(self) -> List[DriftEvent]:
        """All drift events across sessions, in detection order."""
        with self._lock:
            sessions = list(self.sessions.values())
        events = [
            event
            for session in sessions
            for event in session.engine.drift.events
        ]
        return sorted(events, key=lambda e: e.detected_at_s)

    def summary_text(self) -> str:
        """Human-readable gateway state for the CLI."""
        lines = ["stream gateway:"]
        with self._lock:
            live = sorted(self.sessions.items())
        for node_id, session in live:
            engine = session.engine
            counters = session.counters
            drift_count = len(engine.drift.events)
            lines.append(
                f"  {node_id}: {counters.records} records, "
                f"{len(engine.summaries)} windows, "
                f"{counters.malformed_lines} quarantined, "
                f"{drift_count} drift event(s)"
            )
        summary = self.metrics.summary()
        interesting = [
            "broker_enqueued",
            "broker_dropped_oldest",
            "broker_rejected",
            "broker_put_timeouts",
            "stream_records_consumed",
            "stream_windows_finalized",
            "stream_sessions_evicted",
        ]
        parts = [
            f"{name}={summary[name]}"
            for name in interesting
            if name in summary
        ]
        if "stream_drain_p50_s" in summary:
            parts.append(
                f"drain p50 {summary['stream_drain_p50_s'] * 1e3:.2f} ms"
            )
            parts.append(
                f"p95 {summary['stream_drain_p95_s'] * 1e3:.2f} ms"
            )
        lines.append("  metrics: " + ", ".join(parts))
        return "\n".join(lines)
