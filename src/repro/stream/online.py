"""Online incremental calibration state (never re-scans history).

The batch pipeline answers "what is this node's field of view?" by
collecting a full :class:`~repro.core.observations.DirectionalScan`
and running an estimator over it. A long-running service cannot
afford that: state must update per record and stay O(window), not
O(history). This module maintains, per node:

- :class:`OnlineSectorStats` — the sliding-window incremental twin of
  :class:`~repro.core.fov.SectorHistogramEstimator`: per-bin
  received/total counters plus a lazy-deletion max-heap for per-bin
  range maxima. Adding and evicting an observation are O(log w);
  taking an estimate is O(bins). On any window it produces
  *bit-identical* flags to the batch estimator over the same
  observations (tested).
- :class:`OnlineTrustStats` — incremental twins of the
  :class:`~repro.core.network.TrustEvaluator` checks (ghost,
  too-perfect, RSSI trend), maintained as windowed counts and moment
  sums, materialized into the same
  :class:`~repro.core.network.TrustCheck` records the batch path
  serializes.

Both are driven by :class:`SlidingWindow`, a time-ordered deque that
evicts entries older than ``window_s`` and reverses their
contribution — the only data structure that ever holds raw
observations.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.adsb.icao import IcaoAddress
from repro.core.fov import (
    MULTIPATH_FLOOR_KM,
    FieldOfViewEstimate,
    fill_unobserved,
)
from repro.core.network import TrustCheck
from repro.core.observations import AircraftObservation, DirectionalScan


class _LazyMaxHeap:
    """Max over a multiset with deferred deletions.

    ``push``/``discard`` are O(log n) amortized; ``max`` pops dead
    entries lazily. This is what lets per-bin range maxima survive
    sliding-window eviction without re-scanning the window.
    """

    def __init__(self) -> None:
        self._heap: List[float] = []
        self._dead: Dict[float, int] = {}

    def push(self, value: float) -> None:
        heapq.heappush(self._heap, -value)

    def discard(self, value: float) -> None:
        self._dead[value] = self._dead.get(value, 0) + 1

    def max(self) -> float:
        """Current maximum, or 0.0 when empty (the batch default)."""
        while self._heap:
            top = -self._heap[0]
            dead = self._dead.get(top, 0)
            if dead:
                heapq.heappop(self._heap)
                if dead == 1:
                    del self._dead[top]
                else:
                    self._dead[top] = dead - 1
                continue
            return top
        return 0.0


@dataclass
class OnlineSectorStats:
    """Incremental per-sector received/missed statistics.

    Parameters mirror
    :class:`~repro.core.fov.SectorHistogramEstimator` exactly, and
    :meth:`estimate` applies the same open/closed rule and
    nearest-neighbour fill, so a window's estimate is bit-identical
    to running the batch estimator over the window's observations.
    """

    bin_deg: float = 10.0
    min_range_km: float = MULTIPATH_FLOOR_KM
    min_received: int = 1
    min_ratio: float = 0.34

    def __post_init__(self) -> None:
        self.n_bins = int(round(360.0 / self.bin_deg))
        self._received = [0] * self.n_bins
        self._total = [0] * self.n_bins
        self._ranges = [_LazyMaxHeap() for _ in range(self.n_bins)]

    def _bin(self, bearing_deg: float) -> int:
        return int(bearing_deg / self.bin_deg) % self.n_bins

    def add(self, obs: AircraftObservation) -> None:
        """Fold one observation into the window."""
        if obs.ground_range_km < self.min_range_km:
            return
        idx = self._bin(obs.bearing_deg)
        self._total[idx] += 1
        if obs.received:
            self._received[idx] += 1
            self._ranges[idx].push(obs.ground_range_km)

    def remove(self, obs: AircraftObservation) -> None:
        """Reverse :meth:`add` when the observation leaves the window."""
        if obs.ground_range_km < self.min_range_km:
            return
        idx = self._bin(obs.bearing_deg)
        self._total[idx] -= 1
        if obs.received:
            self._received[idx] -= 1
            self._ranges[idx].discard(obs.ground_range_km)

    def evidence_count(self) -> int:
        """Informative observations currently in the window."""
        return sum(self._total)

    def estimate(self) -> FieldOfViewEstimate:
        """The window's field-of-view estimate (batch-identical)."""
        flags: List[Optional[bool]] = [None] * self.n_bins
        for i in range(self.n_bins):
            if self._total[i] == 0:
                continue
            flags[i] = (
                self._received[i] >= self.min_received
                and self._received[i] / self._total[i] >= self.min_ratio
            )
        return FieldOfViewEstimate(
            bin_deg=self.bin_deg,
            open_flags=fill_unobserved(flags),
            max_range_km=[h.max() for h in self._ranges],
        )


@dataclass
class OnlineTrustStats:
    """Windowed counts and moment sums behind the trust checks.

    Thresholds mirror :class:`~repro.core.network.TrustEvaluator`;
    the RSSI spread/trend uses running moment sums instead of a
    re-scan, so verdicts agree with the batch evaluator up to float
    summation order.
    """

    max_ghost_fraction: float = 0.10
    perfect_rate_threshold: float = 0.98
    far_range_km: float = 70.0

    n_observations: int = 0
    n_received: int = 0
    n_far: int = 0
    n_far_received: int = 0
    ghost_count: int = 0
    ghost_messages: int = 0
    received_messages: int = 0
    # RSSI-vs-log-distance moment sums over received observations.
    rssi_n: int = 0
    rssi_sx: float = 0.0
    rssi_sy: float = 0.0
    rssi_sxx: float = 0.0
    rssi_syy: float = 0.0
    rssi_sxy: float = 0.0

    def _rssi_point(
        self, obs: AircraftObservation
    ) -> Optional[Tuple[float, float]]:
        if not obs.received or obs.mean_rssi_dbfs is None:
            return None
        return (
            math.log10(max(obs.ground_range_m, 1.0)),
            obs.mean_rssi_dbfs,
        )

    def add(self, obs: AircraftObservation) -> None:
        self._apply(obs, +1)

    def remove(self, obs: AircraftObservation) -> None:
        self._apply(obs, -1)

    def _apply(self, obs: AircraftObservation, sign: int) -> None:
        self.n_observations += sign
        far = obs.ground_range_km >= self.far_range_km
        if far:
            self.n_far += sign
        if obs.received:
            self.n_received += sign
            self.received_messages += sign * obs.n_messages
            if far:
                self.n_far_received += sign
        point = self._rssi_point(obs)
        if point is not None:
            x, y = point
            self.rssi_n += sign
            self.rssi_sx += sign * x
            self.rssi_sy += sign * y
            self.rssi_sxx += sign * x * x
            self.rssi_syy += sign * y * y
            self.rssi_sxy += sign * x * y

    def add_ghost(self, n_messages: int = 1) -> None:
        self.ghost_count += 1
        self.ghost_messages += n_messages

    def remove_ghost(self, n_messages: int = 1) -> None:
        self.ghost_count -= 1
        self.ghost_messages -= n_messages

    def _ghost_check(self) -> TrustCheck:
        reported = self.n_received + self.ghost_count
        if reported == 0:
            return TrustCheck("ghost", True, 1.0, "no reported aircraft")
        fraction = self.ghost_count / reported
        passed = fraction <= self.max_ghost_fraction
        slack = self.max_ghost_fraction * 4.0
        score = max(0.0, 1.0 - fraction / slack) if slack > 0 else 0.0
        if fraction == 0.0:
            score = 1.0
        return TrustCheck(
            "ghost",
            passed,
            score,
            f"{self.ghost_count} ghost aircraft "
            f"({fraction:.1%} of reported)",
        )

    def _too_perfect_check(self) -> TrustCheck:
        if self.n_observations < 10 or self.n_far < 5:
            return TrustCheck(
                "too_perfect", True, 1.0, "insufficient traffic to judge"
            )
        total_rate = self.n_received / self.n_observations
        far_rate = self.n_far_received / self.n_far
        suspicious = (
            total_rate >= self.perfect_rate_threshold
            and far_rate >= self.perfect_rate_threshold
        )
        return TrustCheck(
            "too_perfect",
            not suspicious,
            0.2 if suspicious else 1.0,
            f"reception rate {total_rate:.1%}, far-aircraft rate "
            f"{far_rate:.1%}",
        )

    def _rssi_check(self) -> TrustCheck:
        n = self.rssi_n
        if n < 8:
            return TrustCheck(
                "rssi", True, 1.0, "too few RSSI samples to judge"
            )
        var_y = max(self.rssi_syy / n - (self.rssi_sy / n) ** 2, 0.0)
        spread = math.sqrt(var_y)
        if spread < 1.5:
            return TrustCheck(
                "rssi",
                False,
                0.2,
                f"implausibly uniform RSSI (std {spread:.2f} dB)",
            )
        var_x = max(self.rssi_sxx / n - (self.rssi_sx / n) ** 2, 0.0)
        cov = self.rssi_sxy / n - (self.rssi_sx / n) * (self.rssi_sy / n)
        denom = math.sqrt(var_x * var_y)
        corr = cov / denom if denom > 0.0 else 0.0
        if corr > 0.3:
            return TrustCheck(
                "rssi",
                False,
                0.6,
                f"RSSI increases with distance (corr {corr:+.2f})",
            )
        return TrustCheck(
            "rssi",
            True,
            1.0,
            f"RSSI std {spread:.1f} dB, distance corr {corr:+.2f}",
        )

    def checks(self) -> List[TrustCheck]:
        """The window's trust checks, batch-ordered."""
        return [
            self._ghost_check(),
            self._too_perfect_check(),
            self._rssi_check(),
        ]


#: Window entries: a joined observation or a ghost ICAO.
_OBS = "obs"
_GHOST = "ghost"


@dataclass
class SlidingWindow:
    """Time-ordered window over observations and ghosts.

    The one place raw records are retained. Everything else
    (sector stats, trust stats) is a running aggregate updated on
    admit/evict — eviction walks only the expiring prefix, never the
    whole window.
    """

    window_s: float
    sector: OnlineSectorStats
    trust: OnlineTrustStats
    _entries: Deque[Tuple[float, str, object, int]] = field(
        default_factory=deque
    )

    def __post_init__(self) -> None:
        if self.window_s <= 0.0:
            raise ValueError(f"window must be positive: {self.window_s}")

    def add_observation(
        self, time_s: float, obs: AircraftObservation
    ) -> None:
        self._entries.append((time_s, _OBS, obs, 0))
        self.sector.add(obs)
        self.trust.add(obs)

    def add_ghost(
        self, time_s: float, icao: IcaoAddress, n_messages: int = 1
    ) -> None:
        self._entries.append((time_s, _GHOST, icao, n_messages))
        self.trust.add_ghost(n_messages)

    def evict_until(self, now_s: float) -> int:
        """Expire entries strictly older than ``now_s - window_s``."""
        cutoff = now_s - self.window_s
        evicted = 0
        while self._entries and self._entries[0][0] < cutoff:
            _, kind, payload, n_messages = self._entries.popleft()
            if kind == _OBS:
                self.sector.remove(payload)
                self.trust.remove(payload)
            else:
                self.trust.remove_ghost(n_messages)
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._entries)

    def observations(self) -> List[AircraftObservation]:
        """Materialize the windowed observations (snapshot/export only)."""
        return [
            payload
            for _, kind, payload, _ in self._entries
            if kind == _OBS
        ]

    def ghost_icaos(self) -> List[IcaoAddress]:
        """Materialize the windowed ghosts (snapshot/export only)."""
        return sorted(
            payload
            for _, kind, payload, _ in self._entries
            if kind == _GHOST
        )

    def to_scan(self, node_id: str, radius_m: float) -> DirectionalScan:
        """The window as a batch-shaped scan (snapshot/export only)."""
        return DirectionalScan(
            node_id=node_id,
            duration_s=self.window_s,
            radius_m=radius_m,
            observations=self.observations(),
            decoded_message_count=(
                self.trust.received_messages + self.trust.ghost_messages
            ),
            ghost_icaos=self.ghost_icaos(),
        )
