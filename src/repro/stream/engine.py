"""Per-node online calibration engine.

One engine per connected node: it owns the sliding window, advances
the stream clock, finalizes calibration windows as time crosses
window boundaries (running the drift detector on each), and can at
any moment materialize its online state into the same
:class:`~repro.core.network.NodeAssessment` the batch pipeline
produces — so a streaming deployment and `evaluate_network` results
are directly comparable (and serialize through the same
:mod:`repro.core.serialize` converters the runtime cache uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.adsb.icao import IcaoAddress
from repro.core.classify import classify_node, extract_features
from repro.core.frequency import FrequencyProfile
from repro.core.network import NodeAssessment, TrustAssessment
from repro.core.observations import AircraftObservation
from repro.core.report import CalibrationReport
from repro.stream.drift import DriftDetector, DriftEvent, RecalibrationRequest
from repro.stream.online import (
    OnlineSectorStats,
    OnlineTrustStats,
    SlidingWindow,
)


@dataclass(frozen=True)
class EngineConfig:
    """Tunables for one node's online calibration.

    ``bin_deg`` / ``min_range_km`` / ``min_received`` / ``min_ratio``
    mirror :class:`~repro.core.fov.SectorHistogramEstimator` so the
    online estimate stays bit-compatible with the batch path.
    """

    window_s: float = 30.0
    radius_m: float = 100_000.0
    bin_deg: float = 10.0
    min_range_km: float = 20.0
    min_received: int = 1
    min_ratio: float = 0.34
    drift_threshold: float = 0.30
    drift_min_evidence: int = 20
    recalibration_windows: int = 3

    def __post_init__(self) -> None:
        if self.window_s <= 0.0:
            raise ValueError(f"window must be positive: {self.window_s}")
        if self.radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {self.radius_m}")


@dataclass
class WindowSummary:
    """What one finalized window concluded."""

    index: int
    end_s: float
    evidence: int
    open_fraction: float
    drift: Optional[DriftEvent]


class OnlineCalibrationEngine:
    """Sliding-window calibration state for one node.

    Records arrive through :meth:`add_observation` / :meth:`add_ghost`
    / :meth:`advance` with non-decreasing timestamps (the broker's
    per-node FIFO preserves source order). Whenever time crosses a
    ``window_s`` boundary the engine finalizes the completed window:
    evicts expired entries, takes the incremental sector estimate, and
    runs the drift detector against the node's accepted profile.
    """

    def __init__(
        self,
        node_id: str,
        config: Optional[EngineConfig] = None,
        on_window_end: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config or EngineConfig()
        cfg = self.config
        self.window = SlidingWindow(
            window_s=cfg.window_s,
            sector=OnlineSectorStats(
                bin_deg=cfg.bin_deg,
                min_range_km=cfg.min_range_km,
                min_received=cfg.min_received,
                min_ratio=cfg.min_ratio,
            ),
            trust=OnlineTrustStats(),
        )
        self.drift = DriftDetector(
            node_id=node_id,
            threshold=cfg.drift_threshold,
            min_evidence=cfg.drift_min_evidence,
            recalibration_windows=cfg.recalibration_windows,
        )
        #: Called with the boundary time just before a window closes,
        #: so sessions can flush per-window state (e.g. ghost tallies)
        #: into the closing window.
        self.on_window_end = on_window_end
        self.now_s = 0.0
        self.window_index = 0
        self.summaries: List[WindowSummary] = []

    # ------------------------------------------------------------------
    # time

    def advance(self, time_s: float) -> None:
        """Move the stream clock forward, finalizing crossed windows."""
        if time_s <= self.now_s:
            return
        boundary = (self.window_index + 1) * self.config.window_s
        while time_s >= boundary:
            self._finalize(boundary)
            self.window_index += 1
            boundary = (self.window_index + 1) * self.config.window_s
        self.now_s = time_s
        self.window.evict_until(self.now_s)

    def flush(self) -> bool:
        """Finalize the in-progress window at the end of a stream.

        A no-op (returning False) when the clock sits exactly on the
        last finalized boundary (nothing has arrived since), so
        flushing after a boundary-pinning heartbeat does not close an
        empty window and evict the previous one.
        """
        if self.now_s <= self.window_index * self.config.window_s:
            return False
        boundary = (self.window_index + 1) * self.config.window_s
        self._finalize(boundary)
        self.window_index += 1
        return True

    def _finalize(self, boundary_s: float) -> None:
        if self.on_window_end is not None:
            self.on_window_end(boundary_s)
        self.now_s = boundary_s
        self.window.evict_until(boundary_s)
        estimate = self.window.sector.estimate()
        evidence = self.window.sector.evidence_count()
        drift = self.drift.check(boundary_s, estimate, evidence)
        self.summaries.append(
            WindowSummary(
                index=self.window_index,
                end_s=boundary_s,
                evidence=evidence,
                open_fraction=estimate.open_fraction(),
                drift=drift,
            )
        )

    # ------------------------------------------------------------------
    # records

    def add_observation(
        self, time_s: float, obs: AircraftObservation
    ) -> None:
        """Fold one joined ground-truth observation into the window."""
        self.advance(time_s)
        self.window.add_observation(time_s, obs)

    def add_ghost(
        self, time_s: float, icao: IcaoAddress, n_messages: int = 1
    ) -> None:
        """Fold one ghost (decoded, untracked) aircraft into the window."""
        self.advance(time_s)
        self.window.add_ghost(time_s, icao, n_messages)

    def ghost_time_for_boundary(self, boundary_s: float) -> float:
        """A timestamp just inside the window closing at ``boundary_s``.

        Sessions flushing per-window ghost tallies use this so the
        entries land in (and later expire with) the correct window
        while keeping the eviction deque time-ordered.
        """
        return math.nextafter(boundary_s, -math.inf)

    # ------------------------------------------------------------------
    # export

    @property
    def recalibration_requests(self) -> List[RecalibrationRequest]:
        """Every re-calibration the drift detector has requested."""
        return [event.request for event in self.drift.events]

    def snapshot(self) -> NodeAssessment:
        """Materialize the online state as a batch-shaped assessment.

        The scan covers the current sliding window; the field of view
        is the incremental sector estimate; the frequency profile is
        empty (a live ADS-B stream carries no §3.2 sweep), which the
        feature extractor and classifier handle as "nothing decoded".
        The result round-trips through
        :func:`repro.core.serialize.assessment_to_dict` like any
        batch assessment.
        """
        scan = self.window.to_scan(self.node_id, self.config.radius_m)
        fov = self.window.sector.estimate()
        profile = FrequencyProfile(node_id=self.node_id)
        report = CalibrationReport(
            node_id=self.node_id,
            scan=scan,
            fov=fov,
            profile=profile,
            features=extract_features(scan, fov, profile),
            classification=classify_node(scan, fov, profile),
        )
        trust = TrustAssessment(
            node_id=self.node_id, checks=self.window.trust.checks()
        )
        return NodeAssessment(
            node_id=self.node_id, report=report, trust=trust
        )
