"""repro.stream — live ingest gateway with online calibration.

The paper's network runs *continuously* — nodes stream decoded ADS-B
over SBS-1 while the verifier consumes them (§2, §3.1) — and
Electrosense-style deployments live or die on that streaming path.
This package turns calibration from a one-shot experiment
(:mod:`repro.core`, :mod:`repro.runtime`) into a long-running
service:

- :mod:`repro.stream.broker` — bounded per-node queues with explicit,
  counted backpressure policies (block / drop-oldest / reject);
- :mod:`repro.stream.records` — the stream record vocabulary and the
  deterministic virtual clock;
- :mod:`repro.stream.sources` — replay of recorded scans and
  window-by-window simulated live nodes (with mid-stream site swaps
  for drift scenarios);
- :mod:`repro.stream.session` — per-sender consumers with heartbeats,
  malformed-line quarantine, and the online §3.1 truth join;
- :mod:`repro.stream.online` — sliding-window incremental sector
  statistics (bit-compatible with the batch
  :class:`~repro.core.fov.SectorHistogramEstimator`) and incremental
  trust-check state;
- :mod:`repro.stream.drift` — divergence detection against the
  accepted profile, requesting re-calibration through
  :class:`~repro.core.scheduler.MeasurementScheduler`;
- :mod:`repro.stream.engine` / :mod:`repro.stream.gateway` — the
  per-node engine and the deployable gateway, exporting batch-shaped
  :class:`~repro.core.network.NodeAssessment` snapshots.

Entry point: ``python -m repro stream --source replay|sim``.
"""

from repro.stream.broker import (
    BoundedQueue,
    OverflowPolicy,
    PutResult,
    QueueStats,
    StreamBroker,
)
from repro.stream.drift import (
    DriftDetector,
    DriftEvent,
    RecalibrationRequest,
    profile_divergence,
)
from repro.stream.engine import (
    EngineConfig,
    OnlineCalibrationEngine,
    WindowSummary,
)
from repro.stream.gateway import GatewayConfig, StreamGateway
from repro.stream.online import (
    OnlineSectorStats,
    OnlineTrustStats,
    SlidingWindow,
)
from repro.stream.records import (
    GhostRecord,
    HeartbeatRecord,
    ObservationRecord,
    SbsLineRecord,
    StreamRecord,
    TruthBatchRecord,
    VirtualClock,
)
from repro.stream.session import NodeSession, SessionCounters
from repro.stream.sources import (
    ReplaySource,
    SimulatedNodeSource,
    replay_scans,
)

__all__ = [
    "BoundedQueue",
    "DriftDetector",
    "DriftEvent",
    "EngineConfig",
    "GatewayConfig",
    "GhostRecord",
    "HeartbeatRecord",
    "NodeSession",
    "ObservationRecord",
    "OnlineCalibrationEngine",
    "OnlineSectorStats",
    "OnlineTrustStats",
    "OverflowPolicy",
    "PutResult",
    "QueueStats",
    "RecalibrationRequest",
    "ReplaySource",
    "SbsLineRecord",
    "SessionCounters",
    "SimulatedNodeSource",
    "SlidingWindow",
    "StreamBroker",
    "StreamGateway",
    "StreamRecord",
    "TruthBatchRecord",
    "VirtualClock",
    "WindowSummary",
    "profile_divergence",
    "replay_scans",
]
