"""Node sessions: one consumer-side state machine per live sender.

A session owns a node's :class:`~repro.stream.engine.OnlineCalibrationEngine`
and knows how to turn raw stream records into engine updates:

- **SBS lines** are parsed with the hardened
  :func:`~repro.adsb.sbs.parse_sbs`; malformed lines go to a capped
  quarantine buffer (and a counter) instead of crashing the consumer —
  a flaky sender degrades its own data, not the service.
- **Truth batches** (flight-tracker snapshots) are joined online
  against the window's decoded-ICAO tallies, exactly the §3.1 join
  ``scan_from_sbs`` performs in batch.
- **Ghost flushing**: when a calibration window closes, decoded ICAOs
  never matched by any truth batch in that window are folded into the
  trust state as ghosts.
- **Heartbeats** advance the clock and refresh liveness;
  sessions that stop heartbeating are evicted by the gateway's idle
  reaper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.adsb.icao import IcaoAddress
from repro.adsb.sbs import parse_sbs
from repro.core.observations import AircraftObservation
from repro.environment.links import ray_geometry
from repro.geo.coords import GeoPoint
from repro.stream.engine import EngineConfig, OnlineCalibrationEngine
from repro.stream.records import (
    GhostRecord,
    HeartbeatRecord,
    ObservationRecord,
    SbsLineRecord,
    StreamRecord,
    TruthBatchRecord,
)

#: Quarantined lines kept per session — enough to debug a bad sender,
#: bounded so one cannot leak memory by streaming garbage.
DEFAULT_QUARANTINE_CAP = 64


@dataclass
class _LiveTally:
    """Per-window decoded-message state for one ICAO (live join)."""

    n_messages: int = 0
    last_time_s: float = 0.0
    matched: bool = False


@dataclass
class SessionCounters:
    """Everything a session has seen, by disposition."""

    records: int = 0
    sbs_lines: int = 0
    malformed_lines: int = 0
    blank_lines: int = 0
    truth_reports: int = 0
    observations: int = 0
    ghosts: int = 0
    heartbeats: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "sbs_lines": self.sbs_lines,
            "malformed_lines": self.malformed_lines,
            "blank_lines": self.blank_lines,
            "truth_reports": self.truth_reports,
            "observations": self.observations,
            "ghosts": self.ghosts,
            "heartbeats": self.heartbeats,
        }


class NodeSession:
    """Consumes one node's record stream into its online engine.

    Attributes:
        node_id: the sending node.
        receiver_position: the node's (claimed) location — required to
            join live SBS traffic against truth batches; replay
            records arrive pre-joined and do not need it.
        quarantine: the most recent malformed lines as
            ``(time_s, line, error)`` tuples, capped.
    """

    def __init__(
        self,
        node_id: str,
        config: Optional[EngineConfig] = None,
        receiver_position: Optional[GeoPoint] = None,
        quarantine_cap: int = DEFAULT_QUARANTINE_CAP,
    ) -> None:
        self.node_id = node_id
        self.receiver_position = receiver_position
        self.engine = OnlineCalibrationEngine(
            node_id, config, on_window_end=self._flush_window_tallies
        )
        self.counters = SessionCounters()
        self.quarantine: Deque[Tuple[float, str, str]] = deque(
            maxlen=max(1, quarantine_cap)
        )
        self.last_seen_s = 0.0
        self._tallies: Dict[IcaoAddress, _LiveTally] = {}

    def handle(self, record: StreamRecord) -> None:
        """Consume one record; malformed input never raises."""
        if not isinstance(
            record,
            (
                SbsLineRecord,
                TruthBatchRecord,
                ObservationRecord,
                GhostRecord,
                HeartbeatRecord,
            ),
        ):
            raise TypeError(f"unknown stream record: {type(record)!r}")
        self.counters.records += 1
        self.last_seen_s = max(self.last_seen_s, record.time_s)
        if isinstance(record, SbsLineRecord):
            self._handle_sbs(record)
        elif isinstance(record, TruthBatchRecord):
            self._handle_truth(record)
        elif isinstance(record, ObservationRecord):
            self.counters.observations += 1
            self.engine.add_observation(record.time_s, record.observation)
        elif isinstance(record, GhostRecord):
            self.counters.ghosts += 1
            self.engine.add_ghost(
                record.time_s, record.icao, record.n_messages
            )
        else:
            self.counters.heartbeats += 1
            self.engine.advance(record.time_s)

    # ------------------------------------------------------------------
    # live SBS path

    def _handle_sbs(self, record: SbsLineRecord) -> None:
        line = record.line.strip()
        if not line:
            self.counters.blank_lines += 1
            self.engine.advance(record.time_s)
            return
        try:
            parsed = parse_sbs(line)
        except ValueError as exc:
            self.counters.malformed_lines += 1
            self.quarantine.append((record.time_s, line, str(exc)))
            self.engine.advance(record.time_s)
            return
        self.counters.sbs_lines += 1
        self.engine.advance(record.time_s)
        tally = self._tallies.setdefault(parsed.icao, _LiveTally())
        tally.n_messages += 1
        tally.last_time_s = record.time_s

    def _handle_truth(self, record: TruthBatchRecord) -> None:
        """Join one tracker snapshot against the window's tallies."""
        if self.receiver_position is None:
            raise ValueError(
                f"session {self.node_id!r} needs a receiver position "
                "to join live truth batches"
            )
        self.engine.advance(record.time_s)
        for report in record.reports:
            self.counters.truth_reports += 1
            geom = ray_geometry(self.receiver_position, report.position)
            tally = self._tallies.get(report.icao)
            received = tally is not None and tally.n_messages > 0
            if tally is not None:
                tally.matched = True
            self.counters.observations += 1
            self.engine.add_observation(
                record.time_s,
                AircraftObservation(
                    icao=report.icao,
                    callsign=report.callsign,
                    bearing_deg=geom.azimuth_deg,
                    ground_range_m=geom.ground_m,
                    elevation_deg=geom.elevation_deg,
                    position=report.position,
                    received=received,
                    n_messages=tally.n_messages if received else 0,
                    # live SBS lines carry no RSSI
                    mean_rssi_dbfs=None,
                ),
            )

    def _flush_window_tallies(self, boundary_s: float) -> None:
        """Window close: unmatched decoded ICAOs become ghosts."""
        if not self._tallies:
            return
        ghost_time = self.engine.ghost_time_for_boundary(boundary_s)
        for icao in sorted(self._tallies):
            tally = self._tallies[icao]
            if not tally.matched:
                self.counters.ghosts += 1
                self.engine.window.add_ghost(
                    ghost_time, icao, tally.n_messages
                )
        self._tallies.clear()

    # ------------------------------------------------------------------

    def idle_for(self, now_s: float) -> float:
        """Stream seconds since this sender was last heard."""
        return max(0.0, now_s - self.last_seen_s)
