"""Bounded per-node record queues with explicit overflow policies.

A crowd-sourced network's ingest path is where memory dies first:
thousands of cheap senders, some of them bursty, some wedged, some
malicious. The broker gives every node a *bounded* queue and makes the
overflow behaviour an explicit, counted policy instead of an OOM:

- ``BLOCK`` — the publisher waits (with a timeout) for space; the
  default for trusted local pipes where losing data is worse than
  slowing the sender.
- ``DROP_OLDEST`` — the queue sheds its oldest record to admit the
  new one; right for live telemetry where fresh data beats stale.
- ``REJECT`` — the new record is refused; right when the sender can
  retry (and the transport can say "429").

Every drop, rejection and timeout increments a counter — backpressure
you cannot observe is backpressure you cannot debug.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.metrics import MetricsRegistry
from repro.stream.records import StreamRecord


class OverflowPolicy(enum.Enum):
    """What a full queue does with the next record."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    REJECT = "reject"


class PutResult(enum.Enum):
    """Outcome of one publish attempt."""

    OK = "ok"
    DROPPED_OLDEST = "dropped-oldest"
    REJECTED = "rejected"
    TIMEOUT = "timeout"

    @property
    def accepted(self) -> bool:
        """Whether the published record made it into the queue."""
        return self in (PutResult.OK, PutResult.DROPPED_OLDEST)


@dataclass
class QueueStats:
    """Counters for one node's queue (drops are never silent)."""

    enqueued: int = 0
    consumed: int = 0
    dropped_oldest: int = 0
    rejected: int = 0
    timeouts: int = 0
    high_watermark: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "enqueued": self.enqueued,
            "consumed": self.consumed,
            "dropped_oldest": self.dropped_oldest,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "high_watermark": self.high_watermark,
        }


class BoundedQueue:
    """One node's bounded FIFO with a configurable overflow policy."""

    def __init__(
        self,
        capacity: int,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.stats = QueueStats()
        self._items: Deque[StreamRecord] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(
        self,
        record: StreamRecord,
        timeout_s: Optional[float] = None,
    ) -> PutResult:
        """Publish one record under this queue's overflow policy.

        ``timeout_s`` only matters under ``BLOCK``: ``None`` waits
        forever, otherwise the put gives up (and is counted) after
        that long without space.
        """
        with self._lock:
            if len(self._items) >= self.capacity:
                if self.policy is OverflowPolicy.REJECT:
                    self.stats.rejected += 1
                    return PutResult.REJECTED
                if self.policy is OverflowPolicy.DROP_OLDEST:
                    self._items.popleft()
                    self.stats.dropped_oldest += 1
                    self._append(record)
                    return PutResult.DROPPED_OLDEST
                # BLOCK: wait for a consumer to make room.
                if not self._not_full.wait_for(
                    lambda: len(self._items) < self.capacity,
                    timeout=timeout_s,
                ):
                    self.stats.timeouts += 1
                    return PutResult.TIMEOUT
            self._append(record)
            return PutResult.OK

    def _append(self, record: StreamRecord) -> None:
        """Append under the held lock and update counters/waiters."""
        self._items.append(record)
        self.stats.enqueued += 1
        self.stats.high_watermark = max(
            self.stats.high_watermark, len(self._items)
        )
        self._not_empty.notify()

    def get(self, timeout_s: Optional[float] = None) -> Optional[StreamRecord]:
        """Pop the oldest record, waiting up to ``timeout_s``.

        Returns ``None`` on timeout (``timeout_s=0`` is a non-blocking
        poll).
        """
        with self._lock:
            if not self._items and timeout_s != 0:
                self._not_empty.wait_for(
                    lambda: bool(self._items), timeout=timeout_s
                )
            if not self._items:
                return None
            record = self._items.popleft()
            self.stats.consumed += 1
            self._not_full.notify()
            return record

    def drain(self) -> List[StreamRecord]:
        """Pop everything currently queued (non-blocking)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self.stats.consumed += len(items)
            self._not_full.notify_all()
            return items


class StreamBroker:
    """Per-node bounded queues between publishers and sessions.

    Attributes:
        capacity: per-node queue bound.
        policy: overflow policy applied to every queue.
        metrics: shared registry mirroring the global counters
            (``broker_enqueued``, ``broker_dropped_oldest``,
            ``broker_rejected``, ``broker_put_timeouts``).
    """

    def __init__(
        self,
        capacity: int = 1024,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queues: Dict[str, BoundedQueue] = {}
        self._lock = threading.Lock()

    def queue_for(self, node_id: str) -> BoundedQueue:
        """The node's queue, created on first use."""
        with self._lock:
            queue = self._queues.get(node_id)
            if queue is None:
                queue = BoundedQueue(self.capacity, self.policy)
                self._queues[node_id] = queue
            return queue

    def publish(
        self,
        node_id: str,
        record: StreamRecord,
        timeout_s: Optional[float] = None,
    ) -> PutResult:
        """Publish one record to a node's queue."""
        result = self.queue_for(node_id).put(record, timeout_s=timeout_s)
        if result is PutResult.DROPPED_OLDEST:
            self.metrics.incr("broker_dropped_oldest")
        elif result is PutResult.REJECTED:
            self.metrics.incr("broker_rejected")
        elif result is PutResult.TIMEOUT:
            self.metrics.incr("broker_put_timeouts")
        if result.accepted:
            self.metrics.incr("broker_enqueued")
        return result

    def node_ids(self) -> List[str]:
        """Nodes that have (or had) a queue, sorted."""
        with self._lock:
            return sorted(self._queues)

    def depth(self, node_id: str) -> int:
        """Records currently queued for one node."""
        with self._lock:
            queue = self._queues.get(node_id)
        return len(queue) if queue is not None else 0

    def total_dropped(self) -> int:
        """Drops + rejections + timeouts across all queues."""
        with self._lock:
            queues = list(self._queues.values())
        return sum(
            q.stats.dropped_oldest + q.stats.rejected + q.stats.timeouts
            for q in queues
        )

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-node counter snapshot."""
        with self._lock:
            return {
                node_id: queue.stats.as_dict()
                for node_id, queue in sorted(self._queues.items())
            }
