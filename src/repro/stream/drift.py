"""Field-of-view drift detection and re-calibration requests.

A node's accepted calibration profile goes stale the moment the
operator moves the antenna indoors, swaps hardware, or starts
fabricating: the paper's one-shot calibration (§3.1) has no way to
notice. The drift detector compares each completed window's sector
decisions against the node's *accepted* profile and, when the
divergence crosses a threshold, emits a :class:`DriftEvent` carrying
a re-calibration request scheduled through the existing
:class:`~repro.core.scheduler.MeasurementScheduler` — the service
asks the node for fresh measurements at the most informative hours
instead of blindly distrusting it.

Divergence is the disagreement fraction over bearing bins, and a
window must carry a minimum amount of informative evidence before it
is allowed to accuse anyone — a quiet half hour of airspace is not
an antenna change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.fov import FieldOfViewEstimate
from repro.core.scheduler import MeasurementScheduler, Schedule


@dataclass(frozen=True)
class RecalibrationRequest:
    """What the service asks of a drifting node."""

    node_id: str
    requested_at_s: float
    reason: str
    schedule: Schedule


@dataclass(frozen=True)
class DriftEvent:
    """One detected divergence between recent and accepted profiles."""

    node_id: str
    detected_at_s: float
    divergence: float
    changed_bins: int
    n_bins: int
    request: RecalibrationRequest


def profile_divergence(
    accepted: FieldOfViewEstimate, current: FieldOfViewEstimate
) -> float:
    """Fraction of bearing bins whose open/closed verdict flipped."""
    if accepted.n_bins != current.n_bins:
        raise ValueError(
            f"profiles disagree on binning: {accepted.n_bins} vs "
            f"{current.n_bins}"
        )
    changed = sum(
        1
        for a, c in zip(accepted.open_flags, current.open_flags)
        if a != c
    )
    return changed / accepted.n_bins


@dataclass
class DriftDetector:
    """Flags windows that diverge from the accepted profile.

    Attributes:
        node_id: the monitored node.
        threshold: divergence fraction above which drift fires.
        min_evidence: informative observations a window needs before
            its estimate is trusted enough to accuse the node.
        recalibration_windows: measurement windows the scheduler
            requests when drift fires.
        accepted: the accepted profile; seeded from the first
            evidence-bearing window when not set explicitly.
    """

    node_id: str
    threshold: float = 0.30
    min_evidence: int = 20
    recalibration_windows: int = 3
    scheduler: MeasurementScheduler = field(
        default_factory=MeasurementScheduler
    )
    accepted: Optional[FieldOfViewEstimate] = None
    events: List[DriftEvent] = field(default_factory=list)
    windows_checked: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1]: {self.threshold}"
            )

    def accept(self, profile: FieldOfViewEstimate) -> None:
        """Adopt a profile as the node's accepted calibration."""
        self.accepted = profile

    def check(
        self,
        now_s: float,
        current: FieldOfViewEstimate,
        evidence: int,
    ) -> Optional[DriftEvent]:
        """Judge one completed window against the accepted profile.

        The first evidence-bearing window becomes the accepted
        profile (bootstrapping); later windows return a
        :class:`DriftEvent` when they diverge past the threshold.
        """
        if evidence < self.min_evidence:
            return None
        self.windows_checked += 1
        if self.accepted is None:
            self.accepted = current
            return None
        divergence = profile_divergence(self.accepted, current)
        if divergence < self.threshold:
            return None
        changed = round(divergence * current.n_bins)
        request = RecalibrationRequest(
            node_id=self.node_id,
            requested_at_s=now_s,
            reason=(
                f"sector profile diverged {divergence:.0%} from the "
                f"accepted calibration ({changed}/{current.n_bins} "
                "bins flipped)"
            ),
            schedule=self.scheduler.schedule(self.recalibration_windows),
        )
        event = DriftEvent(
            node_id=self.node_id,
            detected_at_s=now_s,
            divergence=divergence,
            changed_bins=changed,
            n_bins=current.n_bins,
            request=request,
        )
        self.events.append(event)
        return event
