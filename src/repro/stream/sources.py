"""Record sources: replaying recorded scans and simulating live nodes.

Two ways to feed the gateway without real hardware:

- :class:`ReplaySource` streams any recorded
  :class:`~repro.core.observations.DirectionalScan` as pre-joined
  observation/ghost records on a deterministic virtual clock — the
  bridge between the batch pipeline's artifacts and the streaming
  engine, and the basis of the streaming-vs-batch equivalence tests.
- :class:`SimulatedNodeSource` runs the §3.1 measurement procedure
  window after window against the simulated world and replays each
  resulting scan into its window slot; an optional mid-stream site
  swap (the node "moves indoors") exercises the drift detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.directional import DirectionalEvaluator
from repro.core.observations import DirectionalScan
from repro.stream.records import (
    GhostRecord,
    HeartbeatRecord,
    ObservationRecord,
    StreamRecord,
    VirtualClock,
)


@dataclass
class ReplaySource:
    """Streams one recorded scan over a virtual-clock window.

    Observations and ghosts are spread evenly across the scan's
    duration starting at ``start_s`` — deterministic timestamps, no
    wall clock, bit-reproducible replays. A trailing heartbeat pins
    the end of the capture so idle detection and window bookkeeping
    see the full duration even for sparse scans.
    """

    scan: DirectionalScan
    start_s: float = 0.0

    def records(self) -> Iterator[StreamRecord]:
        # Timestamps are exact fractions of the duration, never an
        # accumulated sum of steps: repeated float addition can
        # overshoot the window end, and a heartbeat even one ulp past
        # the boundary would open (and later flush) a phantom window.
        clock = VirtualClock(now_s=self.start_s)
        events = max(
            len(self.scan.observations) + len(self.scan.ghost_icaos), 1
        )
        j = 0
        for obs in self.scan.observations:
            clock.advance_to(
                self.start_s + self.scan.duration_s * (j / events)
            )
            yield ObservationRecord(time_s=clock.now_s, observation=obs)
            j += 1
        ghost_messages = self._ghost_message_counts()
        for icao, n_messages in zip(self.scan.ghost_icaos, ghost_messages):
            clock.advance_to(
                self.start_s + self.scan.duration_s * (j / events)
            )
            yield GhostRecord(
                time_s=clock.now_s, icao=icao, n_messages=n_messages
            )
            j += 1
        yield HeartbeatRecord(
            time_s=clock.advance_to(self.start_s + self.scan.duration_s)
        )

    def _ghost_message_counts(self) -> List[int]:
        """Split the scan's unattributed decodes across its ghosts.

        A recorded scan only keeps the total decoded count; whatever
        its received observations don't account for is spread over
        the ghosts so the replayed window's message totals match.
        """
        n_ghosts = len(self.scan.ghost_icaos)
        if n_ghosts == 0:
            return []
        attributed = sum(o.n_messages for o in self.scan.observations)
        leftover = max(self.scan.decoded_message_count - attributed, 0)
        base, extra = divmod(leftover, n_ghosts)
        return [
            max(base + (1 if i < extra else 0), 1)
            for i in range(n_ghosts)
        ]


@dataclass
class SimulatedNodeSource:
    """A live node simulated window-by-window.

    Each window runs the full §3.1 physical simulation (squitters,
    link budget, decoder, ground-truth join) with an independent seed
    and replays the resulting scan into its window slot. ``swap_at``
    switches to ``swap_evaluator`` from that window index on — the
    canonical drift scenario (antenna moved, operator cheating).
    """

    evaluator: DirectionalEvaluator
    n_windows: int = 1
    seed: int = 0
    swap_at: Optional[int] = None
    swap_evaluator: Optional[DirectionalEvaluator] = None

    def __post_init__(self) -> None:
        if self.n_windows <= 0:
            raise ValueError(
                f"n_windows must be positive: {self.n_windows}"
            )
        if (self.swap_at is None) != (self.swap_evaluator is None):
            raise ValueError(
                "swap_at and swap_evaluator must be set together"
            )

    def scans(self) -> List[DirectionalScan]:
        """The per-window scans, in window order."""
        out: List[DirectionalScan] = []
        for k in range(self.n_windows):
            evaluator = self.evaluator
            if self.swap_at is not None and k >= self.swap_at:
                evaluator = self.swap_evaluator
            rng = np.random.default_rng(self.seed + k)
            scan = evaluator.run(rng)
            out.append(scan)
        return out

    def records(self) -> Iterator[StreamRecord]:
        for k, scan in enumerate(self.scans()):
            replay = ReplaySource(
                scan=scan, start_s=k * scan.duration_s
            )
            yield from replay.records()


def replay_scans(
    scans: Sequence[DirectionalScan], window_s: Optional[float] = None
) -> Iterator[StreamRecord]:
    """Replay several recorded scans back-to-back, one per window."""
    offset = 0.0
    for scan in scans:
        yield from ReplaySource(scan=scan, start_s=offset).records()
        offset += window_s if window_s is not None else scan.duration_s
