"""Cellular substrate: LTE/NR bands, towers, and an srsUE-style scanner.

Replaces the live 4G/5G networks the paper measured with srsUE: a band
table with EARFCN↔frequency conversion, cell-tower models with known
locations and channels (the role cellmapper.net plays in the paper),
RSRP link budgets through the site's obstruction map, and a scanner
that — like srsUE — either reports a cell's RSRP or fails to decode it
when the signal is too weak (the paper's "missing bar").
"""

from repro.cellular.bands import Band, BANDS, band_by_name
from repro.cellular.arfcn import (
    earfcn_to_downlink_hz,
    downlink_hz_to_earfcn,
    band_for_earfcn,
)
from repro.cellular.tower import CellTower
from repro.cellular.cellmapper import TowerDatabase
from repro.cellular.scanner import (
    CellMeasurement,
    SrsUeScanner,
    SRSUE_SENSITIVITY_DBM,
)

__all__ = [
    "Band",
    "BANDS",
    "band_by_name",
    "earfcn_to_downlink_hz",
    "downlink_hz_to_earfcn",
    "band_for_earfcn",
    "CellTower",
    "TowerDatabase",
    "CellMeasurement",
    "SrsUeScanner",
    "SRSUE_SENSITIVITY_DBM",
]
