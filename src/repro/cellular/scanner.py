"""srsUE-style cell scanner.

srsUE's ``cell_search`` tunes each configured channel, attempts to
synchronize to any cell present, and reports RSRP for the cells it can
decode. A cell whose signal is below the decode sensitivity simply
does not appear — which is what the paper's "missing bar" in Figure 3
means. This scanner reproduces that behaviour against simulated
towers, propagating through the site's obstruction map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cellular.cellmapper import TowerDatabase
from repro.cellular.tower import CellTower
from repro.environment.links import (
    direct_received_power_dbm,
    direct_received_power_dbm_multifreq,
)
from repro.environment.site import SiteEnvironment
from repro.sdr.antenna import Antenna
from repro.sdr.frontend import SdrFrontEnd

#: RSRP below which srsUE cell search fails to synchronize. Real
#: srsUE with an SDR front end loses sync well above the theoretical
#: LTE sensitivity; -100 dBm RSRP is a realistic working threshold.
SRSUE_SENSITIVITY_DBM = -100.0


@dataclass(frozen=True)
class CellMeasurement:
    """One scanned cell.

    Attributes:
        earfcn: channel scanned.
        freq_hz: downlink center frequency.
        pci: physical cell identity (None when not decoded).
        rsrp_dbm: measured RSRP (None when the cell was not decoded —
            the paper's missing bar).
        decoded: whether srsUE could synchronize to the cell.
    """

    earfcn: int
    freq_hz: float
    pci: Optional[int]
    rsrp_dbm: Optional[float]
    decoded: bool


@dataclass
class SrsUeScanner:
    """A software UE scanning for cells from one sensor node.

    Attributes:
        env: the site the node is installed at.
        sdr: receiver front end (tuning range gates what is scannable).
        antenna: receive antenna.
        sensitivity_dbm: decode threshold.
    """

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna
    sensitivity_dbm: float = SRSUE_SENSITIVITY_DBM
    _shadow_cache: Dict[Tuple[str, int], float] = field(
        default_factory=dict
    )

    def rsrp_dbm(
        self, tower: CellTower, rng: Optional[np.random.Generator] = None
    ) -> float:
        """True RSRP of a tower at this node (shadowed, not gated)."""
        median = direct_received_power_dbm(
            self.env,
            tower.position,
            tower.eirp_per_re_dbm(),
            tower.downlink_freq_hz,
            self.antenna,
        )
        shadow = 0.0
        if rng is not None and self.env.shadowing_sigma_db > 0.0:
            key = (tower.tower_id, tower.earfcn)
            if key not in self._shadow_cache:
                self._shadow_cache[key] = float(
                    rng.normal(0.0, self.env.shadowing_sigma_db)
                )
            shadow = self._shadow_cache[key]
        return median + shadow

    def scan_earfcn(
        self,
        earfcn: int,
        database: TowerDatabase,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Scan one channel; one measurement per tower on it.

        Channels outside the SDR's tuning range yield undecoded
        measurements (a node claiming 100 MHz-6 GHz coverage but
        carrying a narrower SDR fails here — one of the claim checks).
        """
        towers = database.by_earfcn(earfcn)
        if not towers:
            return []
        out: List[CellMeasurement] = []
        for tower in towers:
            freq = tower.downlink_freq_hz
            if not self.sdr.can_tune(freq):
                out.append(
                    CellMeasurement(earfcn, freq, None, None, False)
                )
                continue
            rsrp = self.rsrp_dbm(tower, rng)
            if rsrp < self.sensitivity_dbm:
                out.append(
                    CellMeasurement(earfcn, freq, None, None, False)
                )
            else:
                out.append(
                    CellMeasurement(earfcn, freq, tower.pci, rsrp, True)
                )
        return out

    def scan_towers_batch(
        self,
        towers: Sequence[CellTower],
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Scan many towers in one array pass over the link budget.

        Equivalent to calling :meth:`scan_earfcn` tower by tower in
        the given order, including the shadow-cache behaviour: shadow
        draws happen only for tunable towers whose ``(tower_id,
        earfcn)`` key is not cached yet, in first-encounter order, and
        one batched ``standard_normal`` consumes the generator exactly
        like the scalar per-tower ``normal`` calls.
        """
        if not towers:
            return []
        freq = np.array(
            [t.downlink_freq_hz for t in towers], dtype=np.float64
        )
        tunable = (freq >= self.sdr.min_freq_hz) & (
            freq <= self.sdr.max_freq_hz
        )
        median = direct_received_power_dbm_multifreq(
            self.env,
            [t.position for t in towers],
            np.array(
                [t.eirp_per_re_dbm() for t in towers], dtype=np.float64
            ),
            freq,
            self.antenna,
        )
        shadow = np.zeros(len(towers))
        sigma = self.env.shadowing_sigma_db
        if rng is not None and sigma > 0.0:
            pending: List[Tuple[str, int]] = []
            seen = set()
            for i, tower in enumerate(towers):
                key = (tower.tower_id, tower.earfcn)
                if (
                    tunable[i]
                    and key not in self._shadow_cache
                    and key not in seen
                ):
                    pending.append(key)
                    seen.add(key)
            if pending:
                draws = sigma * rng.standard_normal(len(pending))
                for key, draw in zip(pending, draws):
                    self._shadow_cache[key] = float(draw)
            for i, tower in enumerate(towers):
                shadow[i] = self._shadow_cache.get(
                    (tower.tower_id, tower.earfcn), 0.0
                )
        rsrp = median + shadow
        decoded = tunable & (rsrp >= self.sensitivity_dbm)
        return [
            CellMeasurement(
                earfcn=t.earfcn,
                freq_hz=float(freq[i]),
                pci=t.pci if decoded[i] else None,
                rsrp_dbm=float(rsrp[i]) if decoded[i] else None,
                decoded=bool(decoded[i]),
            )
            for i, t in enumerate(towers)
        ]

    def scan_all(
        self,
        database: TowerDatabase,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Scan every channel the database knows about (batched)."""
        towers = [
            t
            for earfcn in database.earfcns()
            for t in database.by_earfcn(earfcn)
        ]
        return self.scan_towers_batch(towers, rng)

    def scan_all_scalar(
        self,
        database: TowerDatabase,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Per-channel :meth:`scan_all`: the equivalence oracle."""
        out: List[CellMeasurement] = []
        for earfcn in database.earfcns():
            out.extend(self.scan_earfcn(earfcn, database, rng))
        return out
