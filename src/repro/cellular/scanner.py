"""srsUE-style cell scanner.

srsUE's ``cell_search`` tunes each configured channel, attempts to
synchronize to any cell present, and reports RSRP for the cells it can
decode. A cell whose signal is below the decode sensitivity simply
does not appear — which is what the paper's "missing bar" in Figure 3
means. This scanner reproduces that behaviour against simulated
towers, propagating through the site's obstruction map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellular.cellmapper import TowerDatabase
from repro.cellular.tower import CellTower
from repro.environment.links import direct_received_power_dbm
from repro.environment.site import SiteEnvironment
from repro.sdr.antenna import Antenna
from repro.sdr.frontend import SdrFrontEnd

#: RSRP below which srsUE cell search fails to synchronize. Real
#: srsUE with an SDR front end loses sync well above the theoretical
#: LTE sensitivity; -100 dBm RSRP is a realistic working threshold.
SRSUE_SENSITIVITY_DBM = -100.0


@dataclass(frozen=True)
class CellMeasurement:
    """One scanned cell.

    Attributes:
        earfcn: channel scanned.
        freq_hz: downlink center frequency.
        pci: physical cell identity (None when not decoded).
        rsrp_dbm: measured RSRP (None when the cell was not decoded —
            the paper's missing bar).
        decoded: whether srsUE could synchronize to the cell.
    """

    earfcn: int
    freq_hz: float
    pci: Optional[int]
    rsrp_dbm: Optional[float]
    decoded: bool


@dataclass
class SrsUeScanner:
    """A software UE scanning for cells from one sensor node.

    Attributes:
        env: the site the node is installed at.
        sdr: receiver front end (tuning range gates what is scannable).
        antenna: receive antenna.
        sensitivity_dbm: decode threshold.
    """

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna
    sensitivity_dbm: float = SRSUE_SENSITIVITY_DBM
    _shadow_cache: Dict[Tuple[str, int], float] = field(
        default_factory=dict
    )

    def rsrp_dbm(
        self, tower: CellTower, rng: Optional[np.random.Generator] = None
    ) -> float:
        """True RSRP of a tower at this node (shadowed, not gated)."""
        median = direct_received_power_dbm(
            self.env,
            tower.position,
            tower.eirp_per_re_dbm(),
            tower.downlink_freq_hz,
            self.antenna,
        )
        shadow = 0.0
        if rng is not None and self.env.shadowing_sigma_db > 0.0:
            key = (tower.tower_id, tower.earfcn)
            if key not in self._shadow_cache:
                self._shadow_cache[key] = float(
                    rng.normal(0.0, self.env.shadowing_sigma_db)
                )
            shadow = self._shadow_cache[key]
        return median + shadow

    def scan_earfcn(
        self,
        earfcn: int,
        database: TowerDatabase,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Scan one channel; one measurement per tower on it.

        Channels outside the SDR's tuning range yield undecoded
        measurements (a node claiming 100 MHz-6 GHz coverage but
        carrying a narrower SDR fails here — one of the claim checks).
        """
        towers = database.by_earfcn(earfcn)
        if not towers:
            return []
        out: List[CellMeasurement] = []
        for tower in towers:
            freq = tower.downlink_freq_hz
            if not self.sdr.can_tune(freq):
                out.append(
                    CellMeasurement(earfcn, freq, None, None, False)
                )
                continue
            rsrp = self.rsrp_dbm(tower, rng)
            if rsrp < self.sensitivity_dbm:
                out.append(
                    CellMeasurement(earfcn, freq, None, None, False)
                )
            else:
                out.append(
                    CellMeasurement(earfcn, freq, tower.pci, rsrp, True)
                )
        return out

    def scan_all(
        self,
        database: TowerDatabase,
        rng: Optional[np.random.Generator] = None,
    ) -> List[CellMeasurement]:
        """Scan every channel the database knows about."""
        out: List[CellMeasurement] = []
        for earfcn in database.earfcns():
            out.extend(self.scan_earfcn(earfcn, database, rng))
        return out
