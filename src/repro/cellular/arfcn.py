"""EARFCN <-> downlink frequency conversion (3GPP TS 36.101 §5.7.3).

F_DL = F_DL_low + 0.1 MHz * (N_DL - N_Offs-DL)

Databases like cellmapper.net publish each tower's channel as an
ARFCN; this module is how the scanner turns those into tuning
frequencies.
"""

from __future__ import annotations

from typing import Optional

from repro.cellular.bands import BANDS, Band

#: EARFCN channel raster.
_RASTER_HZ = 100e3


def band_for_earfcn(earfcn: int) -> Band:
    """The band an EARFCN belongs to; raises ValueError if none."""
    for band in BANDS:
        if band.contains_earfcn(earfcn):
            return band
    raise ValueError(f"EARFCN {earfcn} is not in any known band")


def earfcn_to_downlink_hz(earfcn: int) -> float:
    """Downlink center frequency for a downlink EARFCN."""
    band = band_for_earfcn(earfcn)
    return band.downlink_low_hz + _RASTER_HZ * (
        earfcn - band.earfcn_offset
    )


def downlink_hz_to_earfcn(
    freq_hz: float, band_hint: Optional[Band] = None
) -> int:
    """EARFCN whose downlink frequency is ``freq_hz``.

    Overlapping bands (e.g. B4 within B66) are disambiguated with
    ``band_hint``; without a hint the first matching band wins.
    Raises ValueError when the frequency is off-raster or out of band.
    """
    candidates = (band_hint,) if band_hint is not None else BANDS
    for band in candidates:
        if band is None or not band.contains_freq(freq_hz):
            continue
        steps = (freq_hz - band.downlink_low_hz) / _RASTER_HZ
        earfcn = band.earfcn_offset + int(round(steps))
        if abs(steps - round(steps)) > 1e-6:
            raise ValueError(
                f"{freq_hz} Hz is off the 100 kHz raster in {band.name}"
            )
        if band.contains_earfcn(earfcn):
            return earfcn
    raise ValueError(f"{freq_hz} Hz is not in any known downlink band")
