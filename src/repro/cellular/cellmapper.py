"""A cellmapper.net-style tower database.

The paper configures srsUE with channels looked up on cellmapper.net.
This database plays that role for the simulation: it knows every
tower's location and EARFCN and can answer regional queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.cellular.tower import CellTower
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_m


@dataclass
class TowerDatabase:
    """An indexable collection of known cell towers."""

    towers: List[CellTower] = field(default_factory=list)

    def add(self, tower: CellTower) -> None:
        """Register a tower; duplicate (id, earfcn) pairs are rejected."""
        key = (tower.tower_id, tower.earfcn)
        for existing in self.towers:
            if (existing.tower_id, existing.earfcn) == key:
                raise ValueError(f"duplicate tower entry: {key}")
        self.towers.append(tower)

    def extend(self, towers: Sequence[CellTower]) -> None:
        for tower in towers:
            self.add(tower)

    def near(
        self, center: GeoPoint, radius_m: float
    ) -> List[CellTower]:
        """Towers within ``radius_m`` of a point."""
        if radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {radius_m}")
        return [
            t
            for t in self.towers
            if haversine_m(center, t.position) <= radius_m
        ]

    def earfcns(self) -> List[int]:
        """Distinct channels present, sorted — the scanner's scan list."""
        return sorted({t.earfcn for t in self.towers})

    def by_earfcn(self, earfcn: int) -> List[CellTower]:
        """All towers transmitting on one channel."""
        return [t for t in self.towers if t.earfcn == earfcn]

    def by_id(self, tower_id: str) -> CellTower:
        """Look up a tower by label; raises KeyError if absent."""
        for t in self.towers:
            if t.tower_id == tower_id:
                return t
        raise KeyError(f"no tower with id {tower_id!r}")
