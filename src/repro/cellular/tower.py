"""Cell-tower model.

A tower is described the way cellmapper.net describes one: location,
band, channel (EARFCN), plus the transmit parameters needed to compute
RSRP. Reference Signal Received Power is the per-resource-element
power of the cell-specific reference signals, so the tower's EIRP is
expressed per resource element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cellular.arfcn import band_for_earfcn, earfcn_to_downlink_hz
from repro.geo.coords import GeoPoint

#: Resource elements per resource block (12 subcarriers).
RE_PER_RB = 12


@dataclass(frozen=True)
class CellTower:
    """One cellular base station sector.

    Attributes:
        tower_id: label used in reports ("Tower 1" ... in the paper).
        pci: physical cell identity the scanner reports.
        position: tower location (altitude = antenna height).
        earfcn: downlink channel number.
        bandwidth_rb: downlink bandwidth in resource blocks.
        total_tx_power_dbm: sector transmit power across the carrier.
        antenna_gain_dbi: sector antenna gain.
    """

    tower_id: str
    pci: int
    position: GeoPoint
    earfcn: int
    bandwidth_rb: int = 50
    total_tx_power_dbm: float = 46.0
    antenna_gain_dbi: float = 17.0

    def __post_init__(self) -> None:
        if not 0 <= self.pci < 504:
            raise ValueError(f"PCI out of range: {self.pci}")
        if self.bandwidth_rb <= 0:
            raise ValueError(
                f"bandwidth must be positive: {self.bandwidth_rb} RB"
            )
        band_for_earfcn(self.earfcn)  # validates the channel

    @property
    def downlink_freq_hz(self) -> float:
        """Downlink center frequency."""
        return earfcn_to_downlink_hz(self.earfcn)

    @property
    def band_name(self) -> str:
        return band_for_earfcn(self.earfcn).name

    def eirp_per_re_dbm(self) -> float:
        """EIRP per resource element (what RSRP is measured against)."""
        n_re = self.bandwidth_rb * RE_PER_RB
        return (
            self.total_tx_power_dbm
            - 10.0 * math.log10(n_re)
            + self.antenna_gain_dbi
        )

    def nominal_range_km(self) -> float:
        """Coarse coverage range by band, as Figure 2's caption gives.

        Low band (sub-1 GHz) reaches ~40 km; mid band 1.6-19 km.
        """
        if self.downlink_freq_hz < 1e9:
            return 40.0
        return 19.0
