"""LTE band definitions (3GPP TS 36.101 subset).

Covers the North American bands the paper points at — "mobile networks
in North America can operate from as low as 617 MHz all the way to
4499 MHz" — including every band used by the testbed's five towers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Band:
    """One LTE operating band.

    Attributes:
        name: band designator, e.g. "B12".
        downlink_low_hz: F_DL_low, the downlink band's lower edge.
        downlink_high_hz: downlink band's upper edge.
        earfcn_offset: N_Offs-DL, the EARFCN at the lower edge.
        earfcn_low / earfcn_high: valid downlink EARFCN range.
    """

    name: str
    downlink_low_hz: float
    downlink_high_hz: float
    earfcn_offset: int
    earfcn_low: int
    earfcn_high: int

    def contains_earfcn(self, earfcn: int) -> bool:
        return self.earfcn_low <= earfcn <= self.earfcn_high

    def contains_freq(self, freq_hz: float) -> bool:
        return self.downlink_low_hz <= freq_hz <= self.downlink_high_hz


#: 3GPP TS 36.101 table 5.7.3-1 (downlink side, NA-relevant subset).
BANDS = (
    Band("B2", 1930e6, 1990e6, 600, 600, 1199),
    Band("B4", 2110e6, 2155e6, 1950, 1950, 2399),
    Band("B5", 869e6, 894e6, 2400, 2400, 2649),
    Band("B7", 2620e6, 2690e6, 2750, 2750, 3449),
    Band("B12", 729e6, 746e6, 5010, 5010, 5179),
    Band("B13", 746e6, 756e6, 5180, 5180, 5279),
    Band("B30", 2350e6, 2360e6, 9770, 9770, 9869),
    Band("B41", 2496e6, 2690e6, 39650, 39650, 41589),
    Band("B48", 3550e6, 3700e6, 55240, 55240, 56739),
    Band("B66", 2110e6, 2200e6, 66436, 66436, 67335),
    Band("B71", 617e6, 652e6, 68586, 68586, 68935),
)

_BY_NAME: Dict[str, Band] = {b.name: b for b in BANDS}


def band_by_name(name: str) -> Band:
    """Look up a band by designator; raises KeyError for unknowns."""
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown band {name!r}; known: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]
