"""Per-file parse context: AST, module name, and suppressions.

Suppression syntax (comments, matched case-insensitively):

- ``# repro-lint: disable=RL101`` — suppress the named rule(s) on
  this line (for a multi-line statement, the line the finding is
  reported on — the first line of the offending node).
- ``# repro-lint: disable=RL101,RL301`` — several rules at once.
- ``# repro-lint: disable=all`` — every rule on this line.
- ``# repro-lint: disable-file=RL201`` — suppress for the whole
  file, wherever the comment appears (conventionally at the top).

A rule-id prefix also matches: ``disable=RL3`` covers RL301 and
RL302. Suppressed findings are counted, never silently dropped.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Set

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)",
    re.IGNORECASE,
)


@dataclass
class FileContext:
    """One parsed source file plus everything checkers need."""

    path: Path
    source: str
    tree: ast.Module
    module: str
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    file_disables: Set[str] = field(default_factory=set)

    @property
    def scope_parts(self) -> FrozenSet[str]:
        """Lowercased path and module components, for rule scoping.

        A rule scoped to e.g. ``stream`` applies when any directory
        or dotted-module component is named ``stream`` — so both
        ``src/repro/stream/broker.py`` and a test fixture under
        ``fixtures/stream/`` are in scope.
        """
        parts = {p.lower() for p in self.path.parts}
        parts.update(p.lower() for p in self.module.split("."))
        return frozenset(parts)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled at ``line`` in this file."""
        rule_id = rule_id.upper()

        def matches(disables: Set[str]) -> bool:
            return any(
                d == "ALL" or rule_id.startswith(d) for d in disables
            )

        if matches(self.file_disables):
            return True
        return matches(self.line_disables.get(line, set()))


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` dirs."""
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def _scan_suppressions(
    source: str,
) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Collect per-line and per-file disables from comments."""
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return line_disables, file_disables
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        kind = match.group(1).lower()
        rules = {r.strip().upper() for r in match.group(2).split(",")}
        if kind == "disable-file":
            file_disables.update(rules)
        else:
            row = tok.start[0]
            line_disables.setdefault(row, set()).update(rules)
    return line_disables, file_disables


def parse_file(path: Path) -> FileContext:
    """Read and parse one file; raises ``SyntaxError`` on bad source."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    line_disables, file_disables = _scan_suppressions(source)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        module=module_name_for(path),
        line_disables=line_disables,
        file_disables=file_disables,
    )
