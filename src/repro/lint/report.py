"""Text and JSON rendering of a lint run."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def _plural(count: int, noun: str) -> str:
    return f"{count} {noun}{'' if count == 1 else 's'}"


def summary_line(result: LintResult) -> str:
    parts = [
        _plural(result.error_count, "error"),
        _plural(result.warning_count, "warning"),
    ]
    text = ", ".join(parts)
    notes = []
    if result.suppressed:
        notes.append(f"{result.suppressed} suppressed")
    if result.baselined:
        notes.append(f"{result.baselined} baselined")
    if notes:
        text += f" ({', '.join(notes)})"
    return f"{text} across {_plural(len(result.files), 'file')}"


def render_text(
    result: LintResult, statistics: bool = False
) -> str:
    lines = [f.render() for f in result.findings]
    if statistics and result.per_rule:
        lines.append("")
        for rule_id in sorted(result.per_rule):
            lines.append(
                f"{rule_id}: {result.per_rule[rule_id]}"
            )
    lines.append(summary_line(result))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.as_dict() for f in result.findings],
        "summary": {
            "errors": result.error_count,
            "warnings": result.warning_count,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "files": len(result.files),
            "per_rule": dict(sorted(result.per_rule.items())),
        },
    }
    return json.dumps(payload, indent=2)
