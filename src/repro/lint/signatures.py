"""Cross-module signature index for the unit-discipline checker.

Pass one of the analyzer walks every file (the lint targets plus the
installed ``repro`` package) and records, without importing
anything, the parameter names of every function, method, and
constructor — including synthesised dataclass constructors. Pass two
uses the index to bind call arguments to parameter names so the unit
checker can compare suffixes across module boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.context import FileContext


@dataclass(frozen=True)
class FunctionSig:
    """Parameter names of one callable, in binding order."""

    module: str
    qualname: str
    params: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool

    @property
    def display(self) -> str:
        return f"{self.module}.{self.qualname}"


def _sig_from_args(
    module: str,
    qualname: str,
    args: ast.arguments,
    drop_first: bool,
) -> FunctionSig:
    params: List[str] = [
        a.arg for a in (*args.posonlyargs, *args.args)
    ]
    if drop_first and params and params[0] in ("self", "cls"):
        params = params[1:]
    return FunctionSig(
        module=module,
        qualname=qualname,
        params=tuple(params),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _dataclass_ctor(
    module: str, node: ast.ClassDef
) -> FunctionSig:
    """Synthesise ``__init__`` params from annotated class fields."""
    params: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        params.append(stmt.target.id)
    return FunctionSig(
        module=module,
        qualname=node.name,
        params=tuple(params),
        kwonly=(),
        has_vararg=False,
        has_kwarg=False,
    )


@dataclass
class SignatureIndex:
    """All known callables, keyed for the resolutions we support."""

    #: (module, function name) -> sig, for module-level functions.
    functions: Dict[Tuple[str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: (module, class, method) -> sig (``self`` stripped).
    methods: Dict[Tuple[str, str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: (module, class) -> constructor sig (``self`` stripped).
    constructors: Dict[Tuple[str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: method name -> every signature carrying it, for by-name
    #: resolution of instance-method calls (``tower.power_at(...)``)
    #: whose receiver type is not statically known.
    by_method_name: Dict[str, List[FunctionSig]] = field(
        default_factory=dict
    )

    def add_module(self, ctx: FileContext) -> None:
        module = ctx.module
        for node in ctx.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.functions[(module, node.name)] = _sig_from_args(
                    module, node.name, node.args, drop_first=False
                )
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_class(self, module: str, node: ast.ClassDef) -> None:
        saw_init = False
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            qualname = f"{node.name}.{stmt.name}"
            sig = _sig_from_args(
                module, qualname, stmt.args, drop_first=True
            )
            self.methods[(module, node.name, stmt.name)] = sig
            if not stmt.name.startswith("_"):
                self.by_method_name.setdefault(
                    stmt.name, []
                ).append(sig)
            if stmt.name == "__init__":
                saw_init = True
                self.constructors[(module, node.name)] = sig
        if not saw_init and _is_dataclass_decorated(node):
            self.constructors[(module, node.name)] = _dataclass_ctor(
                module, node
            )


def build_index(contexts: List[FileContext]) -> SignatureIndex:
    index = SignatureIndex()
    for ctx in contexts:
        index.add_module(ctx)
    return index
