"""Cross-module signature index for the unit-discipline checker.

Pass one of the analyzer walks every file (the lint targets plus the
installed ``repro`` package) and records, without importing
anything, the parameter names of every function, method, and
constructor — including synthesised dataclass constructors. Pass two
uses the index to bind call arguments to parameter names so the unit
checker can compare suffixes across module boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lint.context import FileContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def function_scopes(tree: ast.AST) -> List[List[FunctionNode]]:
    """Functions grouped by their defining scope (module or class).

    Scalar/batch pairing is a *scope-local* convention — ``run`` and
    ``run_scalar`` are twins only when they live in the same class or
    module body.
    """
    scopes: List[List[FunctionNode]] = []

    def collect(body: List[ast.stmt]) -> None:
        here: List[FunctionNode] = []
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                here.append(stmt)
            elif isinstance(stmt, ast.ClassDef):
                collect(stmt.body)
        if here:
            scopes.append(here)

    if isinstance(tree, ast.Module):
        collect(tree.body)
    return scopes


def scalar_partner(
    name: str, siblings: Set[str]
) -> Optional[str]:
    """The scalar/batch twin of ``name`` among ``siblings``, if any.

    Recognizes the repo's pairing conventions: ``X_batch`` twins
    ``X`` or ``X_scalar``; ``X_scalar`` twins ``X`` or ``X_batch``;
    a bare ``X`` twins ``X_scalar`` or ``X_batch``.
    """
    if name.endswith("_batch"):
        base = name[: -len("_batch")]
        candidates = (base, base + "_scalar")
    elif name.endswith("_scalar"):
        base = name[: -len("_scalar")]
        candidates = (base, base + "_batch")
    else:
        candidates = (name + "_scalar", name + "_batch")
    for candidate in candidates:
        if candidate in siblings:
            return candidate
    return None


def referenced_names(tree: ast.AST) -> Set[str]:
    """Every identifier a module mentions, by name or attribute."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


@dataclass(frozen=True)
class FunctionSig:
    """Parameter names of one callable, in binding order."""

    module: str
    qualname: str
    params: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool

    @property
    def display(self) -> str:
        return f"{self.module}.{self.qualname}"


def _sig_from_args(
    module: str,
    qualname: str,
    args: ast.arguments,
    drop_first: bool,
) -> FunctionSig:
    params: List[str] = [
        a.arg for a in (*args.posonlyargs, *args.args)
    ]
    if drop_first and params and params[0] in ("self", "cls"):
        params = params[1:]
    return FunctionSig(
        module=module,
        qualname=qualname,
        params=tuple(params),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _dataclass_ctor(
    module: str, node: ast.ClassDef
) -> FunctionSig:
    """Synthesise ``__init__`` params from annotated class fields."""
    params: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        params.append(stmt.target.id)
    return FunctionSig(
        module=module,
        qualname=node.name,
        params=tuple(params),
        kwonly=(),
        has_vararg=False,
        has_kwarg=False,
    )


@dataclass
class SignatureIndex:
    """All known callables, keyed for the resolutions we support."""

    #: (module, function name) -> sig, for module-level functions.
    functions: Dict[Tuple[str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: (module, class, method) -> sig (``self`` stripped).
    methods: Dict[Tuple[str, str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: (module, class) -> constructor sig (``self`` stripped).
    constructors: Dict[Tuple[str, str], FunctionSig] = field(
        default_factory=dict
    )
    #: method name -> every signature carrying it, for by-name
    #: resolution of instance-method calls (``tower.power_at(...)``)
    #: whose receiver type is not statically known.
    by_method_name: Dict[str, List[FunctionSig]] = field(
        default_factory=dict
    )
    #: callee name -> (dispatcher name, its scalar twin) for every
    #: function that has a scalar twin in its own scope and calls the
    #: callee — the cross-file resolution step of the RL6
    #: oracle-coverage rule (a batch kernel is covered when a
    #: dispatcher with a scalar twin delegates to it).
    scalar_dispatchers: Dict[str, List[Tuple[str, str]]] = field(
        default_factory=dict
    )
    #: test file path -> every name it references. Only populated
    #: when the engine was pointed at (or discovered) a tests tree;
    #: ``has_test_index`` distinguishes "no tests indexed" from "no
    #: tests reference this name".
    test_refs: Dict[str, Set[str]] = field(default_factory=dict)
    has_test_index: bool = False

    def add_module(self, ctx: FileContext) -> None:
        module = ctx.module
        for node in ctx.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.functions[(module, node.name)] = _sig_from_args(
                    module, node.name, node.args, drop_first=False
                )
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
        self._add_dispatchers(ctx)

    def add_test_module(self, ctx: FileContext) -> None:
        self.test_refs[str(ctx.path)] = referenced_names(ctx.tree)
        self.has_test_index = True

    def _add_dispatchers(self, ctx: FileContext) -> None:
        for scope_functions in function_scopes(ctx.tree):
            names = {fn.name for fn in scope_functions}
            for fn in scope_functions:
                partner = scalar_partner(fn.name, names)
                if partner is None:
                    continue
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    callee: Optional[str] = None
                    if isinstance(node.func, ast.Name):
                        callee = node.func.id
                    elif isinstance(node.func, ast.Attribute):
                        callee = node.func.attr
                    if callee is None or callee == fn.name:
                        continue
                    entry = (fn.name, partner)
                    bucket = self.scalar_dispatchers.setdefault(
                        callee, []
                    )
                    if entry not in bucket:
                        bucket.append(entry)

    def _add_class(self, module: str, node: ast.ClassDef) -> None:
        saw_init = False
        for stmt in node.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            qualname = f"{node.name}.{stmt.name}"
            sig = _sig_from_args(
                module, qualname, stmt.args, drop_first=True
            )
            self.methods[(module, node.name, stmt.name)] = sig
            if not stmt.name.startswith("_"):
                self.by_method_name.setdefault(
                    stmt.name, []
                ).append(sig)
            if stmt.name == "__init__":
                saw_init = True
                self.constructors[(module, node.name)] = sig
        if not saw_init and _is_dataclass_decorated(node):
            self.constructors[(module, node.name)] = _dataclass_ctor(
                module, node
            )


def build_index(contexts: List[FileContext]) -> SignatureIndex:
    index = SignatureIndex()
    for ctx in contexts:
        index.add_module(ctx)
    return index
