"""Orchestration: collect files, build the index, run checkers.

Two passes. Pass one parses every target file *plus* the whole
installed ``repro`` package and records callable signatures, so unit
binding resolves across module boundaries even when only a subset is
being linted. Pass two runs every rule family over each target and
filters the results through suppressions and ``--select``/
``--ignore``.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.checkers import all_checkers
from repro.lint.context import FileContext, parse_file
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.signatures import SignatureIndex, build_index

RL000 = register_rule(
    "RL000",
    "parse-error",
    Severity.ERROR,
    "file could not be parsed",
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    files: List[str]
    suppressed: int = 0
    #: Findings absorbed by a committed baseline (ratchet debt).
    baselined: int = 0
    per_rule: Dict[str, int] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        return sum(
            1
            for f in self.findings
            if f.severity is Severity.ERROR
        )

    @property
    def warning_count(self) -> int:
        return sum(
            1
            for f in self.findings
            if f.severity is Severity.WARNING
        )

    def worst_at_or_above(
        self, threshold: Severity
    ) -> bool:
        return any(
            f.severity >= threshold for f in self.findings
        )


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for a path that does not exist.
    """
    out: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: List[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _package_files() -> List[Path]:
    """Every source file of the installed ``repro`` package."""
    package_root = Path(__file__).resolve().parents[1]
    return sorted(package_root.rglob("*.py"))


def _matches(rule_id: str, prefixes: Sequence[str]) -> bool:
    rule_id = rule_id.upper()
    return any(rule_id.startswith(p.upper()) for p in prefixes)


def _discover_tests_root(targets: Sequence[Path]) -> Optional[Path]:
    """The repo's ``tests/`` tree, found from the lint targets.

    Walks up from the first target to the directory holding
    ``pyproject.toml``; its ``tests/`` subdirectory — if present —
    is the tree whose name references feed the RL6 coverage rule.
    """
    start = (
        targets[0].resolve() if targets else Path.cwd().resolve()
    )
    for parent in [start, *start.parents]:
        if (parent / "pyproject.toml").is_file():
            tests = parent / "tests"
            return tests if tests.is_dir() else None
    return None


def changed_files(
    ref: str = "HEAD", cwd: Optional[Path] = None
) -> Set[Path]:
    """Files modified vs ``ref`` plus untracked files, resolved.

    Backs ``repro lint --changed``. Raises ``RuntimeError`` when git
    is unavailable or the ref does not resolve.
    """
    root = cwd or Path.cwd()
    commands = [
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    out: Set[Path] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=str(root),
                capture_output=True,
                text=True,
                check=False,
            )
        except OSError as exc:  # pragma: no cover - git missing
            raise RuntimeError(f"git unavailable: {exc}") from exc
        if proc.returncode != 0:
            message = proc.stderr.strip() or "git failed"
            raise RuntimeError(
                f"`{' '.join(command)}`: {message}"
            )
        # Paths are reported relative to the repo root, which need
        # not be the working directory; resolve via git's toplevel.
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=str(root),
            capture_output=True,
            text=True,
            check=False,
        )
        base = (
            Path(top.stdout.strip())
            if top.returncode == 0 and top.stdout.strip()
            else root
        )
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                out.add((base / line).resolve())
    return out


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    index_package: bool = True,
    tests_root: Optional[str] = None,
) -> LintResult:
    """Lint ``paths`` and return the filtered findings.

    ``select``/``ignore`` are rule-id prefixes (``RL1`` covers the
    whole unit family). ``index_package=False`` restricts signature
    resolution to the target files themselves — used by fixture
    tests to stay hermetic; it also disables tests-tree discovery,
    so the RL602 coverage rule only runs in hermetic mode when
    ``tests_root`` is passed explicitly.
    """
    targets = collect_files(paths)

    contexts: List[FileContext] = []
    parse_failures: List[Finding] = []
    parsed: Dict[Path, FileContext] = {}
    for path in targets:
        try:
            ctx = parse_file(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            parse_failures.append(
                finding(
                    RL000, str(path), int(line), 1, str(exc)
                )
            )
            continue
        contexts.append(ctx)
        parsed[path.resolve()] = ctx

    index_contexts = list(contexts)
    if index_package:
        for path in _package_files():
            if path.resolve() in parsed:
                continue
            try:
                index_contexts.append(parse_file(path))
            except (SyntaxError, UnicodeDecodeError):
                continue  # target files already reported above
    index: SignatureIndex = build_index(index_contexts)

    tests_dir: Optional[Path] = None
    if tests_root is not None:
        tests_dir = Path(tests_root)
    elif index_package:
        tests_dir = _discover_tests_root(targets)
    if tests_dir is not None and tests_dir.is_dir():
        for path in sorted(tests_dir.rglob("*.py")):
            try:
                index.add_test_module(parse_file(path))
            except (SyntaxError, UnicodeDecodeError):
                continue  # broken test files are pytest's problem

    raw: List[Finding] = list(parse_failures)
    suppressed = 0
    checkers = all_checkers()
    for ctx in contexts:
        for checker in checkers:
            for result in checker.check(ctx, index):
                if ctx.is_suppressed(
                    result.rule_id, result.line
                ):
                    suppressed += 1
                else:
                    raw.append(result)

    if select:
        raw = [f for f in raw if _matches(f.rule_id, select)]
    if ignore:
        raw = [
            f for f in raw if not _matches(f.rule_id, ignore)
        ]

    raw.sort(key=lambda f: f.sort_key)
    per_rule: Dict[str, int] = {}
    for f in raw:
        per_rule[f.rule_id] = per_rule.get(f.rule_id, 0) + 1
    return LintResult(
        findings=raw,
        files=[str(p) for p in targets],
        suppressed=suppressed,
        per_rule=per_rule,
    )
