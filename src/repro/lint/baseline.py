"""Baseline ratchet: accepted findings live in a committed file.

``lint-baseline.json`` records the findings the team has explicitly
accepted as debt. CI lints with ``--baseline lint-baseline.json`` and
fails on any finding *not* in the file, so new violations are blocked
while existing debt is burned down by shrinking the baseline — the
ratchet only turns one way.

Fingerprints deliberately ignore line and column: moving code around
must not resurrect accepted findings. A fingerprint is
``rule::path::message``, and the file stores a count per fingerprint
so two identical violations in one file are distinguished from one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Location-insensitive identity of a finding."""
    path = finding.path.replace("\\", "/")
    return f"{finding.rule_id}::{path}::{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint counts from a baseline file; empty if absent."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"malformed baseline file: {path}")
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline file: {path}")
    return {
        str(key): int(value) for key, value in entries.items()
    }


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write the baseline capturing ``findings`` as accepted debt."""
    entries: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        entries[key] = entries.get(key, 0) + 1
    payload = {
        "version": _VERSION,
        "entries": dict(sorted(entries.items())),
    }
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, number suppressed by baseline).

    Each baseline entry absorbs up to its recorded count of matching
    findings; anything beyond that — a new violation, even if
    textually identical to accepted debt — stays in the result.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    absorbed = 0
    for finding in findings:
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            absorbed += 1
        else:
            fresh.append(finding)
    return fresh, absorbed
