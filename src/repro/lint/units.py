"""The unit vocabulary: suffix conventions the RF code lives by.

Across this repo a trailing ``_<unit>`` token on an identifier is a
load-bearing promise — ``freq_hz`` is in hertz, ``power_dbm`` is an
absolute power referenced to a milliwatt, ``bearing_deg`` is in
degrees. The unit checker reads those promises off names; this
module is the shared vocabulary.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: unit suffix -> physical dimension.
UNIT_DIMENSIONS: Dict[str, str] = {
    "db": "level",
    "dbm": "level",
    "dbfs": "level",
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "ghz": "frequency",
    "m": "length",
    "km": "length",
    "deg": "angle",
    "rad": "angle",
    "s": "time",
    "ms": "time",
}

#: Pretty names for messages.
UNIT_LABELS: Dict[str, str] = {
    "db": "dB",
    "dbm": "dBm",
    "dbfs": "dBFS",
    "hz": "Hz",
    "khz": "kHz",
    "mhz": "MHz",
    "ghz": "GHz",
    "m": "m",
    "km": "km",
    "deg": "deg",
    "rad": "rad",
    "s": "s",
    "ms": "ms",
}


def unit_suffix(name: Optional[str]) -> Optional[str]:
    """The unit suffix carried by an identifier, if any.

    Only a trailing ``_``-separated token counts: ``freq_hz`` is Hz,
    but ``hz`` alone and ``mhzfoo`` carry nothing.
    """
    if not name or "_" not in name:
        return None
    tail = name.rsplit("_", 1)[1].lower()
    return tail if tail in UNIT_DIMENSIONS else None


def dimension(unit: str) -> str:
    """The physical dimension of a unit suffix."""
    return UNIT_DIMENSIONS[unit]


def label(unit: str) -> str:
    """Human-readable unit name for messages."""
    return UNIT_LABELS.get(unit, unit)


def expr_unit(node: ast.expr) -> Optional[str]:
    """The unit an expression's name says it carries, if readable.

    Reads through attribute access (``self.center_hz``), calls
    (``haversine_m(...)`` returns meters), unary sign, and
    subscripts (``times_s[0]``). Anything else — literals,
    arithmetic, comprehensions — is opaque and returns ``None``.
    """
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    if isinstance(node, ast.Call):
        return expr_unit(node.func)
    if isinstance(node, ast.UnaryOp):
        return expr_unit(node.operand)
    if isinstance(node, ast.Subscript):
        return expr_unit(node.value)
    return None
