"""The unit vocabulary: suffix conventions the RF code lives by.

Across this repo a trailing ``_<unit>`` token on an identifier is a
load-bearing promise — ``freq_hz`` is in hertz, ``power_dbm`` is an
absolute power referenced to a milliwatt, ``bearing_deg`` is in
degrees. The unit checker reads those promises off names; this
module is the shared vocabulary.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: unit suffix -> physical dimension.
UNIT_DIMENSIONS: Dict[str, str] = {
    "db": "level",
    "dbm": "level",
    "dbfs": "level",
    "dbi": "level",
    "mw": "power",
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "ghz": "frequency",
    "m": "length",
    "km": "length",
    "deg": "angle",
    "rad": "angle",
    "s": "time",
    "ms": "time",
    "us": "time",
}

#: Pretty names for messages.
UNIT_LABELS: Dict[str, str] = {
    "db": "dB",
    "dbm": "dBm",
    "dbfs": "dBFS",
    "dbi": "dBi",
    "mw": "mW",
    "hz": "Hz",
    "khz": "kHz",
    "mhz": "MHz",
    "ghz": "GHz",
    "m": "m",
    "km": "km",
    "deg": "deg",
    "rad": "rad",
    "s": "s",
    "ms": "ms",
    "us": "µs",
}

#: Log-domain units that are *relative* (ratios/gains): they add and
#: subtract freely against the absolute log-domain units below.
RELATIVE_LEVEL_UNITS = frozenset({"db", "dbi"})

#: Log-domain units referenced to an absolute quantity (a milliwatt,
#: the converter full scale). Two of the *same* absolute unit do not
#: add — power sums in the linear domain — and two *different* ones
#: only meet through an explicit conversion.
ABSOLUTE_LEVEL_UNITS = frozenset({"dbm", "dbfs"})


def unit_suffix(name: Optional[str]) -> Optional[str]:
    """The unit suffix carried by an identifier, if any.

    Only a trailing ``_``-separated token counts: ``freq_hz`` is Hz,
    but ``hz`` alone and ``mhzfoo`` carry nothing.
    """
    if not name or "_" not in name:
        return None
    tail = name.rsplit("_", 1)[1].lower()
    return tail if tail in UNIT_DIMENSIONS else None


def dimension(unit: str) -> str:
    """The physical dimension of a unit suffix."""
    return UNIT_DIMENSIONS[unit]


def label(unit: str) -> str:
    """Human-readable unit name for messages."""
    return UNIT_LABELS.get(unit, unit)


#: Builtins that pass a value through without changing its unit.
_PASSTHROUGH_CALLS = frozenset({"float", "int", "abs", "round"})

#: Violation kinds returned by :func:`combine_add_sub`.
VIOLATION_ABSOLUTE_ADD = "absolute-add"
VIOLATION_SCALE_MIX = "scale-mix"
VIOLATION_DIMENSION_MIX = "dimension-mix"


def combine_add_sub(
    left: str, right: str, is_add: bool
) -> "tuple[Optional[str], Optional[str]]":
    """Unit algebra for ``+``/``-`` between two known units.

    Returns ``(result_unit, violation)``. ``result_unit`` is the
    inferred unit of the expression (``None`` when unknown), and
    ``violation`` is one of the ``VIOLATION_*`` kinds when the
    operation is dimensionally wrong by construction.
    """
    if left == right:
        if left == "dbm" and is_add:
            # Absolute powers sum in watts, not in the log domain.
            return None, VIOLATION_ABSOLUTE_ADD
        if left in ABSOLUTE_LEVEL_UNITS and not is_add:
            # dBm - dBm (or dBFS - dBFS) is a ratio: relative dB.
            return "db", None
        return left, None
    left_dim = dimension(left)
    right_dim = dimension(right)
    if left_dim != right_dim:
        return None, VIOLATION_DIMENSION_MIX
    if left_dim == "level":
        # Gain math: absolute +/- relative keeps the absolute unit;
        # relative +/- relative stays relative. Two *different*
        # absolute units (dBm with dBFS) are the full-scale
        # conversion idiom — opaque, but not flagged (matching the
        # statement-level RL102 exemption).
        if left in RELATIVE_LEVEL_UNITS and right in RELATIVE_LEVEL_UNITS:
            return "db", None
        if left in RELATIVE_LEVEL_UNITS:
            return right, None
        if right in RELATIVE_LEVEL_UNITS:
            return left, None
        return None, None
    return None, VIOLATION_SCALE_MIX


def infer_expr(
    node: ast.expr, env: "Dict[str, str]"
) -> Optional[str]:
    """The unit an expression carries, reading through dataflow.

    Extends :func:`expr_unit` with an environment of inferred units
    for unsuffixed local names, passthrough builtins (``float(x)``),
    conditional expressions, and the :func:`combine_add_sub` unit
    algebra over ``+``/``-``. Anything it cannot prove is ``None`` —
    the flow rules only ever act on definite units.
    """
    direct = expr_unit(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        return infer_expr(node.operand, env)
    if isinstance(node, ast.Subscript):
        return infer_expr(node.value, env)
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _PASSTHROUGH_CALLS
            and len(node.args) >= 1
        ):
            return infer_expr(node.args[0], env)
        return None
    if isinstance(node, ast.IfExp):
        body = infer_expr(node.body, env)
        orelse = infer_expr(node.orelse, env)
        return body if body == orelse else None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        left = infer_expr(node.left, env)
        right = infer_expr(node.right, env)
        if left is None or right is None:
            return None
        result, violation = combine_add_sub(
            left, right, isinstance(node.op, ast.Add)
        )
        return result if violation is None else None
    return None


def expr_unit(node: ast.expr) -> Optional[str]:
    """The unit an expression's name says it carries, if readable.

    Reads through attribute access (``self.center_hz``), calls
    (``haversine_m(...)`` returns meters), unary sign, and
    subscripts (``times_s[0]``). Anything else — literals,
    arithmetic, comprehensions — is opaque and returns ``None``.
    """
    if isinstance(node, ast.Name):
        return unit_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr)
    if isinstance(node, ast.Call):
        return expr_unit(node.func)
    if isinstance(node, ast.UnaryOp):
        return expr_unit(node.operand)
    if isinstance(node, ast.Subscript):
        return expr_unit(node.value)
    return None
