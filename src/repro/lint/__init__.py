"""Domain-aware static analysis for the repro codebase.

Six rule families, grounded in what actually corrupts calibration
results in this repo:

- **RL1 unit discipline** — a ``freq_mhz`` bound to a ``freq_hz``
  parameter, or ``x_dbm + y_dbm`` arithmetic, is a silent factor of
  a million (or a nonsense power) in the RF math. RL101/RL102 read
  units off suffixes statement by statement; RL103–RL105 propagate
  them through assignments and returns over the CFG, catching units
  laundered through unsuffixed temporaries.
- **RL2 determinism** — wall-clock reads and global/unseeded RNGs
  inside the simulation and stream packages break the
  reproducibility the whole evaluation rests on.
- **RL3 concurrency hygiene** — path-sensitive lock regions: shared
  state mutated on any path where the owning lock is not definitely
  held, and callbacks/logging invoked while holding it.
- **RL4 interface hygiene** — unannotated public ``core``/
  ``stream`` surfaces and swallowed exceptions.
- **RL5 RNG lockstep** — in scalar/batch paired kernels, RNG draws
  whose count can diverge across data-dependent branches, breaking
  the draw-order contract behind bit-exact equivalence.
- **RL6 oracle coverage** — every vectorized ``*_batch`` kernel
  must have a scalar oracle and an equivalence test calling both.

The flow-sensitive families run on a shared CFG +
abstract-interpretation core (:mod:`repro.lint.cfg`,
:mod:`repro.lint.dataflow`). Output formats include SARIF for CI
annotation, and a committed ``lint-baseline.json`` ratchet gates on
"no new findings" (:mod:`repro.lint.baseline`).

Run it as ``repro lint`` or ``python -m repro.lint``; see
``docs/linting.md`` for the rule catalogue and suppression syntax
(``# repro-lint: disable=RL101``).
"""

from __future__ import annotations

from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.engine import (
    LintResult,
    changed_files,
    collect_files,
    run_lint,
)
from repro.lint.findings import (
    REGISTRY,
    Finding,
    Rule,
    Severity,
)
from repro.lint.report import render_json, render_text
from repro.lint.sarif import render_sarif

__all__ = [
    "Finding",
    "LintResult",
    "REGISTRY",
    "Rule",
    "Severity",
    "apply_baseline",
    "changed_files",
    "collect_files",
    "fingerprint",
    "load_baseline",
    "main",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "write_baseline",
]
