"""Domain-aware static analysis for the repro codebase.

Four rule families, grounded in what actually corrupts calibration
results in this repo:

- **RL1 unit discipline** — a ``freq_mhz`` bound to a ``freq_hz``
  parameter, or ``x_dbm + y_dbm`` arithmetic, is a silent factor of
  a million (or a nonsense power) in the RF math.
- **RL2 determinism** — wall-clock reads and global/unseeded RNGs
  inside the simulation and stream packages break the
  reproducibility the whole evaluation rests on.
- **RL3 concurrency hygiene** — shared state mutated outside the
  owning lock, or callbacks/logging invoked while holding it, in
  the threaded runtime/stream layers.
- **RL4 interface hygiene** — unannotated public ``core``/
  ``stream`` surfaces and swallowed exceptions.

Run it as ``repro lint`` or ``python -m repro.lint``; see
``docs/linting.md`` for the rule catalogue and suppression syntax
(``# repro-lint: disable=RL101``).
"""

from __future__ import annotations

from repro.lint.cli import main
from repro.lint.engine import LintResult, collect_files, run_lint
from repro.lint.findings import (
    REGISTRY,
    Finding,
    Rule,
    Severity,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "REGISTRY",
    "Rule",
    "Severity",
    "collect_files",
    "main",
    "render_json",
    "render_text",
    "run_lint",
]
