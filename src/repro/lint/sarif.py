"""SARIF 2.1.0 rendering of a lint run.

SARIF is what code-scanning UIs ingest: uploading the log from CI
makes findings annotate pull requests inline. The renderer emits one
run with the full rule catalogue (so rule metadata renders even for
rules with no findings) and one result per finding.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import REGISTRY, Finding, Severity

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://example.invalid/repro/docs/linting.md"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_ids() -> List[str]:
    return sorted(REGISTRY)


def _rules() -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for rule_id in _rule_ids():
        rule = REGISTRY[rule_id]
        out.append(
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": _level(rule.severity)
                },
            }
        )
    return out


def _result(
    finding: Finding, rule_index: Dict[str, int]
) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index.get(finding.rule_id, -1),
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF 2.1.0 document for one lint run, as JSON text."""
    rule_index = {
        rule_id: i for i, rule_id in enumerate(_rule_ids())
    }
    payload: Dict[str, Any] = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _INFO_URI,
                        "rules": _rules(),
                    }
                },
                "results": [
                    _result(f, rule_index)
                    for f in result.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)
