"""Lightweight, purely syntactic name resolution for checkers.

Nothing here imports the code under analysis. We track what a file's
``import`` statements bind each local name to, and canonicalise
dotted call paths (``np.random.rand`` -> ``numpy.random.rand``) so
checkers can pattern-match against stable fully-qualified names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class ImportMap:
    """What each local name was bound to by import statements.

    Attributes:
        module_aliases: local dotted prefix -> imported module, e.g.
            ``{"np": "numpy", "repro.rf.pathloss":
            "repro.rf.pathloss"}``.
        from_names: local name -> (source module, original name) for
            ``from m import x [as y]``.
    """

    module_aliases: Dict[str, str] = field(default_factory=dict)
    from_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def build_import_map(tree: ast.AST) -> ImportMap:
    """Collect import bindings anywhere in the file."""
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name
                imports.module_aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: out of scope
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports.from_names[local] = (node.module, alias.name)
    return imports


def dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string for pure Name/Attribute chains."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def canonical(imports: ImportMap, path: str) -> Optional[str]:
    """Rewrite a local dotted path onto its imported module path.

    ``np.random.rand`` with ``import numpy as np`` becomes
    ``numpy.random.rand``; ``datetime.now`` with ``from datetime
    import datetime`` becomes ``datetime.datetime.now``. Returns
    ``None`` when the leading name is not an import binding.
    """
    first, _, rest = path.partition(".")
    if first in imports.module_aliases:
        root = imports.module_aliases[first]
    elif first in imports.from_names:
        module, original = imports.from_names[first]
        root = f"{module}.{original}"
    else:
        return None
    return f"{root}.{rest}" if rest else root


def canonical_call(
    imports: ImportMap, func: ast.expr
) -> Optional[str]:
    """Canonical dotted path of a call target, if resolvable."""
    path = dotted(func)
    return None if path is None else canonical(imports, path)
