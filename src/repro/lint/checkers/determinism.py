"""RL2 — determinism in simulation and streaming code.

The evaluation substitutes deterministic simulators for live
aircraft and towers, and the stream subsystem runs on a virtual
clock; a stray wall-clock read or global-RNG draw silently breaks
reproducibility. Inside the simulation-scoped packages
(``airspace``, ``environment``, ``rf``, ``fm``, ``adsb``,
``stream``, ``experiments``):

- RL201 forbids ``time.time``/``time.monotonic`` (and their ``_ns``
  twins) and ``datetime.now``/``utcnow``/``today`` — simulated time
  must come from the virtual clock that callers thread through.
  ``time.perf_counter`` stays legal: it only feeds latency metrics,
  never simulated state.
- RL202 forbids the process-global ``random`` module functions,
  no-arg ``random.Random()``, and the legacy ``numpy.random.*``
  global API (``np.random.seed``/``rand``/...). Seeded
  ``random.Random(seed)`` and ``numpy.random.default_rng`` /
  ``Generator`` / ``SeedSequence`` are the sanctioned sources.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.resolve import build_import_map, canonical_call
from repro.lint.signatures import SignatureIndex

RL201 = register_rule(
    "RL201",
    "wall-clock-in-simulation",
    Severity.ERROR,
    "wall-clock read inside a simulation/stream module; use the "
    "virtual clock",
)

RL202 = register_rule(
    "RL202",
    "unseeded-random",
    Severity.ERROR,
    "global/unseeded RNG inside a simulation/stream module; use a "
    "seeded Generator",
)

#: Packages where simulated time and seeded RNGs are mandatory.
SIM_SCOPES: FrozenSet[str] = frozenset(
    {
        "airspace",
        "environment",
        "rf",
        "fm",
        "adsb",
        "stream",
        "experiments",
        "interference",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: The modern, seedable parts of ``numpy.random`` stay legal.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


class DeterminismChecker:
    """RL201/RL202 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        if not (SIM_SCOPES & ctx.scope_parts):
            return []
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canon = canonical_call(imports, node.func)
            if canon is None:
                continue
            result = self._classify(ctx, node, canon)
            if result is not None:
                findings.append(result)
        return findings

    def _classify(
        self, ctx: FileContext, node: ast.Call, canon: str
    ) -> Optional[Finding]:
        where = (str(ctx.path), node.lineno, node.col_offset + 1)
        if canon in _WALL_CLOCK:
            return finding(
                RL201,
                *where,
                f"`{canon}()` reads the wall clock inside a "
                "simulation/stream module; take the time from the "
                "virtual clock (a `now_s`/`time_s` argument)",
            )
        module, _, attr = canon.rpartition(".")
        if module == "random":
            if attr in _RANDOM_FUNCS:
                return finding(
                    RL202,
                    *where,
                    f"`random.{attr}()` draws from the process-"
                    "global RNG; use a seeded `random.Random(seed)` "
                    "or `numpy.random.default_rng(seed)`",
                )
            if attr == "Random" and not node.args:
                return finding(
                    RL202,
                    *where,
                    "`random.Random()` without a seed is "
                    "OS-entropy-seeded; pass an explicit seed",
                )
        if (
            module == "numpy.random"
            and attr not in _NP_RANDOM_ALLOWED
        ):
            hint = (
                "re-seeds the global numpy RNG"
                if attr == "seed"
                else "draws from the legacy global numpy RNG"
            )
            return finding(
                RL202,
                *where,
                f"`numpy.random.{attr}()` {hint}; use "
                "`numpy.random.default_rng(seed)` and pass the "
                "Generator down",
            )
        return None
