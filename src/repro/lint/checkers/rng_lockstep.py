"""RL5 — RNG draw-order lockstep between scalar and batch kernels.

The vectorized kernels promise bit-identical output to their scalar
oracles, which only holds when both consume the shared RNG stream in
the same order and the same count. Draw counts stay aligned as long
as every draw is unconditional with respect to *sampled values*; the
moment a draw sits behind a branch whose condition depends on an
earlier draw, scalar and batch executions can consume different
counts and silently diverge.

The rules only run inside *paired* functions — a function with a
scalar/batch twin in the same scope (``run``/``run_scalar``,
``X_batch``/``X`` or ``X_scalar``). Unpaired helpers may draw however
they like.

- RL501 (flow-sensitive): an RNG draw control-dependent on an
  RNG-*tainted* ``if``/``while`` condition. Taint propagates through
  assignments, arithmetic, and loop targets via the dataflow
  framework; ``for`` iterables are deliberately not treated as
  guards, because iterating a sampled collection is the sanctioned
  two-pass pattern.
- RL502 (structural): an ``if`` whose arms contain different numbers
  of draw sites under a *data-dependent* condition. Mode-like
  conditions are exempt — parameters, ``self.*`` configuration,
  ALL_CAPS constants, and ``is None`` checks select a code path
  consistently for both kernels. Arms that terminate (``return``,
  ``raise``, ``continue``, ``break``) are exempt: a dispatcher's
  early ``return self.run_scalar(...)`` never interleaves with the
  batch path.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.lint.cfg import (
    Block,
    Cfg,
    Event,
    FunctionNode,
    build_cfg,
)
from repro.lint.context import FileContext
from repro.lint.dataflow import ForwardAnalysis, out_states, run_forward
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.signatures import (
    SignatureIndex,
    function_scopes,
    scalar_partner,
)

RL501 = register_rule(
    "RL501",
    "rng-draw-under-rng-branch",
    Severity.ERROR,
    "RNG draw control-dependent on an RNG-derived condition in a "
    "scalar/batch pair",
)

RL502 = register_rule(
    "RL502",
    "rng-draw-count-divergence",
    Severity.ERROR,
    "if-arms draw different RNG counts under a data-dependent "
    "condition in a scalar/batch pair",
)

#: Builtins allowed inside a mode-like condition.
_MODE_BUILTINS = frozenset(
    {"len", "bool", "int", "float", "isinstance", "hasattr"}
)

TaintState = FrozenSet[str]


def _is_rng_name(name: str) -> bool:
    lowered = name.lower()
    return (
        lowered == "rng"
        or lowered.endswith("_rng")
        or lowered == "random_state"
    )


def _rng_receiver(node: ast.expr) -> bool:
    """Whether ``node`` is an RNG object (``rng``, ``self._rng``)."""
    if isinstance(node, ast.Name):
        return _is_rng_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_rng_name(node.attr)
    return False


def _is_draw(node: ast.Call) -> bool:
    """Whether a call consumes from the RNG stream.

    A method call on an RNG object draws directly; a call that is
    *passed* an RNG forwards the stream to the callee, which draws an
    unknown-but-shared count — either way the call site must stay in
    lockstep.
    """
    func = node.func
    if isinstance(func, ast.Attribute) and _rng_receiver(func.value):
        return True
    for arg in node.args:
        if _rng_receiver(arg):
            return True
    for keyword in node.keywords:
        if keyword.value is not None and _rng_receiver(keyword.value):
            return True
    return False


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested scopes.

    The root is always yielded (a walk rooted at a function visits
    that function's own body); nested function/lambda *children* are
    pruned — their bodies run under unknown control flow.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _draws_in(node: ast.AST) -> List[ast.Call]:
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    ):
        return []  # opaque nested-def event: draws run later
    return [
        sub
        for sub in _walk_same_scope(node)
        if isinstance(sub, ast.Call) and _is_draw(sub)
    ]


class _TaintAnalysis(ForwardAnalysis[TaintState]):
    """Names holding RNG-derived values; join is union."""

    def initial(self) -> TaintState:
        return frozenset()

    def join(self, left: TaintState, right: TaintState) -> TaintState:
        return left | right

    def transfer(self, state: TaintState, event: Event) -> TaintState:
        node = event.node
        if isinstance(node, ast.Assign):
            return self._assign(state, node.targets, node.value)
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return self._assign(state, [node.target], node.value)
        if isinstance(node, ast.AugAssign):
            # x op= v: x stays/becomes tainted if x or v is.
            if isinstance(node.target, ast.Name):
                if self.expr_tainted(state, node.value) or (
                    node.target.id in state
                ):
                    return state | {node.target.id}
            return state
        return state

    def _assign(
        self,
        state: TaintState,
        targets: List[ast.expr],
        value: ast.expr,
    ) -> TaintState:
        # Only plain-name (and unpacked-name) targets carry taint.
        # A subscript store (`cache[key] = draw(...)`) deliberately
        # does NOT taint the container name: membership and key
        # tests on it depend on the keys, not the sampled values, so
        # the memoization idiom `if key not in cache: cache[key] =
        # draw(...)` stays in lockstep and must not be flagged.
        tainted = self.expr_tainted(state, value)
        names: Set[str] = set()
        for target in targets:
            names.update(_plain_target_names(target))
        if tainted:
            return state | names
        return state - names

    def expr_tainted(self, state: TaintState, expr: ast.expr) -> bool:
        for sub in _walk_same_scope(expr):
            if isinstance(sub, ast.Name) and sub.id in state:
                return True
            if isinstance(sub, ast.Call) and _is_draw(sub):
                return True
        return False


class RngLockstepChecker:
    """RL501/RL502 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        findings: List[Finding] = []
        for scope_functions in function_scopes(ctx.tree):
            names = {fn.name for fn in scope_functions}
            for fn in scope_functions:
                partner = scalar_partner(fn.name, names)
                if partner is None:
                    continue
                self._check_function(ctx, fn, partner, findings)
        return findings

    def _check_function(
        self,
        ctx: FileContext,
        fn: FunctionNode,
        partner: str,
        findings: List[Finding],
    ) -> None:
        cfg = build_cfg(fn)
        analysis = _TaintAnalysis()
        entry_states = run_forward(cfg, analysis)
        exit_states = out_states(cfg, analysis, entry_states)
        all_tainted: Set[str] = set()
        for state in exit_states.values():
            all_tainted.update(state)

        self._check_tainted_guards(
            ctx, fn, partner, cfg, analysis, exit_states, findings
        )
        self._check_arm_balance(
            ctx, fn, partner, all_tainted, findings
        )

    # -- RL501 --------------------------------------------------------

    def _check_tainted_guards(
        self,
        ctx: FileContext,
        fn: FunctionNode,
        partner: str,
        cfg: Cfg,
        analysis: _TaintAnalysis,
        exit_states: Dict[int, TaintState],
        findings: List[Finding],
    ) -> None:
        reported: Set[int] = set()
        for block_id, block in cfg.blocks.items():
            if block_id not in exit_states:
                continue  # unreachable
            tainted_guard = self._tainted_guard(
                block, analysis, exit_states
            )
            if tainted_guard is None:
                continue
            for event in block.events:
                for call in _draws_in(event.node):
                    if id(call) in reported:
                        continue
                    reported.add(id(call))
                    findings.append(
                        finding(
                            RL501,
                            str(ctx.path),
                            call.lineno,
                            call.col_offset + 1,
                            f"`{fn.name}` (paired with "
                            f"`{partner}`) draws from the RNG "
                            "under a condition at line "
                            f"{tainted_guard} that depends on an "
                            "earlier draw; scalar/batch draw "
                            "counts can diverge",
                        )
                    )

    def _tainted_guard(
        self,
        block: Block,
        analysis: _TaintAnalysis,
        exit_states: Dict[int, TaintState],
    ) -> Optional[int]:
        """Line of the first RNG-tainted if/while guard, if any."""
        for guard in block.guards:
            if guard.kind not in ("if", "while"):
                continue  # for-iterables are the sanctioned pattern
            if guard.test is None:
                continue
            state = exit_states.get(guard.block)
            if state is None:
                continue
            if isinstance(
                guard.test, ast.expr
            ) and analysis.expr_tainted(state, guard.test):
                return getattr(guard.test, "lineno", 0)
        return None

    # -- RL502 --------------------------------------------------------

    def _check_arm_balance(
        self,
        ctx: FileContext,
        fn: FunctionNode,
        partner: str,
        tainted: Set[str],
        findings: List[Finding],
    ) -> None:
        params = _parameter_names(fn)
        mode_locals = _mode_locals(fn, params)
        for node in _walk_same_scope(fn):
            if not isinstance(node, ast.If):
                continue
            if _is_mode_like(node.test, params, mode_locals):
                continue
            if _test_mentions(node.test, tainted):
                continue  # RL501 owns RNG-tainted conditions
            if _is_memoized_draw(node):
                continue  # `if k not in cache: cache[k] = draw()`
            if _terminates(node.body) or (
                node.orelse and _terminates(node.orelse)
            ):
                continue
            body_draws = _count_arm_draws(node.body)
            else_draws = _count_arm_draws(node.orelse)
            if body_draws == else_draws:
                continue
            findings.append(
                finding(
                    RL502,
                    str(ctx.path),
                    node.lineno,
                    node.col_offset + 1,
                    f"`{fn.name}` (paired with `{partner}`) draws "
                    f"{body_draws} time(s) in one arm and "
                    f"{else_draws} in the other under a "
                    "data-dependent condition; scalar/batch draw "
                    "counts can diverge",
                )
            )


def _plain_target_names(target: ast.expr) -> Set[str]:
    """Name targets of an assignment, through tuple/list unpacking."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for elt in target.elts:
            names.update(_plain_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _plain_target_names(target.value)
    return set()


def _parameter_names(fn: FunctionNode) -> Set[str]:
    args = fn.args
    names = {
        a.arg
        for a in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _mode_locals(fn: FunctionNode, params: Set[str]) -> Set[str]:
    """Locals assigned only from mode-like expressions.

    ``shared_medium = self.interference_enabled()`` is configuration,
    not data; conditions on it select the same path for the scalar
    and batch kernels alike.
    """
    mode: Set[str] = set()
    disqualified: Set[str] = set()
    for node in _walk_same_scope(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_mode_like(node.value, params, mode):
                if target.id not in disqualified:
                    mode.add(target.id)
            else:
                mode.discard(target.id)
                disqualified.add(target.id)
    return mode


def _is_mode_like(
    test: ast.expr, params: Set[str], mode_locals: Set[str]
) -> bool:
    if isinstance(test, ast.Constant):
        return True
    if isinstance(test, ast.Name):
        return (
            test.id in params
            or test.id in mode_locals
            or test.id.isupper()
        )
    if isinstance(test, ast.Attribute):
        root: ast.expr = test
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name):
            return root.id == "self" or _is_mode_like(
                root, params, mode_locals
            )
        return False
    if isinstance(test, ast.UnaryOp):
        return _is_mode_like(test.operand, params, mode_locals)
    if isinstance(test, ast.BoolOp):
        return all(
            _is_mode_like(v, params, mode_locals) for v in test.values
        )
    if isinstance(test, ast.Compare):
        if any(
            isinstance(op, (ast.Is, ast.IsNot))
            for op in test.ops
        ) and any(
            isinstance(c, ast.Constant) and c.value is None
            for c in test.comparators
        ):
            return True  # `x is None`: presence checks are modes
        return all(
            _is_mode_like(v, params, mode_locals)
            for v in [test.left, *test.comparators]
        )
    if isinstance(test, ast.Call):
        func_ok = (
            isinstance(test.func, ast.Name)
            and test.func.id in _MODE_BUILTINS
        ) or _is_mode_like(test.func, params, mode_locals)
        return func_ok and all(
            _is_mode_like(a, params, mode_locals) for a in test.args
        )
    if isinstance(test, ast.Subscript):
        return _is_mode_like(
            test.value, params, mode_locals
        ) and _is_mode_like(test.slice, params, mode_locals)
    return False


def _is_memoized_draw(node: ast.If) -> bool:
    """The sanctioned memoization idiom.

    ``if key not in cache: cache[key] = draw(...)`` draws a count
    determined by the (deterministic) key sequence, not by sampled
    values — both kernels of a pair replay the same cache misses, so
    their draw counts stay aligned. Recognized when the test is a
    single ``not in`` against a plain name and every draw in the body
    is stored straight into that container.
    """
    test = node.test
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.NotIn)
        and isinstance(test.comparators[0], ast.Name)
    ):
        return False
    if node.orelse:
        return False
    container = test.comparators[0].id
    saw_draw = False
    for stmt in node.body:
        if not _draws_in(stmt):
            continue
        saw_draw = True
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Subscript)
            and isinstance(stmt.targets[0].value, ast.Name)
            and stmt.targets[0].value.id == container
        ):
            return False
    return saw_draw


def _test_mentions(test: ast.expr, names: Set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in _walk_same_scope(test)
    )


def _terminates(body: List[ast.stmt]) -> bool:
    """Whether a statement list always leaves the enclosing region."""
    if not body:
        return False
    last = body[-1]
    if isinstance(
        last, (ast.Return, ast.Raise, ast.Continue, ast.Break)
    ):
        return True
    if isinstance(last, ast.If) and last.orelse:
        return _terminates(last.body) and _terminates(last.orelse)
    return False


def _count_arm_draws(body: List[ast.stmt]) -> int:
    count = 0
    for stmt in body:
        count += len(_draws_in(stmt))
    return count
