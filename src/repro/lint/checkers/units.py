"""RL1 — unit discipline.

RL101 flags a call argument whose name carries one unit suffix
binding to a parameter that carries a different one (``freq_mhz``
passed to ``freq_hz``). Signatures are resolved syntactically across
the ``repro`` package: module functions, ``self.`` methods, class
constructors (including dataclasses), and imported names.

RL102 flags log-domain arithmetic that is dimensionally wrong by
construction: adding two absolute dBm powers (power does not add in
the log domain), and ``+``/``-`` between two different scales of the
same dimension (``_hz`` with ``_mhz``, ``_m`` with ``_km``, ``_s``
with ``_ms``, ``_deg`` with ``_rad``). Mixing relative dB with
absolute dBm is legitimate gain math and is not flagged; likewise
dBFS with dBm (the full-scale conversion idiom).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.resolve import (
    ImportMap,
    build_import_map,
    dotted,
)
from repro.lint.signatures import FunctionSig, SignatureIndex
from repro.lint.units import (
    dimension,
    expr_unit,
    label,
    unit_suffix,
)

RL101 = register_rule(
    "RL101",
    "unit-mismatch-arg",
    Severity.ERROR,
    "argument with one unit suffix bound to a parameter with "
    "another",
)

RL102 = register_rule(
    "RL102",
    "unit-mismatch-arith",
    Severity.ERROR,
    "arithmetic mixing incompatible unit suffixes (dBm+dBm, "
    "Hz with MHz, ...)",
)


def _display(sigs: List[FunctionSig]) -> str:
    if len(sigs) == 1:
        return sigs[0].display
    return (
        f"{sigs[0].qualname.rsplit('.', 1)[-1]} "
        f"({len(sigs)} known implementations)"
    )


def _describe(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


class UnitsChecker:
    """RL101/RL102 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        self._walk(ctx, index, imports, ctx.tree, None, findings)
        return findings

    # -- traversal ----------------------------------------------------

    def _walk(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        imports: ImportMap,
        node: ast.AST,
        current_class: Optional[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._walk(
                    ctx, index, imports, child, child.name, findings
                )
                continue
            if isinstance(child, ast.Call):
                sigs = self._resolve(
                    ctx, index, imports, child.func, current_class
                )
                if sigs:
                    findings.extend(
                        self._check_binding(ctx, child, sigs)
                    )
            elif isinstance(child, ast.BinOp):
                result = self._check_arith(ctx, child)
                if result is not None:
                    findings.append(result)
            self._walk(
                ctx, index, imports, child, current_class, findings
            )

    # -- RL101 --------------------------------------------------------

    def _resolve(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        imports: ImportMap,
        func: ast.expr,
        current_class: Optional[str],
    ) -> List[FunctionSig]:
        """Candidate signatures for a call target.

        Exactly one candidate when the target resolves statically
        (same-module function, import, ``self.`` method,
        constructor). For instance-method calls on receivers whose
        type we cannot know (``tower.power_at(...)``) every known
        method of that name is a candidate, and the binding check
        only fires where all candidates agree on a parameter's
        unit.
        """
        module = ctx.module
        if isinstance(func, ast.Name):
            name = func.id
            sig = index.functions.get(
                (module, name)
            ) or index.constructors.get((module, name))
            if sig is not None:
                return [sig]
            if name in imports.from_names:
                src, original = imports.from_names[name]
                sig = index.functions.get(
                    (src, original)
                ) or index.constructors.get((src, original))
                return [sig] if sig is not None else []
            return []
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and current_class is not None
            ):
                sig = index.methods.get(
                    (module, current_class, func.attr)
                )
                if sig is not None:
                    return [sig]
            base = dotted(func.value)
            if base is not None:
                if base in imports.module_aliases:
                    src = imports.module_aliases[base]
                    sig = index.functions.get(
                        (src, func.attr)
                    ) or index.constructors.get((src, func.attr))
                    if sig is not None:
                        return [sig]
                if base in imports.from_names:
                    parent, original = imports.from_names[base]
                    src = f"{parent}.{original}"
                    sig = index.functions.get(
                        (src, func.attr)
                    ) or index.constructors.get((src, func.attr))
                    if sig is not None:
                        return [sig]
            return list(
                index.by_method_name.get(func.attr, [])
            )
        return []

    def _check_binding(
        self,
        ctx: FileContext,
        call: ast.Call,
        sigs: List[FunctionSig],
    ) -> List[Finding]:
        findings: List[Finding] = []
        if not any(isinstance(a, ast.Starred) for a in call.args):
            for position, arg in enumerate(call.args):
                if any(
                    position >= len(sig.params) for sig in sigs
                ):
                    break  # ambiguous arity across candidates
                units = {
                    unit_suffix(sig.params[position])
                    for sig in sigs
                }
                if len(units) != 1 or None in units:
                    continue  # candidates disagree: stay silent
                self._compare(
                    ctx,
                    call,
                    _display(sigs),
                    sigs[0].params[position],
                    arg,
                    findings,
                )
        for keyword in call.keywords:
            if keyword.arg is None:
                continue  # **kwargs forwarding: unreadable
            accepted = any(
                keyword.arg in sig.params
                or keyword.arg in sig.kwonly
                or sig.has_kwarg
                for sig in sigs
            )
            if not accepted:
                continue  # would be a TypeError, not a unit bug
            self._compare(
                ctx, call, _display(sigs), keyword.arg,
                keyword.value, findings,
            )
        return findings

    def _compare(
        self,
        ctx: FileContext,
        call: ast.Call,
        target: str,
        param: str,
        arg: ast.expr,
        findings: List[Finding],
    ) -> None:
        param_unit = unit_suffix(param)
        arg_unit = expr_unit(arg)
        if param_unit is None or arg_unit is None:
            return
        if param_unit == arg_unit:
            return
        findings.append(
            finding(
                RL101,
                str(ctx.path),
                call.lineno,
                call.col_offset + 1,
                f"`{_describe(arg)}` ({label(arg_unit)}) is bound "
                f"to parameter `{param}` ({label(param_unit)}) of "
                f"{target}",
            )
        )

    # -- RL102 --------------------------------------------------------

    def _check_arith(
        self, ctx: FileContext, node: ast.BinOp
    ) -> Optional[Finding]:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return None
        left = expr_unit(node.left)
        right = expr_unit(node.right)
        if left is None or right is None:
            return None
        operator = "+" if isinstance(node.op, ast.Add) else "-"
        where = (str(ctx.path), node.lineno, node.col_offset + 1)
        if left == right:
            if left == "dbm" and operator == "+":
                return finding(
                    RL102,
                    *where,
                    "adding two absolute dBm powers "
                    f"(`{_describe(node.left)} + "
                    f"{_describe(node.right)}`); power sums in "
                    "watts — convert with dbm_to_watts first",
                )
            return None
        if dimension(left) != dimension(right):
            return finding(
                RL102,
                *where,
                f"`{operator}` between {label(left)} "
                f"(`{_describe(node.left)}`) and {label(right)} "
                f"(`{_describe(node.right)}`) mixes dimensions",
            )
        if dimension(left) == "level":
            return None  # dB vs dBm / dBFS: legitimate gain math
        return finding(
            RL102,
            *where,
            f"`{operator}` between {label(left)} "
            f"(`{_describe(node.left)}`) and {label(right)} "
            f"(`{_describe(node.right)}`) mixes scales; convert "
            "one side first",
        )
