"""RL1 — unit discipline, statement-level and flow-sensitive.

The statement-level rules read units straight off identifier
suffixes:

- RL101 flags a call argument whose name carries one unit suffix
  binding to a parameter that carries a different one (``freq_mhz``
  passed to ``freq_hz``). Signatures are resolved syntactically
  across the ``repro`` package: module functions, ``self.`` methods,
  class constructors (including dataclasses), and imported names.
- RL102 flags log-domain arithmetic that is dimensionally wrong by
  construction: adding two absolute dBm powers, and ``+``/``-``
  between two different scales of the same dimension.

The flow-sensitive rules run the unit lattice through the CFG
(:mod:`repro.lint.cfg` + :mod:`repro.lint.dataflow`), so a dBm value
laundered through an unsuffixed temporary is still caught:

- RL103 flags arithmetic (and suffixed-assignment) violations where
  at least one operand's unit was *inferred* through assignments,
  tuple unpacking, passthrough builtins, or the unit algebra —
  ``power = lookup_dbm(); total = power + other_dbm``.
- RL104 flags an inferred-unit argument bound to a parameter with a
  conflicting suffix.
- RL105 flags a ``return`` whose inferred unit contradicts the unit
  promised by the function's own name suffix (scale or dimension
  conflicts; relative-vs-absolute level mixes stay legal gain math).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.cfg import (
    ITER,
    STMT,
    TEST,
    Cfg,
    Event,
    build_cfg,
)
from repro.lint.context import FileContext
from repro.lint.dataflow import ForwardAnalysis, replay, run_forward
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.resolve import (
    ImportMap,
    build_import_map,
    dotted,
)
from repro.lint.signatures import FunctionSig, SignatureIndex
from repro.lint.units import (
    VIOLATION_ABSOLUTE_ADD,
    VIOLATION_DIMENSION_MIX,
    combine_add_sub,
    dimension,
    expr_unit,
    infer_expr,
    label,
    unit_suffix,
)

RL101 = register_rule(
    "RL101",
    "unit-mismatch-arg",
    Severity.ERROR,
    "argument with one unit suffix bound to a parameter with "
    "another",
)

RL102 = register_rule(
    "RL102",
    "unit-mismatch-arith",
    Severity.ERROR,
    "arithmetic mixing incompatible unit suffixes (dBm+dBm, "
    "Hz with MHz, ...)",
)

RL103 = register_rule(
    "RL103",
    "unit-flow-arith",
    Severity.ERROR,
    "flow-inferred unit makes this arithmetic or assignment "
    "dimensionally wrong",
)

RL104 = register_rule(
    "RL104",
    "unit-flow-arg",
    Severity.ERROR,
    "flow-inferred unit conflicts with the parameter's unit "
    "suffix",
)

RL105 = register_rule(
    "RL105",
    "unit-flow-return",
    Severity.ERROR,
    "returned value's unit contradicts the function name's unit "
    "suffix",
)


def _display(sigs: List[FunctionSig]) -> str:
    if len(sigs) == 1:
        return sigs[0].display
    return (
        f"{sigs[0].qualname.rsplit('.', 1)[-1]} "
        f"({len(sigs)} known implementations)"
    )


def _describe(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def resolve_call_signatures(
    ctx: FileContext,
    index: SignatureIndex,
    imports: ImportMap,
    func: ast.expr,
    current_class: Optional[str],
) -> List[FunctionSig]:
    """Candidate signatures for a call target.

    Exactly one candidate when the target resolves statically
    (same-module function, import, ``self.`` method, constructor).
    For instance-method calls on receivers whose type we cannot know
    (``tower.power_at(...)``) every known method of that name is a
    candidate, and binding checks only fire where all candidates
    agree on a parameter's unit.
    """
    module = ctx.module
    if isinstance(func, ast.Name):
        name = func.id
        sig = index.functions.get(
            (module, name)
        ) or index.constructors.get((module, name))
        if sig is not None:
            return [sig]
        if name in imports.from_names:
            src, original = imports.from_names[name]
            sig = index.functions.get(
                (src, original)
            ) or index.constructors.get((src, original))
            return [sig] if sig is not None else []
        return []
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and current_class is not None
        ):
            sig = index.methods.get(
                (module, current_class, func.attr)
            )
            if sig is not None:
                return [sig]
        base = dotted(func.value)
        if base is not None:
            if base in imports.module_aliases:
                src = imports.module_aliases[base]
                sig = index.functions.get(
                    (src, func.attr)
                ) or index.constructors.get((src, func.attr))
                if sig is not None:
                    return [sig]
            if base in imports.from_names:
                parent, original = imports.from_names[base]
                src = f"{parent}.{original}"
                sig = index.functions.get(
                    (src, func.attr)
                ) or index.constructors.get((src, func.attr))
                if sig is not None:
                    return [sig]
        return list(index.by_method_name.get(func.attr, []))
    return []


def iter_call_bindings(
    call: ast.Call, sigs: List[FunctionSig]
) -> Iterator[Tuple[str, ast.expr]]:
    """(parameter name, argument expr) pairs we can bind statically.

    Positional slots are bound only where every candidate signature
    agrees on the parameter's unit suffix; keyword arguments only
    when at least one candidate accepts the name.
    """
    if not any(isinstance(a, ast.Starred) for a in call.args):
        for position, arg in enumerate(call.args):
            if any(position >= len(sig.params) for sig in sigs):
                break  # ambiguous arity across candidates
            units = {
                unit_suffix(sig.params[position]) for sig in sigs
            }
            if len(units) != 1 or None in units:
                continue  # candidates disagree: stay silent
            yield sigs[0].params[position], arg
    for keyword in call.keywords:
        if keyword.arg is None:
            continue  # **kwargs forwarding: unreadable
        accepted = any(
            keyword.arg in sig.params
            or keyword.arg in sig.kwonly
            or sig.has_kwarg
            for sig in sigs
        )
        if not accepted:
            continue  # would be a TypeError, not a unit bug
        yield keyword.arg, keyword.value


class UnitsChecker:
    """RL101/RL102 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        self._walk(ctx, index, imports, ctx.tree, None, findings)
        return findings

    # -- traversal ----------------------------------------------------

    def _walk(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        imports: ImportMap,
        node: ast.AST,
        current_class: Optional[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._walk(
                    ctx, index, imports, child, child.name, findings
                )
                continue
            if isinstance(child, ast.Call):
                sigs = resolve_call_signatures(
                    ctx, index, imports, child.func, current_class
                )
                if sigs:
                    findings.extend(
                        self._check_binding(ctx, child, sigs)
                    )
            elif isinstance(child, ast.BinOp):
                result = self._check_arith(ctx, child)
                if result is not None:
                    findings.append(result)
            self._walk(
                ctx, index, imports, child, current_class, findings
            )

    # -- RL101 --------------------------------------------------------

    def _check_binding(
        self,
        ctx: FileContext,
        call: ast.Call,
        sigs: List[FunctionSig],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for param, arg in iter_call_bindings(call, sigs):
            param_unit = unit_suffix(param)
            arg_unit = expr_unit(arg)
            if param_unit is None or arg_unit is None:
                continue
            if param_unit == arg_unit:
                continue
            findings.append(
                finding(
                    RL101,
                    str(ctx.path),
                    call.lineno,
                    call.col_offset + 1,
                    f"`{_describe(arg)}` ({label(arg_unit)}) is "
                    f"bound to parameter `{param}` "
                    f"({label(param_unit)}) of {_display(sigs)}",
                )
            )
        return findings

    # -- RL102 --------------------------------------------------------

    def _check_arith(
        self, ctx: FileContext, node: ast.BinOp
    ) -> Optional[Finding]:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return None
        left = expr_unit(node.left)
        right = expr_unit(node.right)
        if left is None or right is None:
            return None
        operator = "+" if isinstance(node.op, ast.Add) else "-"
        where = (str(ctx.path), node.lineno, node.col_offset + 1)
        if left == right:
            if left == "dbm" and operator == "+":
                return finding(
                    RL102,
                    *where,
                    "adding two absolute dBm powers "
                    f"(`{_describe(node.left)} + "
                    f"{_describe(node.right)}`); power sums in "
                    "watts — convert with dbm_to_watts first",
                )
            return None
        if dimension(left) != dimension(right):
            return finding(
                RL102,
                *where,
                f"`{operator}` between {label(left)} "
                f"(`{_describe(node.left)}`) and {label(right)} "
                f"(`{_describe(node.right)}`) mixes dimensions",
            )
        if dimension(left) == "level":
            return None  # dB vs dBm / dBFS: legitimate gain math
        return finding(
            RL102,
            *where,
            f"`{operator}` between {label(left)} "
            f"(`{_describe(node.left)}`) and {label(right)} "
            f"(`{_describe(node.right)}`) mixes scales; convert "
            "one side first",
        )


class _UnitEnvAnalysis(ForwardAnalysis[Dict[str, str]]):
    """Forward unit inference: local name -> definite unit suffix."""

    def initial(self) -> Dict[str, str]:
        return {}

    def join(
        self, left: Dict[str, str], right: Dict[str, str]
    ) -> Dict[str, str]:
        return {
            name: unit
            for name, unit in left.items()
            if right.get(name) == unit
        }

    def transfer(
        self, state: Dict[str, str], event: Event
    ) -> Dict[str, str]:
        node = event.node
        if not isinstance(
            node, (ast.Assign, ast.AnnAssign, ast.AugAssign)
        ):
            return state
        out = dict(state)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind(out, target, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(out, node.target, node.value)
        else:  # AugAssign: x op= v behaves like x = x op v
            target = node.target
            if isinstance(target, ast.Name):
                synthetic = ast.BinOp(
                    left=ast.Name(id=target.id, ctx=ast.Load()),
                    op=node.op,
                    right=node.value,
                )
                ast.copy_location(synthetic, node)
                ast.fix_missing_locations(synthetic)
                self._assign_name(out, target.id, synthetic)
        return out

    def _bind(
        self,
        env: Dict[str, str],
        target: ast.expr,
        value: ast.expr,
    ) -> None:
        if isinstance(target, ast.Name):
            self._assign_name(env, target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(elts):
                for sub_target, sub_value in zip(elts, value.elts):
                    self._bind(env, sub_target, sub_value)
            else:
                # Unpacking an opaque value: the old bindings for
                # every plain-name target are no longer trustworthy.
                for sub_target in elts:
                    if isinstance(sub_target, ast.Name):
                        env.pop(sub_target.id, None)
            return
        # Attribute/subscript stores are outside the local lattice.

    def _assign_name(
        self, env: Dict[str, str], name: str, value: ast.expr
    ) -> None:
        if unit_suffix(name) is not None:
            # The suffix is authoritative; mismatches are RL103's
            # job during replay, not the environment's.
            return
        unit = infer_expr(value, env)
        if unit is None:
            env.pop(name, None)
        else:
            env[name] = unit


def _violation_message(
    violation: str,
    operator: str,
    left_desc: str,
    left_unit: str,
    right_desc: str,
    right_unit: str,
) -> str:
    if violation == VIOLATION_ABSOLUTE_ADD:
        return (
            f"adding two absolute {label(left_unit)} powers "
            f"(`{left_desc}` + `{right_desc}`, units inferred "
            "through dataflow); power sums in watts"
        )
    if violation == VIOLATION_DIMENSION_MIX:
        return (
            f"`{operator}` between {label(left_unit)} "
            f"(`{left_desc}`) and {label(right_unit)} "
            f"(`{right_desc}`) mixes dimensions (units inferred "
            "through dataflow)"
        )
    return (
        f"`{operator}` between {label(left_unit)} (`{left_desc}`) "
        f"and {label(right_unit)} (`{right_desc}`) mixes scales "
        "(units inferred through dataflow); convert one side first"
    )


class UnitFlowChecker:
    """RL103/RL104/RL105: the unit lattice over the CFG."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        for func, owner in _functions_with_owner(ctx.tree):
            self._check_function(
                ctx, index, imports, func, owner, findings
            )
        return findings

    def _check_function(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        imports: ImportMap,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: Optional[str],
        findings: List[Finding],
    ) -> None:
        cfg: Cfg = build_cfg(func)
        analysis = _UnitEnvAnalysis()
        entry_states = run_forward(cfg, analysis)
        return_unit = unit_suffix(func.name)

        def visit(
            env: Dict[str, str], event: Event, _block: object
        ) -> None:
            if event.kind not in (STMT, TEST, ITER):
                return
            node = event.node
            if isinstance(node, ast.Return):
                self._check_return(
                    ctx, func, return_unit, node, env, findings
                )
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_suffixed_assign(
                        ctx, target, node.value, env, findings
                    )
            for expr in _expressions_of(node):
                for sub in _walk_same_scope(expr):
                    if isinstance(sub, ast.BinOp):
                        self._check_arith_flow(
                            ctx, sub, env, findings
                        )
                    elif isinstance(sub, ast.Call):
                        self._check_call_flow(
                            ctx,
                            index,
                            imports,
                            owner,
                            sub,
                            env,
                            findings,
                        )

        replay(cfg, analysis, entry_states, visit)

    # -- RL103 --------------------------------------------------------

    def _check_arith_flow(
        self,
        ctx: FileContext,
        node: ast.BinOp,
        env: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        syn_left = expr_unit(node.left)
        syn_right = expr_unit(node.right)
        if syn_left is not None and syn_right is not None:
            return  # statement-level RL102 already owns this
        left = syn_left or infer_expr(node.left, env)
        right = syn_right or infer_expr(node.right, env)
        if left is None or right is None:
            return
        is_add = isinstance(node.op, ast.Add)
        _, violation = combine_add_sub(left, right, is_add)
        if violation is None:
            return
        findings.append(
            finding(
                RL103,
                str(ctx.path),
                node.lineno,
                node.col_offset + 1,
                _violation_message(
                    violation,
                    "+" if is_add else "-",
                    _describe(node.left),
                    left,
                    _describe(node.right),
                    right,
                ),
            )
        )

    def _check_suffixed_assign(
        self,
        ctx: FileContext,
        target: ast.expr,
        value: ast.expr,
        env: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        target_unit = unit_suffix(target.id)
        if target_unit is None:
            return
        value_unit = infer_expr(value, env)
        if value_unit is None or value_unit == target_unit:
            return
        if (
            dimension(target_unit) == "level"
            and dimension(value_unit) == "level"
        ):
            return  # level-family conversions are gain math
        findings.append(
            finding(
                RL103,
                str(ctx.path),
                target.lineno,
                target.col_offset + 1,
                f"`{target.id}` ({label(target_unit)}) is assigned "
                f"a {label(value_unit)} value "
                f"(`{_describe(value)}`, unit inferred through "
                "dataflow)",
            )
        )

    # -- RL104 --------------------------------------------------------

    def _check_call_flow(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        imports: ImportMap,
        owner: Optional[str],
        call: ast.Call,
        env: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        sigs = resolve_call_signatures(
            ctx, index, imports, call.func, owner
        )
        if not sigs:
            return
        for param, arg in iter_call_bindings(call, sigs):
            param_unit = unit_suffix(param)
            if param_unit is None:
                return
            if expr_unit(arg) is not None:
                continue  # statement-level RL101 owns suffixed args
            arg_unit = infer_expr(arg, env)
            if arg_unit is None or arg_unit == param_unit:
                continue
            if (
                dimension(param_unit) == "level"
                and dimension(arg_unit) == "level"
            ):
                continue  # dB into dBm slots: gain-math idiom
            findings.append(
                finding(
                    RL104,
                    str(ctx.path),
                    call.lineno,
                    call.col_offset + 1,
                    f"`{_describe(arg)}` carries "
                    f"{label(arg_unit)} (inferred through "
                    f"dataflow) but binds to parameter `{param}` "
                    f"({label(param_unit)}) of {_display(sigs)}",
                )
            )

    # -- RL105 --------------------------------------------------------

    def _check_return(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        return_unit: Optional[str],
        node: ast.Return,
        env: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        if return_unit is None or node.value is None:
            return
        value_unit = infer_expr(node.value, env)
        if value_unit is None or value_unit == return_unit:
            return
        if (
            dimension(return_unit) == "level"
            and dimension(value_unit) == "level"
        ):
            return  # relative/absolute level mixes: gain math
        findings.append(
            finding(
                RL105,
                str(ctx.path),
                node.lineno,
                node.col_offset + 1,
                f"`{func.name}` promises {label(return_unit)} by "
                f"its name but returns a {label(value_unit)} value "
                f"(`{_describe(node.value)}`)",
            )
        )


def _functions_with_owner(
    tree: ast.AST,
) -> List[Tuple["ast.FunctionDef | ast.AsyncFunctionDef", Optional[str]]]:
    """Every function in the module with its owning class, if any."""
    out: List[
        Tuple["ast.FunctionDef | ast.AsyncFunctionDef", Optional[str]]
    ] = []

    def descend(node: ast.AST, owner: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                descend(child, child.name)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                out.append((child, owner))
                descend(child, None)  # nested defs lose the owner
            else:
                descend(child, owner)

    descend(tree, None)
    return out


def _expressions_of(node: ast.AST) -> List[ast.expr]:
    """Top-level expressions of one statement-like event node."""
    if isinstance(node, ast.expr):
        return [node]
    out: List[ast.expr] = []
    for field_value in ast.iter_child_nodes(node):
        if isinstance(field_value, ast.expr):
            out.append(field_value)
    return out


def _walk_same_scope(expr: ast.expr) -> Iterator[ast.AST]:
    """Walk an expression without descending into nested scopes."""
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.Lambda,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                continue
            stack.append(child)
