"""Rule-family checkers. Importing this package registers every
rule in :data:`repro.lint.findings.REGISTRY`."""

from __future__ import annotations

from typing import List, Protocol

from repro.lint.checkers.concurrency import ConcurrencyChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.interface import InterfaceChecker
from repro.lint.checkers.oracle import OracleCoverageChecker
from repro.lint.checkers.rng_lockstep import RngLockstepChecker
from repro.lint.checkers.units import UnitFlowChecker, UnitsChecker
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.signatures import SignatureIndex


class Checker(Protocol):
    """One rule family's entry point."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]: ...


def all_checkers() -> List[Checker]:
    """Fresh instances of every rule family, in rule-id order."""
    return [
        UnitsChecker(),
        UnitFlowChecker(),
        DeterminismChecker(),
        ConcurrencyChecker(),
        RngLockstepChecker(),
        OracleCoverageChecker(),
        InterfaceChecker(),
    ]


__all__ = [
    "Checker",
    "ConcurrencyChecker",
    "DeterminismChecker",
    "InterfaceChecker",
    "OracleCoverageChecker",
    "RngLockstepChecker",
    "UnitFlowChecker",
    "UnitsChecker",
    "all_checkers",
]
