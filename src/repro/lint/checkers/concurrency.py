"""RL3 — path-sensitive lock regions in the threaded layers.

For classes in ``runtime``/``stream``/``serve`` modules that own a
``threading.Lock``/``RLock``, the checker runs a *definitely-held*
lock-set lattice over each method's CFG: ``with self._lock:`` and
explicit ``acquire()`` grow the set, block exit and ``release()``
shrink it, and joins intersect — a lock is held at a point only when
it is held on **every** path reaching it.

- RL301 flags mutation of ``self`` state in a *public* method at any
  point where no owned guard is definitely held — direct assignment,
  augmented assignment, subscript stores, deletes, and mutating
  container calls (``self._items.append(...)``). Because the lattice
  is path-sensitive, a conditional ``acquire()`` or a mutation after
  the ``with`` block closes is caught, and a mutation on the one
  unlocked path through a diamond is not masked by the locked path.
  Private helpers (leading underscore) are exempt by repo
  convention: they document that the caller already holds the lock
  (e.g. ``BoundedQueue._append``).
- RL302 flags calls that run user code or I/O while any guard is
  definitely held — ``print``, ``logging``/``logger`` calls, and
  callback/hook/listener invocations — a classic deadlock and
  latency trap. Condition-variable ``notify``/``notify_all`` are of
  course legal under the lock.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterator, List, Optional, Set

from repro.lint.cfg import (
    WITH_ENTER,
    WITH_EXIT,
    Block,
    Event,
    build_cfg,
)
from repro.lint.context import FileContext
from repro.lint.dataflow import ForwardAnalysis, replay, run_forward
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.resolve import (
    ImportMap,
    build_import_map,
    canonical_call,
    dotted,
)
from repro.lint.signatures import SignatureIndex

RL301 = register_rule(
    "RL301",
    "unlocked-shared-mutation",
    Severity.ERROR,
    "shared state mutated on a path where the owning lock is not "
    "held",
)

RL302 = register_rule(
    "RL302",
    "call-while-holding-lock",
    Severity.WARNING,
    "callback/logging invoked while holding a lock",
)

#: Only the threaded layers are in scope.
LOCK_SCOPES: FrozenSet[str] = frozenset(
    {"runtime", "stream", "serve"}
)

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock"})
_GUARD_FACTORIES = _LOCK_FACTORIES | {"threading.Condition"}

_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

_CALLBACK_RE = re.compile(
    r"^on_|_on_|callback|hook|listener|subscriber"
)
_LOGGING_BASES = frozenset({"logging", "logger", "log"})
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

LockState = FrozenSet[str]


def _root_is_self(node: ast.expr) -> bool:
    """Whether an attribute/subscript chain is rooted at ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


def _guard_attr(node: ast.expr, guards: Set[str]) -> Optional[str]:
    """The guard attribute named by ``self.<attr>``, if any."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in guards
    ):
        return node.attr
    return None


class _LockSetAnalysis(ForwardAnalysis[LockState]):
    """Definitely-held guard attributes; join is intersection."""

    def __init__(self, guards: Set[str]):
        self.guards = guards

    def initial(self) -> LockState:
        return frozenset()

    def join(self, left: LockState, right: LockState) -> LockState:
        return left & right

    def transfer(self, state: LockState, event: Event) -> LockState:
        node = event.node
        if event.kind == WITH_ENTER and isinstance(node, ast.expr):
            attr = _guard_attr(node, self.guards)
            if attr is not None:
                return state | {attr}
            return state
        if event.kind == WITH_EXIT and isinstance(node, ast.expr):
            attr = _guard_attr(node, self.guards)
            if attr is not None:
                return state - {attr}
            return state
        # Explicit self._lock.acquire() / .release() calls.
        if isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Call
        ):
            func = node.value.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "acquire",
                "release",
            ):
                attr = _guard_attr(func.value, self.guards)
                if attr is not None:
                    if func.attr == "acquire":
                        return state | {attr}
                    return state - {attr}
        return state


class ConcurrencyChecker:
    """RL301/RL302 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        if not (LOCK_SCOPES & ctx.scope_parts):
            return []
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(ctx, imports, node, findings)
        return findings

    # -- per-class ----------------------------------------------------

    def _check_class(
        self,
        ctx: FileContext,
        imports: ImportMap,
        cls: ast.ClassDef,
        findings: List[Finding],
    ) -> None:
        locks, guards = self._guard_attrs(imports, cls)
        if not locks:
            return
        for stmt in cls.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if stmt.name in _INIT_METHODS:
                continue
            self._check_method(
                ctx,
                cls.name,
                stmt,
                guards,
                check_mutations=not _is_private(stmt.name),
                findings=findings,
            )

    def _guard_attrs(
        self, imports: ImportMap, cls: ast.ClassDef
    ) -> "tuple[Set[str], Set[str]]":
        """Names of ``self`` attributes holding locks/conditions."""
        locks: Set[str] = set()
        guards: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            canon = canonical_call(imports, node.value.func)
            if canon not in _GUARD_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards.add(target.attr)
                    if canon in _LOCK_FACTORIES:
                        locks.add(target.attr)
        return locks, guards

    # -- per-method dataflow -----------------------------------------

    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: "ast.FunctionDef | ast.AsyncFunctionDef",
        guards: Set[str],
        check_mutations: bool,
        findings: List[Finding],
    ) -> None:
        cfg = build_cfg(method)
        analysis = _LockSetAnalysis(guards)
        entry_states = run_forward(cfg, analysis)

        def visit(
            held: LockState, event: Event, _block: Block
        ) -> None:
            node = event.node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return  # nested defs run later, under unknown locking
            if not held and check_mutations and event.kind == "stmt":
                if isinstance(node, ast.stmt):
                    self._check_mutation(
                        ctx, class_name, method.name, node, findings
                    )
            if held:
                for call in _calls_in_event(node):
                    self._check_locked_call(
                        ctx, class_name, method.name, call, findings
                    )

        replay(cfg, analysis, entry_states, visit)

    # -- RL301 --------------------------------------------------------

    def _check_mutation(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        stmt: ast.stmt,
        findings: List[Finding],
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value:
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(
                target, (ast.Attribute, ast.Subscript)
            ) and _root_is_self(target):
                findings.append(
                    finding(
                        RL301,
                        str(ctx.path),
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"{class_name}.{method} mutates "
                        f"`{ast.unparse(target)}` on a path where "
                        "`self._lock` is not held in a lock-owning "
                        "class",
                    )
                )
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _root_is_self(func.value)
            ):
                findings.append(
                    finding(
                        RL301,
                        str(ctx.path),
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"{class_name}.{method} calls "
                        f"`{ast.unparse(func)}(...)` on a path "
                        "where `self._lock` is not held in a "
                        "lock-owning class",
                    )
                )

    # -- RL302 --------------------------------------------------------

    def _check_locked_call(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        node: ast.Call,
        findings: List[Finding],
    ) -> None:
        reason = self._locked_call_reason(node.func)
        if reason is None:
            return
        findings.append(
            finding(
                RL302,
                str(ctx.path),
                node.lineno,
                node.col_offset + 1,
                f"{class_name}.{method} invokes {reason} while "
                "holding the lock; move it outside the critical "
                "section",
            )
        )

    @staticmethod
    def _locked_call_reason(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "`print` (blocking I/O)"
            if _CALLBACK_RE.search(func.id):
                return f"callback `{func.id}`"
            return None
        if isinstance(func, ast.Attribute):
            path = dotted(func)
            if path is not None:
                first = path.split(".", 1)[0]
                base = path.rsplit(".", 2)
                owner = base[-2] if len(base) >= 2 else ""
                if (
                    first in _LOGGING_BASES
                    or owner.lstrip("_") in _LOGGING_BASES
                ):
                    return f"logging call `{path}`"
            if _CALLBACK_RE.search(func.attr):
                return f"callback `{func.attr}`"
        return None


def _calls_in_event(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes within one event, not descending nested scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))
