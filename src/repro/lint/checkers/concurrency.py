"""RL3 — lock hygiene in the threaded runtime/stream/serve layers.

For classes in ``runtime``/``stream``/``serve`` modules that own a
``threading.Lock``/``RLock``:

- RL301 flags mutation of ``self`` state in a *public* method
  outside a ``with self._lock:`` block — direct assignment,
  augmented assignment, subscript stores, and mutating container
  calls (``self._items.append(...)``). Private helpers (leading
  underscore) are exempt by repo convention: they document that the
  caller already holds the lock (e.g. ``BoundedQueue._append``).
- RL302 flags calls that run user code or I/O while the lock is
  held — ``print``, ``logging``/``logger`` calls, and
  callback/hook/listener invocations — a classic deadlock and
  latency trap. Condition-variable ``notify``/``notify_all`` are of
  course legal under the lock.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.lint.context import FileContext
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.resolve import (
    ImportMap,
    build_import_map,
    canonical_call,
    dotted,
)
from repro.lint.signatures import SignatureIndex

RL301 = register_rule(
    "RL301",
    "unlocked-shared-mutation",
    Severity.ERROR,
    "shared state mutated outside the owning lock in a "
    "lock-owning class",
)

RL302 = register_rule(
    "RL302",
    "call-while-holding-lock",
    Severity.WARNING,
    "callback/logging invoked while holding a lock",
)

#: Only the threaded layers are in scope.
LOCK_SCOPES: FrozenSet[str] = frozenset(
    {"runtime", "stream", "serve"}
)

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock"})
_GUARD_FACTORIES = _LOCK_FACTORIES | {"threading.Condition"}

_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

_CALLBACK_RE = re.compile(
    r"^on_|_on_|callback|hook|listener|subscriber"
)
_LOGGING_BASES = frozenset({"logging", "logger", "log"})
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _root_is_self(node: ast.expr) -> bool:
    """Whether an attribute/subscript chain is rooted at ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


class ConcurrencyChecker:
    """RL301/RL302 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        if not (LOCK_SCOPES & ctx.scope_parts):
            return []
        imports = build_import_map(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(ctx, imports, node, findings)
        return findings

    # -- per-class ----------------------------------------------------

    def _check_class(
        self,
        ctx: FileContext,
        imports: ImportMap,
        cls: ast.ClassDef,
        findings: List[Finding],
    ) -> None:
        locks, guards = self._guard_attrs(imports, cls)
        if not locks:
            return
        for stmt in cls.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if stmt.name in _INIT_METHODS:
                continue
            check_mutations = not _is_private(stmt.name)
            self._walk_method(
                ctx,
                cls.name,
                stmt.name,
                stmt.body,
                guards,
                locked=False,
                check_mutations=check_mutations,
                findings=findings,
            )

    def _guard_attrs(
        self, imports: ImportMap, cls: ast.ClassDef
    ) -> "tuple[Set[str], Set[str]]":
        """Names of ``self`` attributes holding locks/conditions."""
        locks: Set[str] = set()
        guards: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            canon = canonical_call(imports, node.value.func)
            if canon not in _GUARD_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards.add(target.attr)
                    if canon in _LOCK_FACTORIES:
                        locks.add(target.attr)
        return locks, guards

    # -- per-method traversal ----------------------------------------

    def _walk_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        body: Sequence[ast.stmt],
        guards: Set[str],
        locked: bool,
        check_mutations: bool,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            self._visit_stmt(
                ctx,
                class_name,
                method,
                stmt,
                guards,
                locked,
                check_mutations,
                findings,
            )

    def _visit_stmt(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        stmt: ast.stmt,
        guards: Set[str],
        locked: bool,
        check_mutations: bool,
        findings: List[Finding],
    ) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return  # nested defs run later, under unknown locking
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            takes_lock = any(
                self._is_guard_expr(item.context_expr, guards)
                for item in stmt.items
            )
            self._walk_method(
                ctx,
                class_name,
                method,
                stmt.body,
                guards,
                locked or takes_lock,
                check_mutations,
                findings,
            )
            return
        if not locked and check_mutations:
            self._check_mutation(
                ctx, class_name, method, stmt, findings
            )
        if locked:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_locked_call(
                        ctx, class_name, method, node, findings
                    )
        for child_body in self._nested_bodies(stmt):
            self._walk_method(
                ctx,
                class_name,
                method,
                child_body,
                guards,
                locked,
                check_mutations,
                findings,
            )

    @staticmethod
    def _nested_bodies(
        stmt: ast.stmt,
    ) -> List[Sequence[ast.stmt]]:
        bodies: List[Sequence[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block and not isinstance(
                stmt, (ast.With, ast.AsyncWith)
            ):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _is_guard_expr(
        node: ast.expr, guards: Set[str]
    ) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guards
        )

    # -- RL301 --------------------------------------------------------

    def _check_mutation(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        stmt: ast.stmt,
        findings: List[Finding],
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value:
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(
                target, (ast.Attribute, ast.Subscript)
            ) and _root_is_self(target):
                findings.append(
                    finding(
                        RL301,
                        str(ctx.path),
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"{class_name}.{method} mutates "
                        f"`{ast.unparse(target)}` outside "
                        "`with self._lock:` in a lock-owning "
                        "class",
                    )
                )
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _root_is_self(func.value)
            ):
                findings.append(
                    finding(
                        RL301,
                        str(ctx.path),
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"{class_name}.{method} calls "
                        f"`{ast.unparse(func)}(...)` outside "
                        "`with self._lock:` in a lock-owning "
                        "class",
                    )
                )

    # -- RL302 --------------------------------------------------------

    def _check_locked_call(
        self,
        ctx: FileContext,
        class_name: str,
        method: str,
        node: ast.Call,
        findings: List[Finding],
    ) -> None:
        reason = self._locked_call_reason(node.func)
        if reason is None:
            return
        findings.append(
            finding(
                RL302,
                str(ctx.path),
                node.lineno,
                node.col_offset + 1,
                f"{class_name}.{method} invokes {reason} while "
                "holding the lock; move it outside the critical "
                "section",
            )
        )

    @staticmethod
    def _locked_call_reason(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "`print` (blocking I/O)"
            if _CALLBACK_RE.search(func.id):
                return f"callback `{func.id}`"
            return None
        if isinstance(func, ast.Attribute):
            path = dotted(func)
            if path is not None:
                first = path.split(".", 1)[0]
                base = path.rsplit(".", 2)
                owner = base[-2] if len(base) >= 2 else ""
                if (
                    first in _LOGGING_BASES
                    or owner.lstrip("_") in _LOGGING_BASES
                ):
                    return f"logging call `{path}`"
            if _CALLBACK_RE.search(func.attr):
                return f"callback `{func.attr}`"
        return None
