"""RL4 — interface hygiene.

- RL401: public functions and methods in the ``core``/``stream``/
  ``serve`` packages — the surfaces every other subsystem (and the
  public query API) builds on — must be fully annotated (every
  named parameter and the return type).
- RL402: bare ``except:`` anywhere catches ``KeyboardInterrupt``
  and ``SystemExit`` and is always wrong; name the exception.
- RL403: an ``except Exception:`` whose body is only
  ``pass``/``continue`` swallows failures invisibly — deadly in
  worker loops, where a job dies and the campaign reports success.
  Log, count, or re-raise instead.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Union

from repro.lint.context import FileContext
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.signatures import SignatureIndex

RL401 = register_rule(
    "RL401",
    "missing-annotations",
    Severity.WARNING,
    "public core/stream/serve function missing parameter or "
    "return annotations",
)

RL402 = register_rule(
    "RL402",
    "bare-except",
    Severity.ERROR,
    "bare `except:` catches KeyboardInterrupt/SystemExit",
)

RL403 = register_rule(
    "RL403",
    "swallowed-exception",
    Severity.WARNING,
    "`except Exception:` with a pass-only body hides failures",
)

#: Packages whose public surface must be annotated.
ANNOTATION_SCOPES: FrozenSet[str] = frozenset(
    {"core", "stream", "serve", "interference"}
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _decorator_names(node: _FunctionNode) -> List[str]:
    names: List[str] = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


class InterfaceChecker:
    """RL401/RL402/RL403 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        findings: List[Finding] = []
        if ANNOTATION_SCOPES & ctx.scope_parts:
            self._check_annotations(
                ctx, ctx.tree.body, None, findings
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                result = self._check_handler(ctx, node)
                if result is not None:
                    findings.append(result)
        return findings

    # -- RL401 --------------------------------------------------------

    def _check_annotations(
        self,
        ctx: FileContext,
        body: List[ast.stmt],
        class_name: Optional[str],
        findings: List[Finding],
    ) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    self._check_annotations(
                        ctx, node.body, node.name, findings
                    )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._check_function(
                    ctx, node, class_name, findings
                )

    def _check_function(
        self,
        ctx: FileContext,
        node: _FunctionNode,
        class_name: Optional[str],
        findings: List[Finding],
    ) -> None:
        if not _is_public(node.name):
            return
        if "overload" in _decorator_names(node):
            return
        missing: List[str] = []
        named = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        for arg in named:
            if arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(f"parameter `{arg.arg}`")
        if node.returns is None:
            missing.append("return type")
        if not missing:
            return
        qualname = (
            f"{class_name}.{node.name}" if class_name else node.name
        )
        findings.append(
            finding(
                RL401,
                str(ctx.path),
                node.lineno,
                node.col_offset + 1,
                f"public function {qualname} is missing "
                f"annotations: {', '.join(missing)}",
            )
        )

    # -- RL402 / RL403 ------------------------------------------------

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Optional[Finding]:
        where = (str(ctx.path), node.lineno, node.col_offset + 1)
        if node.type is None:
            return finding(
                RL402,
                *where,
                "bare `except:` also catches KeyboardInterrupt "
                "and SystemExit; catch `Exception` (or narrower) "
                "instead",
            )
        if self._is_broad(node.type) and self._swallows(node.body):
            return finding(
                RL403,
                *where,
                "`except Exception:` with a pass-only body "
                "swallows failures; log, count, or re-raise",
            )
        return None

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names: List[str] = []
        candidates = (
            type_node.elts
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                names.append(candidate.id)
        return any(
            n in ("Exception", "BaseException") for n in names
        )

    @staticmethod
    def _swallows(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True
