"""RL6 — every vectorized kernel needs a scalar oracle and a test.

The repo's performance story is "vectorize everything, keep a scalar
oracle, prove equivalence" (docs/vectorization.md). This rule family
makes that contract machine-checked so a new batch kernel cannot land
without its oracle:

- RL601: a public ``*_batch`` function has no scalar oracle. An
  oracle is either a sibling in the same scope (``X`` or
  ``X_scalar`` next to ``X_batch``) or — one hop out — a dispatcher
  anywhere in the indexed tree that has a scalar twin in *its* scope
  and delegates to the kernel (``DirectionalEvaluator.run`` twins
  ``run_scalar`` and calls ``run_directional_scan_batch``).
- RL602: no test references both halves of the kernel/oracle pair.
  An equivalence test must call both, so the pair's names have to
  appear together in at least one test file. The check is
  name-based and purely syntactic; it only runs when the engine
  indexed a tests tree (``SignatureIndex.has_test_index``), so
  hermetic fixture runs stay quiet unless they opt in.

The same contract covers :mod:`repro.engines` backend kernels: a
public function in an accelerated ``kernels_<backend>`` module (any
module under an ``engines`` package named ``kernels_*`` other than
the :data:`ENGINE_BASELINE`) must have a same-named oracle in the
baseline module (RL601), and some test must reference the kernel
name together with *both* module basenames (RL602 — the halves of an
engine pair share one function name, so the module names are what an
equivalence test has to mention to prove it exercised both
backends). Accelerated kernels are typically defined under an
``if <dependency available>:`` guard, so the engine leg walks
module-level ``if``/``try`` blocks too, not just the module body.

Private (``_``-prefixed) kernels are exempt: they are internals of a
public kernel that carries the contract for both.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.context import FileContext
from repro.lint.findings import (
    Finding,
    Severity,
    finding,
    register_rule,
)
from repro.lint.signatures import (
    FunctionNode,
    SignatureIndex,
    function_scopes,
)

RL601 = register_rule(
    "RL601",
    "batch-kernel-without-oracle",
    Severity.ERROR,
    "vectorized *_batch kernel has no scalar oracle or scalar-twin "
    "dispatcher",
)

RL602 = register_rule(
    "RL602",
    "oracle-pair-without-test",
    Severity.ERROR,
    "no test references the batch kernel and its scalar oracle "
    "together",
)

#: Basename of the reference backend every accelerated engine-kernel
#: module must mirror function-for-function.
ENGINE_BASELINE = "kernels_numpy"


def _engine_kernel_basename(module: str) -> "str | None":
    """``kernels_<backend>`` basename when ``module`` is an
    accelerated kernel namespace under an ``engines`` package."""
    parts = module.split(".")
    base = parts[-1]
    if "engines" not in parts[:-1]:
        return None
    if not base.startswith("kernels_") or base == ENGINE_BASELINE:
        return None
    return base


def _module_functions(
    tree: ast.Module,
) -> Iterator[FunctionNode]:
    """Module-level functions, descending into ``if``/``try`` arms.

    Accelerated backends define their kernels under an availability
    guard (``if NUMBA_AVAILABLE:``), which ``function_scopes`` —
    built for the scope-local scalar/batch convention — does not
    enter.
    """
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt
        elif isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


class OracleCoverageChecker:
    """RL601/RL602 over one file."""

    def check(
        self, ctx: FileContext, index: SignatureIndex
    ) -> List[Finding]:
        findings: List[Finding] = []
        engine_basename = _engine_kernel_basename(ctx.module)
        if engine_basename is not None:
            self._check_engine_module(
                ctx, index, engine_basename, findings
            )
        for scope_functions in function_scopes(ctx.tree):
            names = {fn.name for fn in scope_functions}
            for fn in scope_functions:
                if not fn.name.endswith("_batch"):
                    continue
                if fn.name.startswith("_"):
                    continue
                self._check_kernel(ctx, index, fn, names, findings)
        return findings

    def _check_kernel(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        fn: FunctionNode,
        siblings: "set[str]",
        findings: List[Finding],
    ) -> None:
        base = fn.name[: -len("_batch")]
        pair: "tuple[str, str]"
        if base in siblings:
            pair = (fn.name, base)
        elif base + "_scalar" in siblings:
            pair = (fn.name, base + "_scalar")
        else:
            dispatchers = index.scalar_dispatchers.get(fn.name, [])
            if not dispatchers:
                findings.append(
                    finding(
                        RL601,
                        str(ctx.path),
                        fn.lineno,
                        fn.col_offset + 1,
                        f"vectorized kernel `{fn.name}` has no "
                        f"scalar oracle: no `{base}` or "
                        f"`{base}_scalar` sibling, and no "
                        "dispatcher with a scalar twin calls it",
                    )
                )
                return
            pair = dispatchers[0]
        self._check_pair_tested(ctx, index, fn, pair, findings)

    def _check_engine_module(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        basename: str,
        findings: List[Finding],
    ) -> None:
        """RL601/RL602 over an accelerated engine-kernel module."""
        baseline_module = ".".join(
            ctx.module.split(".")[:-1] + [ENGINE_BASELINE]
        )
        for fn in _module_functions(ctx.tree):
            if fn.name.startswith("_"):
                continue
            if (baseline_module, fn.name) not in index.functions:
                findings.append(
                    finding(
                        RL601,
                        str(ctx.path),
                        fn.lineno,
                        fn.col_offset + 1,
                        f"accelerated kernel `{fn.name}` has no "
                        f"oracle: `{baseline_module}` defines no "
                        "same-named baseline function",
                    )
                )
                continue
            if not index.has_test_index:
                continue
            needed = {fn.name, basename, ENGINE_BASELINE}
            if any(
                needed <= refs for refs in index.test_refs.values()
            ):
                continue
            findings.append(
                finding(
                    RL602,
                    str(ctx.path),
                    fn.lineno,
                    fn.col_offset + 1,
                    f"no test references `{fn.name}` together with "
                    f"`{basename}` and `{ENGINE_BASELINE}`; add a "
                    "cross-backend equivalence test calling both",
                )
            )

    def _check_pair_tested(
        self,
        ctx: FileContext,
        index: SignatureIndex,
        fn: FunctionNode,
        pair: "tuple[str, str]",
        findings: List[Finding],
    ) -> None:
        if not index.has_test_index:
            return
        batch_name, oracle_name = pair
        for refs in index.test_refs.values():
            if batch_name in refs and oracle_name in refs:
                return
        findings.append(
            finding(
                RL602,
                str(ctx.path),
                fn.lineno,
                fn.col_offset + 1,
                f"no test references `{batch_name}` and "
                f"`{oracle_name}` together; add an equivalence "
                "test calling both",
            )
        )

