"""``repro lint`` / ``python -m repro.lint`` — the analyzer CLI.

Exit codes: 0 clean (at the ``--fail-on`` gate), 1 findings at or
above the gate, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    changed_files,
    collect_files,
    run_lint,
)
from repro.lint.findings import REGISTRY, Severity
from repro.lint.report import render_json, render_text
from repro.lint.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Domain-aware static analysis: unit discipline (flow-"
            "sensitive), simulation determinism, lock regions, RNG "
            "lockstep, oracle coverage, interface hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        "(default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule-id prefixes to keep "
        "(e.g. RL1,RL301)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule-id prefixes to drop",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="REF",
        help="only lint files modified vs the git ref "
        "(default HEAD) plus untracked files",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="drop findings recorded in this baseline file; "
        "remaining findings gate the exit code (the ratchet)",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="write all current findings to FILE as accepted debt "
        "and exit 0",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule counts to text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    parts = [p.strip() for p in raw.split(",") if p.strip()]
    return parts or None


def _default_paths() -> List[str]:
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def _scope_to_changed(
    paths: List[str], ref: str
) -> Optional[List[str]]:
    """Restrict ``paths`` to files changed vs ``ref``.

    Returns ``None`` when nothing in scope changed.
    """
    modified = changed_files(ref)
    scoped = [
        str(path)
        for path in collect_files(paths)
        if path.resolve() in modified
    ]
    return scoped or None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            rule = REGISTRY[rule_id]
            print(
                f"{rule.rule_id} {rule.name} "
                f"[{rule.severity}] — {rule.summary}"
            )
        return 0

    paths = args.paths or _default_paths()
    try:
        if args.changed is not None:
            scoped = _scope_to_changed(paths, args.changed)
            if scoped is None:
                print(
                    f"repro lint: no files changed vs "
                    f"{args.changed}"
                )
                return 0
            paths = scoped
        result = run_lint(
            paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        write_baseline(Path(args.update_baseline), result.findings)
        print(
            f"repro lint: wrote {len(result.findings)} finding(s) "
            f"to {args.update_baseline}"
        )
        return 0

    if args.baseline:
        try:
            accepted = load_baseline(Path(args.baseline))
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        fresh, absorbed = apply_baseline(result.findings, accepted)
        result.findings = fresh
        result.baselined = absorbed
        result.per_rule = {}
        for f in fresh:
            result.per_rule[f.rule_id] = (
                result.per_rule.get(f.rule_id, 0) + 1
            )

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, statistics=args.statistics))

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 1 if result.worst_at_or_above(threshold) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
