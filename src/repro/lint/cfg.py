"""Control-flow graphs over function bodies.

The flow-sensitive rule families (unit inference, lock regions, RNG
lockstep) all need the same substrate: basic blocks of straight-line
*events* connected by edges that follow branches, loops, ``with``
blocks, ``try``/``except``, and early exits. This module builds that
graph purely syntactically — nothing is imported or executed.

Design notes:

- An :class:`Event` is one analysis-relevant step inside a block: a
  simple statement, a branch test, a loop iterable, or the enter/exit
  of a ``with`` context. Checkers pattern-match on the event kind.
- Every block carries the *structural guard stack* under which it
  executes — the chain of branch/loop conditions that dominate it in
  the source. Guards make control dependence cheap to query without
  a postdominator computation; statements placed after a conditional
  ``continue``/``return`` deliberately do not inherit that guard
  (the approximation documented in ``docs/linting.md``).
- ``try`` bodies are approximated conservatively: every block of the
  body gets an edge to each handler, so a handler joins the states
  of all partial executions of the body.
- A ``return``/``raise`` edge goes straight to the exit block. A
  ``return`` inside ``with`` skips the synthetic ``with-exit`` event;
  lock-region analysis tolerates locks held at the exit block.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Event kinds.
STMT = "stmt"
TEST = "test"
ITER = "iter"
WITH_ENTER = "with-enter"
WITH_EXIT = "with-exit"


@dataclass(frozen=True)
class Event:
    """One analysis-relevant step inside a basic block."""

    kind: str
    node: ast.AST


@dataclass(frozen=True)
class Guard:
    """One structural condition controlling a block's execution.

    Attributes:
        kind: ``"if"``, ``"while"``, ``"for"``, or ``"except"``.
        test: the branch test / loop iterable (``None`` for except).
        block: id of the block whose tail evaluates the condition.
        branch: ``True`` for the body arm, ``False`` for the else arm.
    """

    kind: str
    test: Optional[ast.AST]
    block: int
    branch: bool


@dataclass
class Block:
    """A maximal straight-line run of events."""

    block_id: int
    events: List[Event] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    guards: Tuple[Guard, ...] = ()
    loop_depth: int = 0


@dataclass
class Cfg:
    """The control-flow graph of one function body."""

    func: FunctionNode
    blocks: Dict[int, Block]
    entry: int
    exit: int

    def preds(self) -> Dict[int, List[int]]:
        """Predecessor lists, computed from successor edges."""
        out: Dict[int, List[int]] = {b: [] for b in self.blocks}
        for block in self.blocks.values():
            for succ in block.succs:
                out[succ].append(block.block_id)
        return out

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry block."""
        seen = set()
        order: List[int] = []

        def visit(block_id: int) -> None:
            # Iterative DFS: deep fixture functions must not hit the
            # interpreter recursion limit.
            stack: List[Tuple[int, int]] = [(block_id, 0)]
            seen.add(block_id)
            while stack:
                current, idx = stack.pop()
                succs = self.blocks[current].succs
                if idx < len(succs):
                    stack.append((current, idx + 1))
                    nxt = succs[idx]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        visit(self.entry)
        order.reverse()
        return order


class _LoopContext:
    """Break/continue targets for the innermost enclosing loop."""

    def __init__(self, continue_target: int, after_target: int):
        self.continue_target = continue_target
        self.after_target = after_target


class _Builder:
    """Recursive-descent CFG construction."""

    def __init__(self, func: FunctionNode):
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.entry = self._new_block((), 0)
        self.exit = self._new_block((), 0)
        self._loops: List[_LoopContext] = []

    # -- plumbing -----------------------------------------------------

    def _new_block(
        self, guards: Tuple[Guard, ...], loop_depth: int
    ) -> int:
        block_id = self._next_id
        self._next_id += 1
        self.blocks[block_id] = Block(
            block_id=block_id, guards=guards, loop_depth=loop_depth
        )
        return block_id

    def _edge(self, src: int, dst: int) -> None:
        succs = self.blocks[src].succs
        if dst not in succs:
            succs.append(dst)

    def _emit(self, block_id: int, kind: str, node: ast.AST) -> None:
        self.blocks[block_id].events.append(Event(kind, node))

    def _fork(self, template: int) -> int:
        """A fresh block inheriting a block's guards and depth."""
        src = self.blocks[template]
        return self._new_block(src.guards, src.loop_depth)

    # -- construction -------------------------------------------------

    def build(self) -> Cfg:
        tail = self.body(self.func.body, self.entry)
        if tail is not None:
            self._edge(tail, self.exit)
        return Cfg(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
        )

    def body(
        self, stmts: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        """Thread ``stmts`` through the graph.

        Returns the fall-through block, or ``None`` when every path
        terminated (return/raise/break/continue).
        """
        for stmt in stmts:
            if current is None:
                break  # unreachable code after a terminator
            current = self.statement(stmt, current)
        return current

    def statement(
        self, stmt: ast.stmt, current: int
    ) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._emit(current, STMT, stmt)
            self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._edge(current, self._loops[-1].after_target)
            else:  # malformed source; keep the graph connected
                self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(current, self._loops[-1].continue_target)
            else:
                self._edge(current, self.exit)
            return None
        # Nested defs/classes run later under unknown control flow;
        # record them as opaque events, do not descend.
        self._emit(current, STMT, stmt)
        return current

    def _if(self, stmt: ast.If, current: int) -> Optional[int]:
        self._emit(current, TEST, stmt.test)
        here = self.blocks[current]
        after = self._fork(current)

        then_guard = Guard("if", stmt.test, current, True)
        then_block = self._new_block(
            here.guards + (then_guard,), here.loop_depth
        )
        self._edge(current, then_block)
        then_tail = self.body(stmt.body, then_block)
        if then_tail is not None:
            self._edge(then_tail, after)

        else_guard = Guard("if", stmt.test, current, False)
        if stmt.orelse:
            else_block = self._new_block(
                here.guards + (else_guard,), here.loop_depth
            )
            self._edge(current, else_block)
            else_tail = self.body(stmt.orelse, else_block)
            if else_tail is not None:
                self._edge(else_tail, after)
        else:
            self._edge(current, after)

        if not self.blocks[after].succs and not any(
            after in b.succs for b in self.blocks.values()
        ):
            return None  # both arms terminated; after is unreachable
        return after

    def _while(self, stmt: ast.While, current: int) -> Optional[int]:
        here = self.blocks[current]
        header = self._fork(current)
        self._edge(current, header)
        self._emit(header, TEST, stmt.test)
        after = self._fork(current)

        body_guard = Guard("while", stmt.test, header, True)
        body_block = self._new_block(
            here.guards + (body_guard,), here.loop_depth + 1
        )
        self._edge(header, body_block)
        self._loops.append(_LoopContext(header, after))
        body_tail = self.body(stmt.body, body_block)
        self._loops.pop()
        if body_tail is not None:
            self._edge(body_tail, header)

        exit_tail: Optional[int] = header
        if stmt.orelse:
            else_block = self._new_block(
                here.guards + (Guard("while", stmt.test, header, False),),
                here.loop_depth,
            )
            self._edge(header, else_block)
            exit_tail = self.body(stmt.orelse, else_block)
        if exit_tail is not None:
            self._edge(exit_tail, after)
        return after

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor], current: int
    ) -> Optional[int]:
        self._emit(current, ITER, stmt.iter)
        here = self.blocks[current]
        header = self._fork(current)
        self._edge(current, header)
        after = self._fork(current)

        body_guard = Guard("for", stmt.iter, header, True)
        body_block = self._new_block(
            here.guards + (body_guard,), here.loop_depth + 1
        )
        # The loop target binds at the head of every iteration.
        self._emit(
            body_block,
            STMT,
            ast.Assign(
                targets=[stmt.target],
                value=stmt.iter,
                lineno=stmt.lineno,
                col_offset=stmt.col_offset,
            ),
        )
        self._edge(header, body_block)
        self._loops.append(_LoopContext(header, after))
        body_tail = self.body(stmt.body, body_block)
        self._loops.pop()
        if body_tail is not None:
            self._edge(body_tail, header)

        exit_tail: Optional[int] = header
        if stmt.orelse:
            else_block = self._new_block(
                here.guards, here.loop_depth
            )
            self._edge(header, else_block)
            exit_tail = self.body(stmt.orelse, else_block)
        if exit_tail is not None:
            self._edge(exit_tail, after)
        return after

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], current: int
    ) -> Optional[int]:
        for item in stmt.items:
            self._emit(current, WITH_ENTER, item.context_expr)
        tail = self.body(stmt.body, current)
        if tail is None:
            return None
        for item in reversed(stmt.items):
            self._emit(tail, WITH_EXIT, item.context_expr)
        return tail

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        here = self.blocks[current]
        after = self._fork(current)

        before_body = set(self.blocks)
        body_entry = self._fork(current)
        self._edge(current, body_entry)
        body_tail = self.body(stmt.body, body_entry)
        body_blocks = [
            b for b in self.blocks if b not in before_body
        ]

        handler_tails: List[Optional[int]] = []
        for handler in stmt.handlers:
            handler_guard = Guard("except", handler.type, current, True)
            handler_block = self._new_block(
                here.guards + (handler_guard,), here.loop_depth
            )
            # An exception can interrupt the body anywhere: the
            # handler joins every partial execution of the body.
            self._edge(current, handler_block)
            for block_id in body_blocks:
                self._edge(block_id, handler_block)
            handler_tails.append(
                self.body(handler.body, handler_block)
            )

        if body_tail is not None and stmt.orelse:
            body_tail = self.body(stmt.orelse, body_tail)

        tails = [t for t in [body_tail, *handler_tails] if t is not None]
        if not tails:
            if stmt.finalbody:
                final_block = self._fork(current)
                # Keep the finally body in the graph (it runs on the
                # exceptional path) even though no tail reaches it.
                self._edge(current, final_block)
                final_tail = self.body(stmt.finalbody, final_block)
                if final_tail is not None:
                    self._edge(final_tail, self.exit)
            return None
        join = self._fork(current)
        for tail in tails:
            self._edge(tail, join)
        if stmt.finalbody:
            return self.body(stmt.finalbody, join)
        return join


def build_cfg(func: FunctionNode) -> Cfg:
    """Build the control-flow graph of one function body."""
    return _Builder(func).build()


def function_nodes(tree: ast.AST) -> List[FunctionNode]:
    """Every function/method definition in a module, outermost first."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
