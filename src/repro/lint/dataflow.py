"""A small forward abstract-interpretation framework.

Checkers plug a lattice into :class:`ForwardAnalysis` — an abstract
state type, a transfer function over CFG events, and a join — and
:func:`run_forward` iterates to a fixpoint over the block graph with
a reverse-postorder worklist. The framework is deliberately minimal:
all the lattices the rule families use are finite-height (unit maps
over finitely many locals, lock sets, taint sets), so plain chaotic
iteration converges; ``max_visits`` is a safety valve, not a widening
operator.

After the fixpoint, checkers typically replay each block's events
once more from its entry state (:func:`replay`) to emit findings at
exact event positions.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, TypeVar

from repro.lint.cfg import Block, Cfg, Event

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """One dataflow problem: initial state, transfer, join."""

    def initial(self) -> S:
        """State at the function entry."""
        raise NotImplementedError

    def transfer(self, state: S, event: Event) -> S:
        """State after one event. Must not mutate ``state``."""
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        """Least upper bound of two states at a merge point."""
        raise NotImplementedError

    def equals(self, left: S, right: S) -> bool:
        """Convergence test; default is structural equality."""
        return bool(left == right)

    # -- derived ------------------------------------------------------

    def transfer_block(self, state: S, block: Block) -> S:
        """Fold :meth:`transfer` over a whole block."""
        for event in block.events:
            state = self.transfer(state, event)
        return state


def run_forward(
    cfg: Cfg,
    analysis: ForwardAnalysis[S],
    max_visits_per_block: int = 64,
) -> Dict[int, S]:
    """Fixpoint entry states for every reachable block.

    Returns a mapping block id -> abstract state at block *entry*.
    Unreachable blocks are absent. ``max_visits_per_block`` bounds
    total work on pathological graphs; hitting it leaves a sound
    over-approximation unfinished, which for our error-reporting
    rules means at worst a missed finding, never a crash.
    """
    order = cfg.rpo()
    position = {block_id: i for i, block_id in enumerate(order)}
    entry_states: Dict[int, S] = {cfg.entry: analysis.initial()}
    pending = list(order)
    visits: Dict[int, int] = {}
    budget = max_visits_per_block * max(len(order), 1)

    while pending and budget > 0:
        budget -= 1
        block_id = pending.pop(0)
        if block_id not in entry_states:
            continue
        visits[block_id] = visits.get(block_id, 0) + 1
        if visits[block_id] > max_visits_per_block:
            continue
        block = cfg.blocks[block_id]
        out_state = analysis.transfer_block(
            entry_states[block_id], block
        )
        for succ in block.succs:
            if succ not in entry_states:
                entry_states[succ] = out_state
                changed = True
            else:
                joined = analysis.join(entry_states[succ], out_state)
                changed = not analysis.equals(
                    joined, entry_states[succ]
                )
                if changed:
                    entry_states[succ] = joined
            if changed and succ not in pending:
                # Keep the worklist roughly in RPO for fast
                # convergence on reducible graphs.
                idx = position.get(succ, len(order))
                inserted = False
                for i, queued in enumerate(pending):
                    if position.get(queued, len(order)) > idx:
                        pending.insert(i, succ)
                        inserted = True
                        break
                if not inserted:
                    pending.append(succ)
    return entry_states


def replay(
    cfg: Cfg,
    analysis: ForwardAnalysis[S],
    entry_states: Dict[int, S],
    visit: Callable[[S, Event, Block], None],
) -> None:
    """Walk every reachable block once, calling ``visit`` per event.

    ``visit`` receives the abstract state *before* the event — the
    standard way to turn fixpoint states into findings at exact
    source positions.
    """
    for block_id, state in entry_states.items():
        block = cfg.blocks[block_id]
        for event in block.events:
            visit(state, event, block)
            state = analysis.transfer(state, event)


def out_states(
    cfg: Cfg,
    analysis: ForwardAnalysis[S],
    entry_states: Dict[int, S],
) -> Dict[int, S]:
    """Exit state of every reachable block, from its entry state."""
    return {
        block_id: analysis.transfer_block(
            state, cfg.blocks[block_id]
        )
        for block_id, state in entry_states.items()
    }


def reachable_events(cfg: Cfg) -> List[Event]:
    """All events of reachable blocks, for structural scans."""
    seen = set()
    out: List[Event] = []
    stack = [cfg.entry]
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        block = cfg.blocks[block_id]
        out.extend(block.events)
        stack.extend(block.succs)
    return out
