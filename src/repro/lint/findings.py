"""Rule and finding primitives for the ``repro.lint`` analyzer.

A *rule* is a registered, documented check with a stable identifier
(``RL101``…); a *finding* is one concrete violation of a rule at a
source location. Rules register themselves at import time via
:func:`register_rule`, so the registry is complete as soon as
:mod:`repro.lint.checkers` has been imported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple, Union


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``--fail-on`` can compare them."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"error"``/``"warning"`` (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity: {text!r}") from None


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    name: str
    severity: Severity
    summary: str


#: All registered rules, keyed by rule id. Populated at import time.
REGISTRY: Dict[str, Rule] = {}


def register_rule(
    rule_id: str, name: str, severity: Severity, summary: str
) -> Rule:
    """Register a rule; duplicate ids are a programming error."""
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id: {rule_id}")
    rule = Rule(rule_id, name, severity, summary)
    REGISTRY[rule_id] = rule
    return rule


@dataclass(frozen=True)
class Finding:
    """One concrete rule violation at a source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )


def finding(
    rule: Rule, path: str, line: int, col: int, message: str
) -> Finding:
    """Build a :class:`Finding` carrying its rule's severity."""
    return Finding(
        rule_id=rule.rule_id,
        severity=rule.severity,
        path=path,
        line=line,
        col=col,
        message=message,
    )
