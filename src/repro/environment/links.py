"""Link physics: geometry + obstruction map -> received power.

Two flavours:

- :func:`direct_received_power_dbm` — the deterministic direct-path
  budget used by the cellular RSRP and TV power evaluations (their
  measurements average over seconds, so fast fading washes out; a
  cached per-link shadowing draw is applied by the callers that want
  one).
- :class:`AdsbLinkModel` — the per-squitter stochastic model for
  1090 MHz: direct path with per-aircraft shadowing, a parallel urban
  multipath "leakage" path that occasionally carries strong nearby
  transmissions around obstructions, and per-message Rician fading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.adsb.icao import IcaoAddress
from repro.environment.obstruction import combine_parallel_paths_db
from repro.environment.site import SiteEnvironment
from repro.geo.coords import GeoPoint, geo_to_enu, geo_to_enu_arrays
from repro.rf.fading import rician_fading_db
from repro.rf.pathloss import (
    free_space_path_loss_db,
    free_space_path_loss_db_multifreq,
)
from repro.sdr.antenna import Antenna


@dataclass(frozen=True)
class RayGeometry:
    """Geometry of the straight path from a site to a transmitter."""

    azimuth_deg: float
    elevation_deg: float
    slant_m: float
    ground_m: float


def ray_geometry(site: GeoPoint, tx: GeoPoint) -> RayGeometry:
    """Compute the arrival geometry of a transmitter's signal."""
    enu = geo_to_enu(site, tx)
    return RayGeometry(
        azimuth_deg=enu.azimuth_deg,
        elevation_deg=enu.elevation_deg,
        slant_m=max(enu.slant_m, 1.0),
        ground_m=enu.horizontal_m,
    )


def direct_received_power_dbm(
    env: SiteEnvironment,
    tx_position: GeoPoint,
    tx_eirp_dbm: float,
    freq_hz: float,
    rx_antenna: Antenna,
) -> float:
    """Median direct-path received power at the SDR input.

    EIRP - FSPL - obstruction loss + RX antenna gain toward the
    transmitter.
    """
    geom = ray_geometry(env.position, tx_position)
    path = free_space_path_loss_db(geom.slant_m, freq_hz)
    obstruction = env.obstruction_map.loss_db(
        geom.azimuth_deg, geom.elevation_deg, freq_hz, geom.slant_m
    )
    rx_gain = rx_antenna.gain_at(freq_hz, geom.azimuth_deg)
    return tx_eirp_dbm - path - obstruction + rx_gain


@dataclass(frozen=True)
class RayGeometryArrays:
    """Per-transmitter arrival geometry, one array entry each."""

    azimuth_deg: np.ndarray
    elevation_deg: np.ndarray
    slant_m: np.ndarray
    ground_m: np.ndarray


def ray_geometry_arrays(
    site: GeoPoint, targets: Sequence[GeoPoint]
) -> RayGeometryArrays:
    """Batch :func:`ray_geometry` over many transmitter positions.

    Same projection, clamps, and angle conventions as the scalar path
    (ulp-level libm differences at most).
    """
    lat = np.array([t.lat_deg for t in targets], dtype=np.float64)
    lon = np.array([t.lon_deg for t in targets], dtype=np.float64)
    alt = np.array([t.alt_m for t in targets], dtype=np.float64)
    east, north, up = geo_to_enu_arrays(site, lat, lon, alt)
    ground = np.hypot(east, north)
    slant = np.maximum(
        np.sqrt(east**2 + north**2 + up**2), 1.0
    )
    azimuth = np.degrees(np.arctan2(east, north)) % 360.0
    elevation = np.degrees(np.arctan2(up, ground))
    return RayGeometryArrays(azimuth, elevation, slant, ground)


def direct_received_power_dbm_multifreq(
    env: SiteEnvironment,
    tx_positions: Sequence[GeoPoint],
    tx_eirp_dbm: np.ndarray,
    freq_hz: np.ndarray,
    rx_antenna: Antenna,
) -> np.ndarray:
    """Batch :func:`direct_received_power_dbm`, one carrier per element.

    The §3.2 kernel: geometry, FSPL, obstruction loss, and antenna
    gain for every transmitter — each at its own frequency — in one
    array pass. Same term order as the scalar budget.
    """
    geom = ray_geometry_arrays(
        env.position, [p for p in tx_positions]
    )
    path = free_space_path_loss_db_multifreq(geom.slant_m, freq_hz)
    obstruction = env.obstruction_map.loss_db_multifreq(
        geom.azimuth_deg, geom.elevation_deg, freq_hz, geom.slant_m
    )
    rx_gain = rx_antenna.gain_at_multifreq(freq_hz, geom.azimuth_deg)
    return (
        np.asarray(tx_eirp_dbm, dtype=np.float64)
        - path
        - obstruction
        + rx_gain
    )


#: ADS-B downlink carrier.
ADSB_FREQ_HZ = 1090e6


@dataclass
class AdsbLinkModel:
    """Stochastic 1090 MHz link from aircraft to a sensor site.

    Per aircraft, one shadowing draw and one leakage-excess draw are
    cached for the whole capture (the geometry barely changes over
    30 s); per message, Rician fading is drawn on top. The effective
    path is the power-combination of the obstructed direct path and
    the leakage path.

    Attributes:
        env: the site the sensor is installed at.
        rx_antenna: the sensor's antenna.
        rician_k_db: Rician K-factor for fast fading.
        coherence_time_s: fading coherence time. Messages from the
            same aircraft within one coherence block share a fading
            draw — a 30 s capture sees only a handful of independent
            fades per aircraft, not one per squitter, which bounds the
            max-over-messages tail realistically.
    """

    env: SiteEnvironment
    rx_antenna: Antenna
    rician_k_db: float = 9.0
    coherence_time_s: float = 5.0
    _shadow_db: Dict[IcaoAddress, float] = field(default_factory=dict)
    _leak_excess_db: Dict[IcaoAddress, float] = field(default_factory=dict)
    _fade_db: Dict[Tuple[IcaoAddress, int], float] = field(
        default_factory=dict
    )

    def mean_received_power_dbm(
        self,
        icao: IcaoAddress,
        tx_position: GeoPoint,
        tx_power_w: float,
        rng: np.random.Generator,
    ) -> float:
        """Capture-scale mean received power for one aircraft.

        Combines the obstructed direct path (with the aircraft's cached
        shadowing draw) and the leakage path (with its cached excess).
        """
        geom = ray_geometry(self.env.position, tx_position)
        tx_dbm = 10.0 * math.log10(tx_power_w * 1000.0)
        path = free_space_path_loss_db(geom.slant_m, ADSB_FREQ_HZ)
        rx_gain = self.rx_antenna.gain_at(ADSB_FREQ_HZ, geom.azimuth_deg)
        unobstructed_dbm = tx_dbm - path + rx_gain

        obstruction = self.env.obstruction_map.loss_db(
            geom.azimuth_deg,
            geom.elevation_deg,
            ADSB_FREQ_HZ,
            geom.slant_m,
        )
        shadow = self._shadow_db.setdefault(
            icao,
            float(rng.normal(0.0, self.env.shadowing_sigma_db)),
        )
        direct_extra = obstruction - shadow

        leak_excess = self._leak_excess_db.setdefault(
            icao,
            float(rng.normal(0.0, self.env.leakage_sigma_db)),
        )
        leakage_extra = self.env.leakage_base_db + leak_excess

        if obstruction <= 0.5:
            # Clear path: leakage is irrelevant (it is strictly weaker).
            effective_extra = direct_extra
        else:
            effective_extra = combine_parallel_paths_db(
                [max(direct_extra, 0.0), max(leakage_extra, 0.0)]
            )
        return unobstructed_dbm - effective_extra

    def message_received_power_dbm(
        self,
        icao: IcaoAddress,
        tx_position: GeoPoint,
        tx_power_w: float,
        rng: np.random.Generator,
        time_s: Optional[float] = None,
    ) -> float:
        """Received power for one squitter: mean + Rician fading.

        With a ``time_s``, messages inside the same coherence block
        share their fading draw; without one, every call fades
        independently.
        """
        mean = self.mean_received_power_dbm(
            icao, tx_position, tx_power_w, rng
        )
        if time_s is None:
            return mean + rician_fading_db(rng, self.rician_k_db)
        block = int(time_s // self.coherence_time_s)
        key = (icao, block)
        if key not in self._fade_db:
            self._fade_db[key] = rician_fading_db(
                rng, self.rician_k_db
            )
        return mean + self._fade_db[key]

    def reset(self) -> None:
        """Forget cached per-aircraft draws (start a new capture)."""
        self._shadow_db.clear()
        self._leak_excess_db.clear()
        self._fade_db.clear()
