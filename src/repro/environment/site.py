"""A sensor installation site: position, obstructions, channel traits."""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment.obstruction import ObstructionMap
from repro.geo.coords import GeoPoint


@dataclass
class SiteEnvironment:
    """Everything about where a sensor is installed.

    This is simulation ground truth; the calibration pipeline never
    reads it directly — it only sees signals propagated through it.
    The ``installation``/``is_outdoor`` labels exist so experiments can
    score classifier output.

    Attributes:
        name: human-readable site label.
        position: sensor location, altitude included.
        obstruction_map: what blocks the sky here.
        installation: ground-truth class ("rooftop", "window", "indoor").
        is_outdoor: ground-truth outdoor flag.
        leakage_base_db: median extra loss of the urban multipath path
            that lets blocked directions still receive strong, nearby
            1090 MHz transmissions (the paper observes this within
            ~20 km at every location).
        leakage_sigma_db: log-normal spread of the leakage path.
        shadowing_sigma_db: per-link shadowing spread on direct paths.
    """

    name: str
    position: GeoPoint
    obstruction_map: ObstructionMap
    installation: str
    is_outdoor: bool
    leakage_base_db: float = 39.0
    leakage_sigma_db: float = 2.0
    shadowing_sigma_db: float = 2.0

    def __post_init__(self) -> None:
        if self.installation not in ("rooftop", "window", "indoor"):
            raise ValueError(
                f"unknown installation class: {self.installation!r}"
            )
        if self.leakage_base_db < 0.0 or self.leakage_sigma_db < 0.0:
            raise ValueError("leakage parameters must be >= 0")
        if self.shadowing_sigma_db < 0.0:
            raise ValueError("shadowing sigma must be >= 0")
