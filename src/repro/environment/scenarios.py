"""The paper's three-location testbed, as simulation ground truth.

Location ① — rooftop, 6th floor: open field of view to the west
(sector 160°-340°); rooftop structures (two concrete walls' worth,
clearing at 60° elevation) obscure other directions.

Location ② — behind a southeast-facing window, 5th floor: a narrow
120°-160° field of view through glass; the building's own facade
(concrete + low-emissivity glazing) to the southwest, and deep
blockage (reinforced concrete + brick, towering overhead) elsewhere
because of the buildings to the left and right.

Location ③ — inside the building, 5th floor, ≥8 m from windows: no
field of view; high-elevation rays cross the roof slab, low-elevation
rays cross multiple exterior/interior walls.

The five cellular towers (downlinks 731/1970/2145/2660/2680 MHz,
500-1000 m away — Figure 2) and six TV transmitters (213-605 MHz, up
to 50 km) are laid out so each location's link budgets land where the
paper's Figures 3 and 4 put them: every tower decodable from the
rooftop, towers 1-3 only behind the window, tower 1 only indoors, and
the 521 MHz TV tower sitting in the window's field of view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cellular.cellmapper import TowerDatabase
from repro.cellular.tower import CellTower
from repro.environment.obstruction import (
    AmbientLayer,
    Obstruction,
    ObstructionMap,
)
from repro.environment.site import SiteEnvironment
from repro.fm.tower import FmTower
from repro.geo.coords import GeoPoint
from repro.geo.distance import destination_point
from repro.geo.sectors import AzimuthSector
from repro.tv.tower import TvTower

#: The experiment site (Berkeley-like coordinates).
DEFAULT_SITE_LATLON = (37.8715, -122.2730)

#: Rooftop field of view: open to the west.
ROOFTOP_OPEN_SECTOR = AzimuthSector.from_edges(160.0, 340.0)

#: Window field of view: narrow, facing southeast.
WINDOW_OPEN_SECTOR = AzimuthSector.from_edges(120.0, 160.0)

#: Window partially-obstructed facade sector (southwest side).
WINDOW_FACADE_SECTOR = AzimuthSector.from_edges(160.0, 220.0)


def _site_point(alt_m: float) -> GeoPoint:
    lat, lon = DEFAULT_SITE_LATLON
    return GeoPoint(lat, lon, alt_m)


def make_rooftop_site() -> SiteEnvironment:
    """Location ①: rooftop with an open western field of view."""
    blocked = Obstruction(
        sector=AzimuthSector.from_edges(
            ROOFTOP_OPEN_SECTOR.end_deg, ROOFTOP_OPEN_SECTOR.start_deg
        ),
        clear_elevation_deg=75.0,
        materials=("concrete", "concrete"),
        edge_distance_m=4.0,
    )
    return SiteEnvironment(
        name="Location 1 (rooftop)",
        position=_site_point(20.0),
        obstruction_map=ObstructionMap(obstructions=[blocked]),
        installation="rooftop",
        is_outdoor=True,
    )


def make_window_site() -> SiteEnvironment:
    """Location ②: behind a southeast-facing window, narrow FoV."""
    window_glass = Obstruction(
        sector=WINDOW_OPEN_SECTOR,
        clear_elevation_deg=90.0,
        materials=("glass",),
        edge_distance_m=1.0,
    )
    facade = Obstruction(
        sector=WINDOW_FACADE_SECTOR,
        clear_elevation_deg=70.0,
        materials=("concrete", "low_e_glass"),
        edge_distance_m=3.0,
    )
    deep = Obstruction(
        sector=AzimuthSector.from_edges(
            WINDOW_FACADE_SECTOR.end_deg, WINDOW_OPEN_SECTOR.start_deg
        ),
        clear_elevation_deg=80.0,
        materials=("reinforced_concrete", "brick"),
        edge_distance_m=3.0,
    )
    return SiteEnvironment(
        name="Location 2 (behind window)",
        position=_site_point(15.0),
        obstruction_map=ObstructionMap(
            obstructions=[window_glass, facade, deep]
        ),
        installation="window",
        is_outdoor=False,
        shadowing_sigma_db=1.5,
    )


def make_indoor_site() -> SiteEnvironment:
    """Location ③: inside the building, ≥8 m from any window."""
    roof_slab = AmbientLayer(
        min_elevation_deg=30.0,
        max_elevation_deg=90.01,
        materials=("concrete", "brick"),
    )
    walls = AmbientLayer(
        min_elevation_deg=-90.0,
        max_elevation_deg=30.0,
        materials=("concrete", "concrete", "brick"),
    )
    return SiteEnvironment(
        name="Location 3 (indoor)",
        position=_site_point(15.0),
        obstruction_map=ObstructionMap(ambient=[roof_slab, walls]),
        installation="indoor",
        is_outdoor=False,
        shadowing_sigma_db=1.5,
    )


def _tower_point(
    bearing_deg: float, distance_m: float, alt_m: float
) -> GeoPoint:
    return destination_point(
        _site_point(0.0), bearing_deg, distance_m
    ).with_altitude(alt_m)


def standard_cell_towers() -> TowerDatabase:
    """The five towers of Figure 2 (bearing, range, downlink).

    Downlink frequencies follow the paper exactly: 731, 1970, 2145,
    2660 and 2680 MHz; all towers are 500-1000 m from the site.
    """
    db = TowerDatabase()
    db.extend(
        [
            CellTower(
                "Tower 1", 11, _tower_point(240.0, 900.0, 30.0),
                earfcn=5030,  # B12, 731 MHz
            ),
            CellTower(
                "Tower 2", 22, _tower_point(170.0, 500.0, 30.0),
                earfcn=1000,  # B2, 1970 MHz
            ),
            CellTower(
                "Tower 3", 33, _tower_point(200.0, 550.0, 30.0),
                earfcn=2300,  # B4, 2145 MHz
            ),
            CellTower(
                "Tower 4", 44, _tower_point(280.0, 550.0, 30.0),
                earfcn=3150,  # B7, 2660 MHz
            ),
            CellTower(
                "Tower 5", 55, _tower_point(300.0, 1000.0, 30.0),
                earfcn=3350,  # B7, 2680 MHz
            ),
        ]
    )
    return db


def standard_tv_towers() -> List[TvTower]:
    """Six ATSC transmitters matching Figure 4's channel centers.

    The 521 MHz (channel 22) tower sits at bearing 140° — inside the
    window's field of view — producing the paper's "very strong at the
    window" exception; the rest lie to the west in the rooftop's open
    sector.
    """
    return [
        TvTower("K13AA", 13, _tower_point(255.0, 40_000.0, 500.0)),
        TvTower("K14BB", 14, _tower_point(250.0, 30_000.0, 450.0)),
        TvTower("K22CC", 22, _tower_point(140.0, 25_000.0, 300.0)),
        TvTower("K26DD", 26, _tower_point(270.0, 35_000.0, 400.0)),
        TvTower("K33EE", 33, _tower_point(260.0, 45_000.0, 550.0)),
        TvTower("K36FF", 36, _tower_point(245.0, 50_000.0, 500.0)),
    ]


def standard_fm_towers() -> List[FmTower]:
    """Three FM stations extending coverage below 108 MHz (§5).

    Not part of the paper's measured figures — they exercise the
    "additional RF sources" future-work direction.
    """
    return [
        FmTower("KAAA", 205, _tower_point(265.0, 25_000.0, 450.0)),
        FmTower("KBBB", 234, _tower_point(250.0, 35_000.0, 500.0)),
        FmTower("KCCC", 271, _tower_point(150.0, 20_000.0, 350.0)),
    ]


@dataclass
class Testbed:
    """The full experiment world: sites, towers, and traffic center.

    (``__test__ = False`` stops pytest from mistaking the class for a
    test case because of its name.)

    Attributes:
        sites: the three installation environments by class name.
        cell_towers: the Figure 2 tower database.
        tv_towers: the Figure 4 transmitter list.
        center: the site position traffic is generated around.
    """

    __test__ = False

    sites: Dict[str, SiteEnvironment] = field(default_factory=dict)
    cell_towers: TowerDatabase = field(default_factory=TowerDatabase)
    tv_towers: List[TvTower] = field(default_factory=list)
    fm_towers: List[FmTower] = field(default_factory=list)
    center: GeoPoint = field(default_factory=lambda: _site_point(0.0))

    def site(self, installation: str) -> SiteEnvironment:
        """Site by installation class; raises KeyError for unknowns."""
        if installation not in self.sites:
            raise KeyError(
                f"no site {installation!r}; have {sorted(self.sites)}"
            )
        return self.sites[installation]


def standard_testbed() -> Testbed:
    """Build the complete three-location testbed of the paper."""
    return Testbed(
        sites={
            "rooftop": make_rooftop_site(),
            "window": make_window_site(),
            "indoor": make_indoor_site(),
        },
        cell_towers=standard_cell_towers(),
        tv_towers=standard_tv_towers(),
        fm_towers=standard_fm_towers(),
        center=_site_point(0.0),
    )
