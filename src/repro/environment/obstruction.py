"""Obstruction maps: what blocks the sky around a sensor.

An obstruction is an azimuth sector with a wall-material stack and a
"clear elevation" above which rays pass freely (the top of a building
or rooftop structure). A ray through an obstructed sector suffers the
smaller of (a) the through-the-walls penetration loss and (b) the
knife-edge diffraction loss over the top — the two parallel physical
paths — combined as powers. Ambient layers add elevation-dependent
losses that apply at every azimuth (the ceiling and interior walls of
a fully indoor site).

This is the ground truth the calibration techniques try to recover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.geo.sectors import AzimuthSector
from repro.rf.diffraction import (
    fresnel_v,
    fresnel_v_array,
    fresnel_v_multifreq,
    knife_edge_loss_db,
    knife_edge_loss_db_array,
)
from repro.rf.penetration import material_loss_db, material_loss_db_array


def combine_parallel_paths_db(losses_db: Sequence[float]) -> float:
    """Combine alternative propagation paths (power sum of each).

    The effective loss of several parallel paths is dominated by the
    weakest-loss path; this soft-min is the dB form of summing the
    path powers.
    """
    if not losses_db:
        raise ValueError("need at least one path")
    total_power = sum(10.0 ** (-loss / 10.0) for loss in losses_db)
    return -10.0 * math.log10(total_power)


def stack_loss_db(materials: Sequence[str], freq_hz: float) -> float:
    """Total penetration loss of a wall-material stack."""
    return sum(material_loss_db(m, freq_hz) for m in materials)


def stack_loss_db_array(
    materials: Sequence[str], freq_hz: np.ndarray
) -> np.ndarray:
    """Batch :func:`stack_loss_db` over a frequency array."""
    total = np.zeros(
        np.asarray(freq_hz, dtype=np.float64).shape, dtype=np.float64
    )
    for m in materials:
        total += material_loss_db_array(m, freq_hz)
    return total


@dataclass(frozen=True)
class Obstruction:
    """A blocking structure occupying an azimuth sector.

    Attributes:
        sector: bearings the structure occupies.
        clear_elevation_deg: rays arriving above this elevation clear
            the structure entirely.
        materials: wall stack a through-going ray must penetrate.
        edge_distance_m: distance from the sensor to the structure's
            top edge, controlling diffraction geometry.
        extra_loss_db: additional fixed loss (clutter, cables, ...).
    """

    sector: AzimuthSector
    clear_elevation_deg: float
    materials: Tuple[str, ...]
    edge_distance_m: float = 5.0
    extra_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.clear_elevation_deg <= 90.0:
            raise ValueError(
                f"clear elevation out of range: {self.clear_elevation_deg}"
            )
        if self.edge_distance_m <= 0.0:
            raise ValueError(
                f"edge distance must be positive: {self.edge_distance_m}"
            )
        if self.extra_loss_db < 0.0:
            raise ValueError(
                f"extra loss must be >= 0: {self.extra_loss_db}"
            )

    def loss_db(
        self,
        azimuth_deg: float,
        elevation_deg: float,
        freq_hz: float,
        tx_distance_m: float,
    ) -> float:
        """Loss this obstruction adds to a ray, in dB (0 if cleared)."""
        if not self.sector.contains(azimuth_deg):
            return 0.0
        if elevation_deg >= self.clear_elevation_deg:
            return 0.0
        through = (
            stack_loss_db(self.materials, freq_hz) + self.extra_loss_db
        )
        over_top = self._diffraction_db(
            elevation_deg, freq_hz, tx_distance_m
        )
        return combine_parallel_paths_db([through, over_top])

    def _diffraction_db(
        self, elevation_deg: float, freq_hz: float, tx_distance_m: float
    ) -> float:
        """Knife-edge loss for the path over the structure's top."""
        # Height of the edge above the direct ray at the edge's range.
        clear = math.radians(min(self.clear_elevation_deg, 89.0))
        ray = math.radians(max(min(elevation_deg, 89.0), -89.0))
        h = self.edge_distance_m * (math.tan(clear) - math.tan(ray))
        d2 = max(tx_distance_m - self.edge_distance_m, 1.0)
        v = fresnel_v(h, self.edge_distance_m, d2, freq_hz)
        return knife_edge_loss_db(v)

    def loss_db_array(
        self,
        azimuth_deg: np.ndarray,
        elevation_deg: np.ndarray,
        freq_hz: float,
        tx_distance_m: np.ndarray,
    ) -> np.ndarray:
        """Batch :meth:`loss_db` over ray arrays (same values).

        The through/over-top combination is evaluated for every ray
        and masked to zero where the ray clears the structure — the
        same result the scalar early-returns produce.
        """
        el = np.asarray(elevation_deg, dtype=np.float64)
        blocked = self.sector.contains_array(azimuth_deg) & (
            el < self.clear_elevation_deg
        )
        through = (
            stack_loss_db(self.materials, freq_hz) + self.extra_loss_db
        )
        clear = math.radians(min(self.clear_elevation_deg, 89.0))
        ray = np.radians(np.clip(el, -89.0, 89.0))
        h = self.edge_distance_m * (math.tan(clear) - np.tan(ray))
        d2 = np.maximum(
            np.asarray(tx_distance_m, dtype=np.float64)
            - self.edge_distance_m,
            1.0,
        )
        v = fresnel_v_array(h, self.edge_distance_m, d2, freq_hz)
        over_top = knife_edge_loss_db_array(v)
        combined = -10.0 * np.log10(
            10.0 ** (-through / 10.0) + 10.0 ** (-over_top / 10.0)
        )
        return np.where(blocked, combined, 0.0)

    def loss_db_multifreq(
        self,
        azimuth_deg: np.ndarray,
        elevation_deg: np.ndarray,
        freq_hz: np.ndarray,
        tx_distance_m: np.ndarray,
    ) -> np.ndarray:
        """:meth:`loss_db_array` with a per-element carrier frequency.

        The §3.2 batch kernels push every tower through the map at its
        own carrier in one pass; the through-wall stack and the
        diffraction wavelength become per-element.
        """
        el = np.asarray(elevation_deg, dtype=np.float64)
        blocked = self.sector.contains_array(azimuth_deg) & (
            el < self.clear_elevation_deg
        )
        through = (
            stack_loss_db_array(self.materials, freq_hz)
            + self.extra_loss_db
        )
        clear = math.radians(min(self.clear_elevation_deg, 89.0))
        ray = np.radians(np.clip(el, -89.0, 89.0))
        h = self.edge_distance_m * (math.tan(clear) - np.tan(ray))
        d2 = np.maximum(
            np.asarray(tx_distance_m, dtype=np.float64)
            - self.edge_distance_m,
            1.0,
        )
        v = fresnel_v_multifreq(h, self.edge_distance_m, d2, freq_hz)
        over_top = knife_edge_loss_db_array(v)
        combined = -10.0 * np.log10(
            10.0 ** (-through / 10.0) + 10.0 ** (-over_top / 10.0)
        )
        return np.where(blocked, combined, 0.0)


@dataclass(frozen=True)
class AmbientLayer:
    """An omnidirectional loss layer over an elevation band.

    Used for fully-enclosed sites: e.g. the ceiling (high elevations)
    and the many interior/exterior walls (low elevations) of an indoor
    installation 8 m from the nearest window.
    """

    min_elevation_deg: float
    max_elevation_deg: float
    materials: Tuple[str, ...]
    extra_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.min_elevation_deg >= self.max_elevation_deg:
            raise ValueError(
                "ambient layer needs min_elevation < max_elevation"
            )

    def loss_db(self, elevation_deg: float, freq_hz: float) -> float:
        """Loss for a ray at ``elevation_deg`` (0 outside the band)."""
        if not (
            self.min_elevation_deg
            <= elevation_deg
            < self.max_elevation_deg
        ):
            return 0.0
        return stack_loss_db(self.materials, freq_hz) + self.extra_loss_db

    def loss_db_array(
        self, elevation_deg: np.ndarray, freq_hz: float
    ) -> np.ndarray:
        """Batch :meth:`loss_db` over an elevation array."""
        el = np.asarray(elevation_deg, dtype=np.float64)
        in_band = (self.min_elevation_deg <= el) & (
            el < self.max_elevation_deg
        )
        loss = stack_loss_db(self.materials, freq_hz) + self.extra_loss_db
        return np.where(in_band, loss, 0.0)

    def loss_db_multifreq(
        self, elevation_deg: np.ndarray, freq_hz: np.ndarray
    ) -> np.ndarray:
        """:meth:`loss_db_array` with a per-element carrier frequency."""
        el = np.asarray(elevation_deg, dtype=np.float64)
        in_band = (self.min_elevation_deg <= el) & (
            el < self.max_elevation_deg
        )
        loss = (
            stack_loss_db_array(self.materials, freq_hz)
            + self.extra_loss_db
        )
        return np.where(in_band, loss, 0.0)


@dataclass
class ObstructionMap:
    """The complete obstruction picture around one sensor.

    Attributes:
        obstructions: sectoral blocking structures.
        ambient: elevation-layered omnidirectional losses.
    """

    obstructions: List[Obstruction] = field(default_factory=list)
    ambient: List[AmbientLayer] = field(default_factory=list)

    def loss_db(
        self,
        azimuth_deg: float,
        elevation_deg: float,
        freq_hz: float,
        tx_distance_m: float,
    ) -> float:
        """Total obstruction loss for a ray, in dB."""
        total = 0.0
        for obs in self.obstructions:
            total += obs.loss_db(
                azimuth_deg, elevation_deg, freq_hz, tx_distance_m
            )
        for layer in self.ambient:
            total += layer.loss_db(elevation_deg, freq_hz)
        return total

    def loss_db_array(
        self,
        azimuth_deg: np.ndarray,
        elevation_deg: np.ndarray,
        freq_hz: float,
        tx_distance_m: np.ndarray,
    ) -> np.ndarray:
        """Batch :meth:`loss_db` over ray arrays.

        Per-element accumulation runs in the same structure/layer order
        as the scalar sum, so the totals agree term for term.
        """
        total = np.zeros(
            np.asarray(elevation_deg, dtype=np.float64).shape,
            dtype=np.float64,
        )
        for obs in self.obstructions:
            total += obs.loss_db_array(
                azimuth_deg, elevation_deg, freq_hz, tx_distance_m
            )
        for layer in self.ambient:
            total += layer.loss_db_array(elevation_deg, freq_hz)
        return total

    def loss_db_multifreq(
        self,
        azimuth_deg: np.ndarray,
        elevation_deg: np.ndarray,
        freq_hz: np.ndarray,
        tx_distance_m: np.ndarray,
    ) -> np.ndarray:
        """:meth:`loss_db_array` with a per-element carrier frequency.

        Accumulates in the same structure/layer order as the scalar
        sum, so per-tower totals agree term for term.
        """
        total = np.zeros(
            np.asarray(elevation_deg, dtype=np.float64).shape,
            dtype=np.float64,
        )
        for obs in self.obstructions:
            total += obs.loss_db_multifreq(
                azimuth_deg, elevation_deg, freq_hz, tx_distance_m
            )
        for layer in self.ambient:
            total += layer.loss_db_multifreq(elevation_deg, freq_hz)
        return total

    def is_clear(
        self,
        azimuth_deg: float,
        elevation_deg: float,
        threshold_db: float = 3.0,
        freq_hz: float = 1090e6,
        tx_distance_m: float = 50_000.0,
    ) -> bool:
        """Whether a direction is effectively unobstructed.

        Used as ground truth when scoring field-of-view estimators: a
        direction is "clear" when the obstruction loss at the probe
        frequency stays under ``threshold_db``.
        """
        loss = self.loss_db(
            azimuth_deg, elevation_deg, freq_hz, tx_distance_m
        )
        return loss < threshold_db

    def clear_sectors(
        self,
        elevation_deg: float = 5.0,
        resolution_deg: float = 1.0,
        threshold_db: float = 3.0,
    ) -> List[AzimuthSector]:
        """Ground-truth open sectors at a probe elevation."""
        if resolution_deg <= 0.0:
            raise ValueError(
                f"resolution must be positive: {resolution_deg}"
            )
        from repro.engines.pathcache import get_path_cache

        # A pure function of the map's content and the probe — and
        # shared by every node installed at the same site — so the
        # 360-bin sweep runs once per distinct map per campaign.
        sectors = get_path_cache().get_or_compute(
            (
                "clear_sectors",
                self,
                elevation_deg,
                resolution_deg,
                threshold_db,
            ),
            lambda: tuple(
                self._clear_sectors_compute(
                    elevation_deg, resolution_deg, threshold_db
                )
            ),
        )
        return list(sectors)

    def _clear_sectors_compute(
        self,
        elevation_deg: float,
        resolution_deg: float,
        threshold_db: float,
    ) -> List[AzimuthSector]:
        n = int(round(360.0 / resolution_deg))
        flags = [
            self.is_clear(i * resolution_deg, elevation_deg, threshold_db)
            for i in range(n)
        ]
        return flags_to_sectors(flags, resolution_deg)


def flags_to_sectors(
    flags: List[bool], resolution_deg: float
) -> List[AzimuthSector]:
    """Convert a per-bin open/closed ring into wrapped sectors."""
    n = len(flags)
    if not any(flags):
        return []
    if all(flags):
        return [AzimuthSector(0.0, 360.0)]
    # Find runs of True, treating the ring as circular.
    sectors: List[AzimuthSector] = []
    # Start scanning from a False bin so wrap-around runs stay whole.
    start = flags.index(False)
    i = 0
    while i < n:
        idx = (start + i) % n
        if flags[idx]:
            run = 0
            while i < n and flags[(start + i) % n]:
                run += 1
                i += 1
            sectors.append(
                AzimuthSector(
                    ((start + i - run) % n) * resolution_deg,
                    run * resolution_deg,
                )
            )
        else:
            i += 1
    return sectors
