"""Environment substrate: obstructions, link physics, and scenarios.

This package is the "world" the simulated sensors live in. An
:class:`ObstructionMap` describes what blocks the sky around a sensor
(azimuth sectors with wall-material stacks and knife edges, plus
elevation-layered ambient losses for fully-indoor sites); link helpers
turn transmitter/receiver geometry into received power through that
map; and :mod:`repro.environment.scenarios` builds the paper's
three-location testbed with its five cellular towers and six TV
channels.
"""

from repro.environment.obstruction import (
    AmbientLayer,
    Obstruction,
    ObstructionMap,
)
from repro.environment.links import (
    RayGeometry,
    ray_geometry,
    direct_received_power_dbm,
    AdsbLinkModel,
)
from repro.environment.site import SiteEnvironment
from repro.environment.scenarios import (
    Testbed,
    standard_testbed,
    make_rooftop_site,
    make_window_site,
    make_indoor_site,
    DEFAULT_SITE_LATLON,
)

__all__ = [
    "AmbientLayer",
    "Obstruction",
    "ObstructionMap",
    "RayGeometry",
    "ray_geometry",
    "direct_received_power_dbm",
    "AdsbLinkModel",
    "SiteEnvironment",
    "Testbed",
    "standard_testbed",
    "make_rooftop_site",
    "make_window_site",
    "make_indoor_site",
    "DEFAULT_SITE_LATLON",
]
