"""Aircraft transponder behaviour.

Airborne aircraft broadcast position and velocity squitters at least
twice per second and identification every ~5 s (DO-260B). Transmit
power is 75-500 W depending on transponder class — which is why the
paper treats raw RSSI as weak evidence and relies on binary
received/missed instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.adsb.icao import IcaoAddress
from repro.adsb.messages import (
    AdsbFrame,
    build_acquisition_squitter,
    build_airborne_position,
    build_airborne_velocity,
    build_identification,
)

#: DO-260B squitter rates (seconds between transmissions).
POSITION_INTERVAL_S = 0.5
VELOCITY_INTERVAL_S = 0.5
IDENT_INTERVAL_S = 5.0
#: DF11 acquisition squitters are emitted about once per second.
ACQUISITION_INTERVAL_S = 1.0

#: Transponder output power range per RTCA SC-186 (75-500 W).
MIN_TX_POWER_W = 75.0
MAX_TX_POWER_W = 500.0


@dataclass(frozen=True)
class SquitterEvent:
    """One transmitted squitter: the frame plus physical metadata.

    Attributes:
        time_s: transmission time.
        frame: the 112-bit DF17 frame.
        tx_power_w: transponder output power in watts.
        lat_deg / lon_deg / alt_m: true transmitter position, kept for
            channel computation (never given to the decoder).
    """

    time_s: float
    frame: AdsbFrame
    tx_power_w: float
    lat_deg: float
    lon_deg: float
    alt_m: float


@dataclass
class Transponder:
    """Per-aircraft squitter scheduler.

    Attributes:
        icao: the aircraft's address.
        callsign: flight identification string.
        tx_power_w: output power, fixed per aircraft (drawn once from
            the 75-500 W class range at construction time).
        jitter_s: uniform transmission-time jitter amplitude.
    """

    icao: IcaoAddress
    callsign: str
    tx_power_w: float
    jitter_s: float = 0.05
    _odd_next: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not MIN_TX_POWER_W <= self.tx_power_w <= MAX_TX_POWER_W:
            raise ValueError(
                f"transponder power outside 75-500 W: {self.tx_power_w}"
            )

    @classmethod
    def with_random_power(
        cls,
        icao: IcaoAddress,
        callsign: str,
        rng: np.random.Generator,
    ) -> "Transponder":
        """Build a transponder with class-range random output power."""
        power = float(rng.uniform(MIN_TX_POWER_W, MAX_TX_POWER_W))
        return cls(icao=icao, callsign=callsign, tx_power_w=power)

    def squitters_between(
        self,
        t0_s: float,
        t1_s: float,
        position_at,
        rng: np.random.Generator,
    ) -> List[SquitterEvent]:
        """All squitters emitted in [t0, t1).

        ``position_at(t)`` must return (lat_deg, lon_deg, alt_m,
        east_kt, north_kt) for the aircraft at time ``t``.
        """
        if t1_s < t0_s:
            raise ValueError(f"bad interval [{t0_s}, {t1_s})")
        events: List[SquitterEvent] = []
        events.extend(
            self._periodic(
                t0_s, t1_s, POSITION_INTERVAL_S, "position",
                position_at, rng,
            )
        )
        events.extend(
            self._periodic(
                t0_s, t1_s, VELOCITY_INTERVAL_S, "velocity",
                position_at, rng,
            )
        )
        events.extend(
            self._periodic(
                t0_s, t1_s, IDENT_INTERVAL_S, "identification",
                position_at, rng,
            )
        )
        events.extend(
            self._periodic(
                t0_s, t1_s, ACQUISITION_INTERVAL_S, "acquisition",
                position_at, rng,
            )
        )
        events.sort(key=lambda e: e.time_s)
        return events

    def schedule_times(
        self,
        t0_s: float,
        t1_s: float,
        interval_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Jittered transmission times for one squitter kind, batched.

        Produces exactly the times :meth:`_periodic` would, drawing
        the per-event jitter as ONE ``rng.uniform`` call — numpy
        Generators fill batched draws in sequence order, so a batch of
        n draws consumes the bit stream identically to n scalar draws
        (the draw-order discipline; see docs/performance.md).
        """
        if t1_s < t0_s:
            raise ValueError(f"bad interval [{t0_s}, {t1_s})")
        phase = (self.icao.value % 997) / 997.0 * interval_s
        k0 = int(np.ceil((t0_s - phase) / interval_s))
        n_max = max(
            0, int(np.ceil((t1_s - phase) / interval_s)) - k0 + 2
        )
        ks = k0 + np.arange(n_max, dtype=np.float64)
        ts = phase + ks * interval_s
        ts = ts[ts < t1_s]
        if ts.size == 0:
            return ts
        u = rng.uniform(-self.jitter_s, self.jitter_s, size=ts.size)
        jittered = np.minimum(np.maximum(ts + u, t0_s), t1_s - 1e-9)
        return jittered

    def _periodic(
        self,
        t0_s: float,
        t1_s: float,
        interval_s: float,
        kind: str,
        position_at,
        rng: np.random.Generator,
    ) -> List[SquitterEvent]:
        events: List[SquitterEvent] = []
        # Phase-offset each aircraft's schedule by its address so a
        # population does not transmit in lockstep.
        phase = (self.icao.value % 997) / 997.0 * interval_s
        k = int(np.ceil((t0_s - phase) / interval_s))
        while True:
            t = phase + k * interval_s
            if t >= t1_s:
                break
            t_jittered = t + float(
                rng.uniform(-self.jitter_s, self.jitter_s)
            )
            t_jittered = min(max(t_jittered, t0_s), t1_s - 1e-9)
            lat, lon, alt_m, east_kt, north_kt = position_at(t_jittered)
            frame = self._build(kind, lat, lon, alt_m, east_kt, north_kt)
            events.append(
                SquitterEvent(
                    time_s=t_jittered,
                    frame=frame,
                    tx_power_w=self.tx_power_w,
                    lat_deg=lat,
                    lon_deg=lon,
                    alt_m=alt_m,
                )
            )
            k += 1
        return events

    def _build(
        self,
        kind: str,
        lat: float,
        lon: float,
        alt_m: float,
        east_kt: float,
        north_kt: float,
    ) -> AdsbFrame:
        if kind == "position":
            frame = build_airborne_position(
                self.icao, lat, lon, alt_m / 0.3048, odd=self._odd_next
            )
            self._odd_next = not self._odd_next
            return frame
        if kind == "velocity":
            return build_airborne_velocity(self.icao, east_kt, north_kt)
        if kind == "identification":
            return build_identification(self.icao, self.callsign)
        if kind == "acquisition":
            return build_acquisition_squitter(self.icao)
        raise ValueError(f"unknown squitter kind: {kind}")
