"""Mode S pulse-position modulation (PPM) modem at 2 Msamples/s.

The 1090 MHz downlink sends an 8 µs preamble (pulses at 0, 1, 3.5 and
4.5 µs) followed by 112 data bits at 1 Mbit/s, each bit a pulse in the
first (bit 1) or second (bit 0) half of its microsecond. dump1090
samples the envelope at 2 MHz — exactly two samples per half-bit slot —
and that is the rate this modem uses.

The hot paths here are numpy batch kernels: preamble detection
evaluates every window of the magnitude buffer with shifted-view
min/max reductions instead of a per-sample ``while`` loop, bit slicing
compares half-bit slots via one reshape, and the bit/byte converters
ride on :func:`np.unpackbits` / :func:`np.packbits`. The original
interpreter-style implementation survives in
:mod:`repro.adsb.modem_ref` as the oracle for the equivalence suite;
the two must produce identical detections, bits and RSSI on any
magnitude buffer.

``detect_preambles`` scans up to the last index where a full preamble
window fits (``n - PREAMBLE_SAMPLES``). Historically it stopped a full
short frame early (``n - SHORT_FRAME_SAMPLES``), silently hiding
buffer-tail candidates from streaming callers; the equivalence suite
surfaced the gap and both implementations now agree on the fixed
behaviour (decoded output is unchanged — frames that do not fully fit
still fail ``slice_bits``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adsb.messages import (
    DF11_BITS,
    DF11_BYTES,
    DF17_BITS,
    DF17_BYTES,
)

#: Envelope sample rate used by dump1090 and this modem.
SAMPLE_RATE_HZ = 2_000_000

#: Preamble length: 8 us at 2 Msps.
PREAMBLE_SAMPLES = 16

#: Long-message length: 112 bits x 2 samples per bit.
MESSAGE_SAMPLES = DF17_BITS * 2

#: Total long-frame length in samples.
FRAME_SAMPLES = PREAMBLE_SAMPLES + MESSAGE_SAMPLES

#: Short (56-bit) frame length in samples.
SHORT_MESSAGE_SAMPLES = DF11_BITS * 2
SHORT_FRAME_SAMPLES = PREAMBLE_SAMPLES + SHORT_MESSAGE_SAMPLES

#: Sample indices (within the preamble) that carry a pulse.
PREAMBLE_PULSES = (0, 2, 7, 9)

#: Preamble samples that must be quiet for a detection.
PREAMBLE_QUIET = (1, 3, 4, 5, 6, 8, 10, 11, 12, 13, 14, 15)


def frame_to_bits(frame_bytes: bytes) -> List[int]:
    """Expand frame bytes into a MSB-first bit list."""
    return np.unpackbits(
        np.frombuffer(bytes(frame_bytes), dtype=np.uint8)
    ).tolist()


def bits_to_frame(bits: Sequence[int]) -> bytes:
    """Pack an MSB-first bit list back into bytes."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count not a byte multiple: {len(bits)}")
    if len(bits) == 0:
        return b""
    packed = np.asarray(bits, dtype=np.int64) & 1
    return np.packbits(packed.astype(np.uint8)).tobytes()


def modulate_frame(
    frame_bytes: bytes, amplitude: float = 1.0
) -> np.ndarray:
    """Produce the complex-baseband PPM waveform of one frame.

    Accepts long (14-byte DF17) and short (7-byte DF11) frames. The
    Mode S pulse train amplitude-modulates the 1090 MHz carrier; at
    complex baseband that is a real, non-negative envelope.
    """
    if len(frame_bytes) not in (DF11_BYTES, DF17_BYTES):
        raise ValueError(
            f"expected {DF11_BYTES}- or {DF17_BYTES}-byte frame, "
            f"got {len(frame_bytes)}"
        )
    if amplitude <= 0.0:
        raise ValueError(f"amplitude must be positive: {amplitude}")
    n_bits = 8 * len(frame_bytes)
    n_samples = PREAMBLE_SAMPLES + 2 * n_bits
    envelope = np.zeros(n_samples, dtype=np.float64)
    envelope[list(PREAMBLE_PULSES)] = 1.0
    bits = np.unpackbits(np.frombuffer(bytes(frame_bytes), dtype=np.uint8))
    # Bit 1 pulses the first half-slot, bit 0 the second.
    offsets = PREAMBLE_SAMPLES + 2 * np.arange(n_bits) + (1 - bits)
    envelope[offsets] = 1.0
    return (amplitude * envelope).astype(np.complex128)


@dataclass
class PpmDemodulator:
    """Preamble-correlating PPM demodulator (dump1090's strategy).

    Attributes:
        preamble_snr_ratio: how much stronger (linear magnitude) the
            preamble pulses must be than the quiet slots to declare a
            detection; dump1090 uses a comparable heuristic.
    """

    preamble_snr_ratio: float = 2.0

    def detect_preambles(self, magnitude: np.ndarray) -> List[int]:
        """Candidate frame start indices in an envelope-magnitude array.

        Skips past each detection by a short-frame length; the caller
        decides the actual message length from the DF bits. The window
        test runs as one vectorized pass (per-offset min over pulse
        slots vs max over quiet slots); only the sparse surviving
        candidates go through the sequential skip rule.
        """
        m = np.asarray(magnitude, dtype=np.float64)
        n = m.shape[0]
        if n < PREAMBLE_SAMPLES:
            return []
        n_windows = n - PREAMBLE_SAMPLES + 1
        lo_pulse = m[: n_windows].copy()
        for k in PREAMBLE_PULSES[1:]:
            np.minimum(lo_pulse, m[k : k + n_windows], out=lo_pulse)
        k0 = PREAMBLE_QUIET[0]
        hi_quiet = m[k0 : k0 + n_windows].copy()
        for k in PREAMBLE_QUIET[1:]:
            np.maximum(hi_quiet, m[k : k + n_windows], out=hi_quiet)
        valid = (lo_pulse > 0.0) & (
            lo_pulse > self.preamble_snr_ratio * hi_quiet
        )
        starts: List[int] = []
        next_free = 0
        for idx in np.flatnonzero(valid):
            i = int(idx)
            if i >= next_free:
                starts.append(i)
                # Skip ahead past this frame; overlapping Mode S frames
                # garble each other in reality too.
                next_free = i + SHORT_FRAME_SAMPLES
        return starts

    def slice_bits(
        self, magnitude: np.ndarray, start: int, n_bits: int = DF17_BITS
    ) -> Optional[List[int]]:
        """Slice ``n_bits`` data bits following a preamble at ``start``.

        Each bit compares the energy in its two half-slots; ties (both
        halves equally quiet) fail the slice. The comparison runs over
        all bits at once on a (n_bits, 2) view of the buffer.
        """
        base = start + PREAMBLE_SAMPLES
        if base + 2 * n_bits > len(magnitude):
            return None
        seg = np.asarray(
            magnitude[base : base + 2 * n_bits], dtype=np.float64
        ).reshape(n_bits, 2)
        first = seg[:, 0]
        second = seg[:, 1]
        if np.any(first == second):
            return None
        return (first > second).astype(np.uint8).tolist()

    def demodulate(
        self, samples: np.ndarray
    ) -> List[Tuple[int, bytes, float]]:
        """Find and slice every frame in a block of IQ samples.

        Like dump1090, the downlink format (first 5 bits) selects the
        message length: DF 16 and above are long (112-bit) frames,
        below are short (56-bit). Returns (start_index, frame_bytes,
        rssi_power) triples; CRC validation is the decoder's job.
        """
        magnitude = np.abs(np.asarray(samples))
        results: List[Tuple[int, bytes, float]] = []
        for start in self.detect_preambles(magnitude):
            head = self.slice_bits(magnitude, start, 5)
            if head is None:
                continue
            df = 0
            for bit in head:
                df = (df << 1) | bit
            n_bits = DF17_BITS if df >= 16 else DF11_BITS
            bits = self.slice_bits(magnitude, start, n_bits)
            if bits is None:
                continue
            frame = bits_to_frame(bits)
            frame_samples = PREAMBLE_SAMPLES + 2 * n_bits
            seg = magnitude[start : start + frame_samples]
            # RSSI over pulse samples only (half the slots carry energy).
            rssi = float(np.mean(np.sort(seg)[len(seg) // 2 :] ** 2))
            results.append((start, frame, rssi))
        return results
