"""Mode S CRC-24 parity.

Mode S protects every downlink frame with a 24-bit cyclic redundancy
check using generator polynomial 0x1FFF409. For DF17 extended
squitters the parity field is the CRC of the first 88 bits, so the
remainder over the full 112-bit frame is zero for an intact frame —
which is exactly how dump1090 (and our decoder) validates messages.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: Mode S generator polynomial, 25 bits (implicit leading 1 included).
GENERATOR = 0x1FFF409
_GENERATOR_BITS = 25

# Precompute a byte-wise lookup table for speed: table[b] is the CRC
# state update for feeding one byte into a bitwise long division.
_TABLE: List[int] = []


def _build_table() -> None:
    for byte in range(256):
        crc = byte << 16
        for _ in range(8):
            crc <<= 1
            if crc & 0x1000000:
                crc ^= GENERATOR
        _TABLE.append(crc & 0xFFFFFF)


_build_table()

#: The same table as a numpy array, for the batch kernel.
_TABLE_NP = np.asarray(_TABLE, dtype=np.uint32)


def crc24_matrix(data: np.ndarray) -> np.ndarray:
    """CRC-24 remainder of every row of an (n, k) uint8 matrix.

    Row ``i`` equals ``crc24_bytes(bytes(data[i]))``: the same
    byte-table long division, advanced one column (= one byte of every
    frame) per step instead of one byte of one frame.
    """
    d = np.asarray(data, dtype=np.uint8)
    if d.ndim != 2:
        raise ValueError(f"expected an (n, k) matrix, got shape {d.shape}")
    crc = np.zeros(d.shape[0], dtype=np.uint32)
    for col in range(d.shape[1]):
        idx = ((crc >> 16) ^ d[:, col]) & 0xFF
        crc = ((crc << 8) & 0xFFFFFF) ^ _TABLE_NP[idx]
    return crc


def crc24_bytes(data: bytes) -> int:
    """CRC-24 remainder of a byte string (MSB-first long division)."""
    crc = 0
    for byte in data:
        idx = ((crc >> 16) ^ byte) & 0xFF
        crc = ((crc << 8) & 0xFFFFFF) ^ _TABLE[idx]
    return crc


def crc24(frame: bytes) -> int:
    """CRC-24 syndrome of a full Mode S frame.

    For a frame whose last 3 bytes carry the parity, the syndrome is
    the CRC of the data bits XOR the received parity; zero means the
    frame passed the check.
    """
    if len(frame) < 4:
        raise ValueError(f"frame too short for CRC: {len(frame)} bytes")
    data, parity = frame[:-3], frame[-3:]
    computed = crc24_bytes(data)
    received = int.from_bytes(parity, "big")
    return computed ^ received


def frame_is_valid(frame: bytes) -> bool:
    """Whether a frame's parity checks out (syndrome is zero)."""
    return crc24(frame) == 0


# Syndrome tables for single-bit error correction (dump1090's --fix):
# syndrome -> bit index, one table per frame length in bits.
_SYNDROME_TABLES: dict = {}


def _syndrome_table(n_bits: int) -> dict:
    if n_bits not in _SYNDROME_TABLES:
        table = {}
        zero = bytes(n_bits // 8)
        for bit in range(n_bits):
            frame = bytearray(zero)
            frame[bit // 8] ^= 1 << (7 - bit % 8)
            table[crc24(bytes(frame))] = bit
        _SYNDROME_TABLES[n_bits] = table
    return _SYNDROME_TABLES[n_bits]


#: Pair-syndrome tables for two-bit correction: syndrome -> (i, j).
_PAIR_TABLES: dict = {}


def _pair_table(n_bits: int) -> dict:
    if n_bits not in _PAIR_TABLES:
        single = _syndrome_table(n_bits)
        # Syndromes are linear: syndrome(i, j) = syndrome(i) ^
        # syndrome(j), so build pairs from the single-bit table.
        by_bit = {bit: syn for syn, bit in single.items()}
        table = {}
        bits = sorted(by_bit)
        for a_idx, i in enumerate(bits):
            for j in bits[a_idx + 1 :]:
                table[by_bit[i] ^ by_bit[j]] = (i, j)
        _PAIR_TABLES[n_bits] = table
    return _PAIR_TABLES[n_bits]


def fix_two_bit_errors(frame: bytes) -> Optional[bytes]:
    """Repair up to two flipped bits (dump1090's aggressive mode).

    Tries the single-bit table first, then the two-bit pair table.
    Aggressive fixing raises the risk of "repairing" noise into a
    CRC-valid frame, which is why dump1090 gates it behind
    ``--aggressive``; callers should apply plausibility checks to the
    result.
    """
    single = fix_single_bit_error(frame)
    if single is not None:
        return single
    syndrome = crc24(frame)
    pair = _pair_table(len(frame) * 8).get(syndrome)
    if pair is None:
        return None
    repaired = bytearray(frame)
    for bit in pair:
        repaired[bit // 8] ^= 1 << (7 - bit % 8)
    return bytes(repaired)


def fix_single_bit_error(frame: bytes) -> Optional[bytes]:
    """Repair a frame with exactly one flipped bit (dump1090 --fix).

    The Mode S CRC is linear, so the syndrome of a corrupted frame
    equals the syndrome of the error pattern alone; a lookup table of
    all single-bit syndromes identifies and flips the offending bit.
    Returns the repaired frame, the frame itself when already valid,
    or None when the error is not a single bit flip.
    """
    syndrome = crc24(frame)
    if syndrome == 0:
        return frame
    table = _syndrome_table(len(frame) * 8)
    bit = table.get(syndrome)
    if bit is None:
        return None
    repaired = bytearray(frame)
    repaired[bit // 8] ^= 1 << (7 - bit % 8)
    return bytes(repaired)
