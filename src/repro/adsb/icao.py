"""ICAO 24-bit aircraft addresses.

The paper identifies airplanes by the ICAO address carried in every
ADS-B message and matches it against FlightRadar24's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, order=True)
class IcaoAddress:
    """A 24-bit ICAO aircraft address.

    Attributes:
        value: the address as an integer in [0, 2^24).
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 24):
            raise ValueError(f"ICAO address out of range: {self.value:#x}")

    def __str__(self) -> str:
        return f"{self.value:06X}"

    @classmethod
    def from_hex(cls, text: str) -> "IcaoAddress":
        """Parse a hex string like ``"A1B2C3"``."""
        return cls(int(text, 16))

    def to_bytes(self) -> bytes:
        """Big-endian 3-byte representation (as transmitted)."""
        return self.value.to_bytes(3, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IcaoAddress":
        """Parse the 3 transmitted bytes."""
        if len(raw) != 3:
            raise ValueError(f"ICAO address needs 3 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))


def random_icao(rng: np.random.Generator) -> IcaoAddress:
    """Draw a random, non-zero ICAO address."""
    return IcaoAddress(int(rng.integers(1, 1 << 24)))
