"""ADS-B / Mode S substrate.

A from-scratch implementation of the 1090 MHz Extended Squitter
downlink used by the paper's directional-calibration technique:

- bit-exact DF17 frame construction and parsing (airborne position
  with CPR encoding, airborne velocity, aircraft identification),
- the Mode S CRC-24 parity used to validate frames,
- a pulse-position-modulation (PPM) modem at 2 Msamples/s, and
- a dump1090-style decoder that finds preambles in IQ magnitude data,
  slices bits, checks CRC, and reports RSSI per message.

The directional evaluator consumes decoded messages; the frame path is
exercised for every simulated squitter, and the waveform path is
exercised by tests and the IQ demo example.
"""

from repro.adsb.icao import IcaoAddress, random_icao
from repro.adsb.crc import crc24, crc24_bytes, frame_is_valid
from repro.adsb.cpr import (
    NZ,
    cpr_nl,
    cpr_encode,
    cpr_decode_global,
    cpr_decode_local,
)
from repro.adsb.altitude import (
    decode_ac12,
    encode_ac12_gillham,
    gillham_decode,
    gillham_encode,
)
from repro.adsb.messages import (
    DF11_BITS,
    DF11_BYTES,
    DF17_BITS,
    DF17_BYTES,
    AcquisitionSquitter,
    AdsbFrame,
    AirbornePosition,
    AirborneVelocity,
    Identification,
    build_acquisition_squitter,
    build_airborne_position,
    build_airborne_velocity,
    build_identification,
    parse_frame,
)
from repro.adsb.modem import (
    SAMPLE_RATE_HZ,
    PREAMBLE_SAMPLES,
    modulate_frame,
    PpmDemodulator,
)
from repro.adsb.decoder import DecodedMessage, Dump1090Decoder
from repro.adsb.sbs import SbsRecord, parse_sbs, stream_to_sbs, to_sbs
from repro.adsb.tracks import AircraftTracker, TrackedAircraft
from repro.adsb.transponder import Transponder, SquitterEvent

__all__ = [
    "IcaoAddress",
    "random_icao",
    "crc24",
    "crc24_bytes",
    "frame_is_valid",
    "NZ",
    "cpr_nl",
    "cpr_encode",
    "cpr_decode_global",
    "cpr_decode_local",
    "decode_ac12",
    "encode_ac12_gillham",
    "gillham_decode",
    "gillham_encode",
    "DF11_BITS",
    "DF11_BYTES",
    "DF17_BITS",
    "DF17_BYTES",
    "AcquisitionSquitter",
    "AdsbFrame",
    "AirbornePosition",
    "AirborneVelocity",
    "Identification",
    "build_acquisition_squitter",
    "build_airborne_position",
    "build_airborne_velocity",
    "build_identification",
    "parse_frame",
    "SAMPLE_RATE_HZ",
    "PREAMBLE_SAMPLES",
    "modulate_frame",
    "PpmDemodulator",
    "DecodedMessage",
    "Dump1090Decoder",
    "SbsRecord",
    "parse_sbs",
    "stream_to_sbs",
    "to_sbs",
    "AircraftTracker",
    "TrackedAircraft",
    "Transponder",
    "SquitterEvent",
]
