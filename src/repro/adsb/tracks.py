"""Aircraft track table — dump1090's in-memory aircraft list.

dump1090 maintains one entry per ICAO address seen recently, merging
position, velocity and identification messages into a live picture.
:class:`AircraftTracker` does the same over
:class:`~repro.adsb.decoder.DecodedMessage` streams, and is what a
host process would publish to the cloud (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adsb.decoder import DecodedMessage
from repro.adsb.icao import IcaoAddress
from repro.geo.coords import GeoPoint

#: Tracks idle longer than this are considered stale (dump1090's
#: display TTL).
DEFAULT_TRACK_TTL_S = 60.0


@dataclass
class TrackedAircraft:
    """Live state for one aircraft.

    Attributes:
        icao: the aircraft's address.
        callsign: latest identification, if any was received.
        position: latest resolved position, if any.
        velocity_kt: latest (east, north) velocity, if any.
        first_seen_s / last_seen_s: observation window.
        message_count: total messages merged into the track.
        positions: resolved position history (time, point) pairs.
    """

    icao: IcaoAddress
    callsign: Optional[str] = None
    position: Optional[GeoPoint] = None
    velocity_kt: Optional[Tuple[float, float]] = None
    first_seen_s: float = 0.0
    last_seen_s: float = 0.0
    message_count: int = 0
    rssi_sum_dbfs: float = 0.0
    positions: List[Tuple[float, GeoPoint]] = field(
        default_factory=list
    )

    def mean_rssi_dbfs(self) -> Optional[float]:
        if self.message_count == 0:
            return None
        return self.rssi_sum_dbfs / self.message_count

    def ground_speed_kt(self) -> Optional[float]:
        if self.velocity_kt is None:
            return None
        east, north = self.velocity_kt
        return (east**2 + north**2) ** 0.5


@dataclass
class AircraftTracker:
    """Merges decoded messages into per-aircraft tracks.

    Attributes:
        track_ttl_s: idle time after which a track is dropped by
            :meth:`prune` / excluded by :meth:`active`.
        max_history: cap on stored position history per aircraft.
        auto_prune: prune stale tracks automatically as message time
            advances (every ``track_ttl_s`` of stream time), so a
            long-running feed cannot accumulate dead aircraft without
            anyone remembering to call :meth:`prune`. With it on,
            memory is bounded by the aircraft heard in the last
            ~2x TTL rather than by everything ever seen.
    """

    track_ttl_s: float = DEFAULT_TRACK_TTL_S
    max_history: int = 256
    auto_prune: bool = True
    _tracks: Dict[IcaoAddress, TrackedAircraft] = field(
        default_factory=dict
    )
    _last_prune_s: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.track_ttl_s <= 0.0:
            raise ValueError(
                f"track TTL must be positive: {self.track_ttl_s}"
            )
        if self.max_history < 1:
            raise ValueError(
                f"max_history must be >= 1: {self.max_history}"
            )

    def update(self, message: DecodedMessage) -> TrackedAircraft:
        """Merge one decoded message; returns the updated track."""
        track = self._tracks.get(message.icao)
        if track is None:
            track = TrackedAircraft(
                icao=message.icao,
                first_seen_s=message.time_s,
            )
            self._tracks[message.icao] = track
        track.last_seen_s = max(track.last_seen_s, message.time_s)
        track.message_count += 1
        track.rssi_sum_dbfs += message.rssi_dbfs
        if message.kind == "position" and message.position is not None:
            track.position = message.position
            track.positions.append(
                (message.time_s, message.position)
            )
            if len(track.positions) > self.max_history:
                del track.positions[
                    : len(track.positions) - self.max_history
                ]
        elif message.kind == "velocity":
            track.velocity_kt = message.velocity_kt
        elif message.kind == "identification":
            track.callsign = message.callsign
        if (
            self.auto_prune
            and message.time_s - self._last_prune_s >= self.track_ttl_s
        ):
            self._last_prune_s = message.time_s
            self.prune(message.time_s)
        return track

    def update_all(
        self, messages: List[DecodedMessage]
    ) -> "AircraftTracker":
        """Merge a batch of messages (chaining-friendly)."""
        for message in messages:
            self.update(message)
        return self

    def __len__(self) -> int:
        return len(self._tracks)

    def get(self, icao: IcaoAddress) -> Optional[TrackedAircraft]:
        """Track for one address, or None."""
        return self._tracks.get(icao)

    def all_tracks(self) -> List[TrackedAircraft]:
        """All tracks, most recently heard first."""
        return sorted(
            self._tracks.values(),
            key=lambda t: t.last_seen_s,
            reverse=True,
        )

    def active(self, now_s: float) -> List[TrackedAircraft]:
        """Tracks heard within the TTL window before ``now_s``."""
        return [
            t
            for t in self.all_tracks()
            if now_s - t.last_seen_s <= self.track_ttl_s
        ]

    def prune(self, now_s: float) -> int:
        """Drop stale tracks; returns how many were removed."""
        stale = [
            icao
            for icao, t in self._tracks.items()
            if now_s - t.last_seen_s > self.track_ttl_s
        ]
        for icao in stale:
            del self._tracks[icao]
        return len(stale)

    def summary_table(self) -> str:
        """A dump1090-style terminal table of the current picture."""
        lines = [
            f"{'ICAO':<7} {'callsign':<9} {'lat':>9} {'lon':>10} "
            f"{'alt m':>7} {'kt':>5} {'msgs':>5} {'rssi':>6}"
        ]
        for track in self.all_tracks():
            pos = track.position
            lat = f"{pos.lat_deg:9.4f}" if pos else "        -"
            lon = f"{pos.lon_deg:10.4f}" if pos else "         -"
            alt = f"{pos.alt_m:7.0f}" if pos else "      -"
            speed = track.ground_speed_kt()
            spd = f"{speed:5.0f}" if speed is not None else "    -"
            rssi = track.mean_rssi_dbfs()
            rs = f"{rssi:6.1f}" if rssi is not None else "     -"
            lines.append(
                f"{str(track.icao):<7} "
                f"{(track.callsign or '-'):<9} {lat} {lon} {alt} "
                f"{spd} {track.message_count:>5} {rs}"
            )
        return "\n".join(lines)
