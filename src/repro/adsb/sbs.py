"""SBS-1 / BaseStation message format.

dump1090 serves decoded traffic on TCP port 30003 in the BaseStation
CSV format ("MSG,3,..."), which virtually every ADS-B consumer can
read. This module renders :class:`~repro.adsb.decoder.DecodedMessage`
streams into that format and parses it back, so simulated nodes can
interoperate with real feeder tooling.

Field layout (22 comma-separated columns):

    MSG,<tt>,<sid>,<aid>,<hexident>,<fid>,<dategen>,<timegen>,
    <datelog>,<timelog>,<callsign>,<altitude_ft>,<speed_kt>,
    <track>,<lat>,<lon>,<vrate>,<squawk>,<alert>,<emergency>,
    <spi>,<onground>

Transmission types used here: 1 = identification, 3 = airborne
position, 4 = airborne velocity, 8 = all-call (acquisition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.adsb.decoder import DecodedMessage
from repro.adsb.icao import IcaoAddress
from repro.geo.coords import GeoPoint

#: Meters per foot.
_FT = 0.3048

#: Transmission-type codes by message kind.
_TT_BY_KIND = {
    "identification": 1,
    "position": 3,
    "velocity": 4,
    "acquisition": 8,
}
_KIND_BY_TT = {v: k for k, v in _TT_BY_KIND.items()}


def _timestamp_fields(time_s: float) -> List[str]:
    """Date/time columns from a simulation timestamp.

    The simulation clock starts at an arbitrary epoch; emit it as
    day 1 with a HH:MM:SS.mmm time-of-day.
    """
    seconds = max(time_s, 0.0)
    hours = int(seconds // 3600) % 24
    minutes = int(seconds // 60) % 60
    secs = seconds % 60.0
    stamp = f"{hours:02d}:{minutes:02d}:{secs:06.3f}"
    return ["2023/11/28", stamp, "2023/11/28", stamp]


def to_sbs(message: DecodedMessage) -> str:
    """Render one decoded message as a BaseStation CSV line."""
    tt = _TT_BY_KIND.get(message.kind)
    if tt is None:
        raise ValueError(f"unknown message kind: {message.kind}")
    fields = ["MSG", str(tt), "1", "1", str(message.icao), "1"]
    fields += _timestamp_fields(message.time_s)
    callsign = ""
    altitude = ""
    speed = ""
    track = ""
    lat = ""
    lon = ""
    vrate = ""
    if message.kind == "identification":
        callsign = message.callsign or ""
    elif message.kind == "position" and message.position is not None:
        lat = f"{message.position.lat_deg:.5f}"
        lon = f"{message.position.lon_deg:.5f}"
        altitude = f"{message.position.alt_m / _FT:.0f}"
    elif message.kind == "velocity" and message.velocity_kt:
        east, north = message.velocity_kt
        speed = f"{math.hypot(east, north):.0f}"
        track = f"{math.degrees(math.atan2(east, north)) % 360.0:.0f}"
    fields += [
        callsign, altitude, speed, track, lat, lon, vrate,
        "", "0", "0", "0", "0",
    ]
    return ",".join(fields)


def stream_to_sbs(messages: List[DecodedMessage]) -> str:
    """Render a batch of messages, one line each."""
    return "\n".join(to_sbs(m) for m in messages)


@dataclass(frozen=True)
class SbsRecord:
    """A parsed BaseStation line (the fields this library emits)."""

    kind: str
    icao: IcaoAddress
    callsign: Optional[str]
    position: Optional[GeoPoint]
    speed_kt: Optional[float]
    track_deg: Optional[float]


def parse_sbs(line: str) -> SbsRecord:
    """Parse one BaseStation CSV line.

    Raises ValueError for lines that are not MSG records or have the
    wrong column count.
    """
    parts = line.strip().split(",")
    if len(parts) != 22:
        raise ValueError(
            f"SBS line must have 22 fields, got {len(parts)}"
        )
    if parts[0] != "MSG":
        raise ValueError(f"not a MSG record: {parts[0]!r}")
    tt = int(parts[1])
    kind = _KIND_BY_TT.get(tt)
    if kind is None:
        raise ValueError(f"unsupported transmission type: {tt}")
    icao = IcaoAddress.from_hex(parts[4])
    callsign = parts[10] or None
    position = None
    if parts[14] and parts[15]:
        alt_ft = float(parts[11]) if parts[11] else 0.0
        position = GeoPoint(
            float(parts[14]), float(parts[15]), alt_ft * _FT
        )
    speed = float(parts[12]) if parts[12] else None
    track = float(parts[13]) if parts[13] else None
    return SbsRecord(
        kind=kind,
        icao=icao,
        callsign=callsign,
        position=position,
        speed_kt=speed,
        track_deg=track,
    )
