"""DF17 Extended Squitter frame construction and parsing.

Implements the three message types the calibration pipeline needs —
airborne position (with CPR and 25 ft altitude encoding), airborne
velocity (subtype 1), and aircraft identification — as bit-exact
112-bit frames with valid Mode S parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.adsb.crc import crc24_bytes, frame_is_valid
from repro.adsb.cpr import cpr_encode
from repro.adsb.icao import IcaoAddress

#: Length of a DF17 extended squitter.
DF17_BITS = 112
DF17_BYTES = DF17_BITS // 8

#: Length of a DF11 acquisition squitter (short Mode S frame).
DF11_BITS = 56
DF11_BYTES = DF11_BITS // 8

#: Downlink formats and capability used for the squitters we emit.
_DF17 = 17
_DF11 = 11
_CA_AIRBORNE = 5

#: 6-bit character set for identification messages (DO-260B table).
_CHARSET = (
    "#ABCDEFGHIJKLMNOPQRSTUVWXYZ#####"
    " ###############0123456789######"
)


class FrameError(ValueError):
    """Raised when a frame cannot be built or parsed."""


@dataclass(frozen=True)
class AirbornePosition:
    """Decoded airborne position message (TC 9-18).

    CPR fields are kept raw; position decoding needs either a matching
    even/odd pair or a receiver reference position, which is the
    decoder's job (see :mod:`repro.adsb.decodersim`).
    """

    icao: IcaoAddress
    type_code: int
    altitude_ft: Optional[float]
    odd: bool
    cpr_lat: int
    cpr_lon: int


@dataclass(frozen=True)
class AirborneVelocity:
    """Decoded airborne velocity message (TC 19, subtype 1)."""

    icao: IcaoAddress
    east_velocity_kt: float
    north_velocity_kt: float
    vertical_rate_fpm: float


@dataclass(frozen=True)
class Identification:
    """Decoded aircraft identification message (TC 1-4)."""

    icao: IcaoAddress
    callsign: str


@dataclass(frozen=True)
class AcquisitionSquitter:
    """Decoded DF11 all-call / acquisition squitter.

    Carries only the aircraft's address — but that is enough for the
    paper's binary received/missed directional evidence, so the
    decoder counts these too (as dump1090 does).
    """

    icao: IcaoAddress


AdsbMessage = Union[
    AirbornePosition, AirborneVelocity, Identification,
    AcquisitionSquitter,
]


@dataclass(frozen=True)
class AdsbFrame:
    """A raw Mode S downlink frame plus convenience accessors.

    Either a long (14-byte DF17 extended squitter) or a short (7-byte
    DF11 acquisition squitter) frame.
    """

    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) not in (DF11_BYTES, DF17_BYTES):
            raise FrameError(
                f"Mode S frame must be {DF11_BYTES} or {DF17_BYTES} "
                f"bytes, got {len(self.data)}"
            )

    @property
    def is_long(self) -> bool:
        """True for 112-bit frames."""
        return len(self.data) == DF17_BYTES

    @property
    def downlink_format(self) -> int:
        return self.data[0] >> 3

    @property
    def icao(self) -> IcaoAddress:
        return IcaoAddress.from_bytes(self.data[1:4])

    @property
    def me(self) -> bytes:
        """The 56-bit message (ME) field (long frames only)."""
        if not self.is_long:
            raise FrameError("short frames carry no ME field")
        return self.data[4:11]

    @property
    def type_code(self) -> int:
        return self.me[0] >> 3

    def is_valid(self) -> bool:
        return frame_is_valid(self.data)


def _assemble(icao: IcaoAddress, me: bytes) -> AdsbFrame:
    """Wrap an ME field into a parity-correct DF17 frame."""
    if len(me) != 7:
        raise FrameError(f"ME field must be 7 bytes, got {len(me)}")
    header = bytes([(_DF17 << 3) | _CA_AIRBORNE]) + icao.to_bytes()
    body = header + me
    parity = crc24_bytes(body)
    return AdsbFrame(body + parity.to_bytes(3, "big"))


def build_acquisition_squitter(icao: IcaoAddress) -> AdsbFrame:
    """Build a DF11 acquisition (all-call) squitter.

    56 bits: DF + CA, the ICAO address, and parity over the first 32
    bits (interrogator identifier zero, as for spontaneous squitters).
    """
    body = bytes([(_DF11 << 3) | _CA_AIRBORNE]) + icao.to_bytes()
    parity = crc24_bytes(body)
    return AdsbFrame(body + parity.to_bytes(3, "big"))


def _encode_altitude_ft(alt_ft: float) -> int:
    """12-bit altitude field with Q=1 (25 ft resolution).

    Valid for -1000 to 50175 ft, which covers all simulated traffic.
    """
    n = int(round((alt_ft + 1000.0) / 25.0))
    if not 0 <= n < (1 << 11):
        raise FrameError(f"altitude not encodable with Q=1: {alt_ft} ft")
    high = (n >> 4) & 0x7F  # upper 7 bits
    low = n & 0x0F  # lower 4 bits
    return (high << 5) | (1 << 4) | low  # Q bit between them


def _decode_altitude_ft(field: int) -> Optional[float]:
    """Decode the 12-bit AC field (both Q=1 and Gillham Q=0)."""
    from repro.adsb.altitude import decode_ac12

    return decode_ac12(field)


def build_airborne_position(
    icao: IcaoAddress,
    lat_deg: float,
    lon_deg: float,
    altitude_ft: float,
    odd: bool,
    type_code: int = 11,
) -> AdsbFrame:
    """Build an airborne position squitter (barometric altitude).

    ``type_code`` must be in 9-18 (baro altitude family).
    """
    if not 9 <= type_code <= 18:
        raise FrameError(f"type code must be 9-18: {type_code}")
    yz, xz = cpr_encode(lat_deg, lon_deg, odd)
    alt = _encode_altitude_ft(altitude_ft)
    bits = 0
    bits |= type_code << 51
    bits |= 0 << 49  # surveillance status
    bits |= 0 << 48  # single antenna flag
    bits |= alt << 36
    bits |= 0 << 35  # time sync
    bits |= (1 if odd else 0) << 34
    bits |= yz << 17
    bits |= xz
    return _assemble(icao, bits.to_bytes(7, "big"))


def build_airborne_velocity(
    icao: IcaoAddress,
    east_velocity_kt: float,
    north_velocity_kt: float,
    vertical_rate_fpm: float = 0.0,
) -> AdsbFrame:
    """Build an airborne velocity squitter (TC 19, subtype 1).

    Velocities are encoded with 1 kt resolution up to 1021 kt, and the
    vertical rate with 64 fpm resolution.
    """
    s_ew = 1 if east_velocity_kt < 0 else 0
    s_ns = 1 if north_velocity_kt < 0 else 0
    v_ew = int(round(abs(east_velocity_kt))) + 1
    v_ns = int(round(abs(north_velocity_kt))) + 1
    if v_ew > 1023 or v_ns > 1023:
        raise FrameError("velocity exceeds subtype-1 encoding range")
    s_vr = 1 if vertical_rate_fpm < 0 else 0
    vr = int(round(abs(vertical_rate_fpm) / 64.0)) + 1
    if vr > 511:
        raise FrameError("vertical rate exceeds encoding range")
    bits = 0
    bits |= 19 << 51  # type code
    bits |= 1 << 48  # subtype 1 (ground speed)
    bits |= 0 << 47  # intent change
    bits |= 0 << 46  # IFR capability
    bits |= 0 << 43  # NUC
    bits |= s_ew << 42
    bits |= v_ew << 32
    bits |= s_ns << 31
    bits |= v_ns << 21
    bits |= 0 << 20  # vertical rate source (GNSS)
    bits |= s_vr << 19
    bits |= vr << 10
    # remaining: 2 reserved, sign + 7-bit GNSS/baro delta = 0
    return _assemble(icao, bits.to_bytes(7, "big"))


def identification_me_bits(callsign: str, type_code: int = 4) -> int:
    """56-bit ME field of an identification squitter (TC 1-4).

    Shared by the scalar builder and the batch frame synthesizer,
    which caches one ME value per aircraft.
    """
    if not 1 <= type_code <= 4:
        raise FrameError(f"type code must be 1-4: {type_code}")
    callsign = callsign.upper().ljust(8)
    if len(callsign) > 8:
        raise FrameError(f"callsign too long: {callsign!r}")
    bits = 0
    bits |= type_code << 51
    bits |= 0 << 48  # aircraft category
    shift = 42
    for ch in callsign:
        code = _CHARSET.find(ch)
        if code < 0 or _CHARSET[code] == "#":
            raise FrameError(f"character not encodable: {ch!r}")
        bits |= code << shift
        shift -= 6
    return bits


def build_identification(
    icao: IcaoAddress, callsign: str, type_code: int = 4
) -> AdsbFrame:
    """Build an aircraft identification squitter (TC 1-4)."""
    bits = identification_me_bits(callsign, type_code)
    return _assemble(icao, bits.to_bytes(7, "big"))


def parse_frame(frame: AdsbFrame) -> Optional[AdsbMessage]:
    """Parse a validated DF17 frame into a typed message.

    Returns None for type codes we do not model. Raises FrameError for
    frames that fail the parity check — callers should drop those
    before parsing, like dump1090 does.
    """
    if not frame.is_valid():
        raise FrameError("frame failed CRC check")
    if frame.downlink_format == _DF11 and not frame.is_long:
        return AcquisitionSquitter(icao=frame.icao)
    if frame.downlink_format != _DF17 or not frame.is_long:
        return None
    me_bits = int.from_bytes(frame.me, "big")
    tc = frame.type_code
    if 9 <= tc <= 18:
        alt_field = (me_bits >> 36) & 0xFFF
        return AirbornePosition(
            icao=frame.icao,
            type_code=tc,
            altitude_ft=_decode_altitude_ft(alt_field),
            odd=bool((me_bits >> 34) & 1),
            cpr_lat=(me_bits >> 17) & 0x1FFFF,
            cpr_lon=me_bits & 0x1FFFF,
        )
    if tc == 19 and ((me_bits >> 48) & 0x7) == 1:
        s_ew = (me_bits >> 42) & 1
        v_ew = (me_bits >> 32) & 0x3FF
        s_ns = (me_bits >> 31) & 1
        v_ns = (me_bits >> 21) & 0x3FF
        s_vr = (me_bits >> 19) & 1
        vr = (me_bits >> 10) & 0x1FF
        if v_ew == 0 or v_ns == 0:
            return None  # "no information" encoding
        east = (v_ew - 1) * (-1.0 if s_ew else 1.0)
        north = (v_ns - 1) * (-1.0 if s_ns else 1.0)
        rate = 0.0
        if vr != 0:
            rate = (vr - 1) * 64.0 * (-1.0 if s_vr else 1.0)
        return AirborneVelocity(
            icao=frame.icao,
            east_velocity_kt=east,
            north_velocity_kt=north,
            vertical_rate_fpm=rate,
        )
    if 1 <= tc <= 4:
        chars = []
        for shift in range(42, -6, -6):
            chars.append(_CHARSET[(me_bits >> shift) & 0x3F])
        return Identification(
            icao=frame.icao, callsign="".join(chars).rstrip()
        )
    return None
