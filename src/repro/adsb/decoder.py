"""A dump1090-style ADS-B decoder.

Consumes either raw IQ blocks (through the PPM demodulator) or frame
bytes straight off the link simulation, validates Mode S parity,
parses messages, and resolves CPR positions — globally from even/odd
pairs when possible, locally against the receiver's own position
otherwise (the sensor's location is known, as in the paper). Reports
per-message RSSI like dump1090 does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.adsb.cpr import cpr_decode_global, cpr_decode_local
from repro.adsb.crc import crc24_matrix, fix_single_bit_error
from repro.adsb.icao import IcaoAddress
from repro.adsb.messages import (
    DF11_BYTES,
    DF17_BYTES,
    AcquisitionSquitter,
    AdsbFrame,
    AirbornePosition,
    AirborneVelocity,
    FrameError,
    Identification,
    parse_frame,
)
from repro.adsb.modem import SAMPLE_RATE_HZ, PpmDemodulator
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class DecodedMessage:
    """One successfully decoded ADS-B message.

    Attributes:
        time_s: receive timestamp (simulation time).
        icao: transmitting aircraft's address.
        kind: "position", "velocity", or "identification".
        position: resolved GeoPoint for position messages (None until
            CPR can be resolved).
        velocity_kt: (east, north) ground speed for velocity messages.
        callsign: callsign for identification messages.
        rssi_dbfs: received signal strength as dump1090 reports it.
    """

    time_s: float
    icao: IcaoAddress
    kind: str
    position: Optional[GeoPoint] = None
    velocity_kt: Optional[Tuple[float, float]] = None
    callsign: Optional[str] = None
    rssi_dbfs: float = -50.0


#: ``BatchDecodeResult.kind_code`` values.
KIND_CODE_POSITION = 0
KIND_CODE_VELOCITY = 1
KIND_CODE_IDENTIFICATION = 2
KIND_CODE_ACQUISITION = 3
KIND_CODE_NONE = -1


@dataclass(frozen=True)
class BatchDecodeResult:
    """Outcome of a batch decode, one entry per input frame.

    Attributes:
        decoded: True where the frame passed parity and parsed into a
            modeled message type — exactly where the scalar
            ``decode_frame_bytes`` would return a message.
        icao24: the transmitted 24-bit address per frame (meaningful
            where ``decoded``).
        kind_code: ``KIND_CODE_*`` per frame; ``KIND_CODE_NONE`` where
            not decoded.
    """

    decoded: np.ndarray
    icao24: np.ndarray
    kind_code: np.ndarray


@dataclass
class _CprState:
    """Most recent even/odd CPR pair for one aircraft."""

    even: Optional[Tuple[int, int]] = None
    even_time_s: float = -math.inf
    odd: Optional[Tuple[int, int]] = None
    odd_time_s: float = -math.inf

    #: Max age difference for combining an even/odd pair (DO-260B: 10 s).
    MAX_PAIR_AGE_S = 10.0

    def update(
        self, odd: bool, cpr: Tuple[int, int], time_s: float
    ) -> None:
        if odd:
            self.odd = cpr
            self.odd_time_s = time_s
        else:
            self.even = cpr
            self.even_time_s = time_s

    def try_global(self) -> Optional[Tuple[float, float]]:
        if self.even is None or self.odd is None:
            return None
        if abs(self.even_time_s - self.odd_time_s) > self.MAX_PAIR_AGE_S:
            return None
        return cpr_decode_global(
            self.even, self.odd, self.odd_time_s >= self.even_time_s
        )


@dataclass
class Dump1090Decoder:
    """Stateful frame decoder with CPR resolution.

    Attributes:
        receiver_position: sensor location, used for local CPR decode
            (dump1090's ``--lat/--lon`` option) and plausibility checks.
        max_range_km: discard positions farther than this from the
            receiver (dump1090 does the same sanity check).
        fix_errors: attempt single-bit error correction on frames that
            fail the CRC (dump1090's ``--fix``).
    """

    receiver_position: Optional[GeoPoint] = None
    max_range_km: float = 400.0
    fix_errors: bool = False
    _cpr: Dict[IcaoAddress, _CprState] = field(default_factory=dict)

    #: Counters mirroring dump1090's statistics output.
    frames_seen: int = 0
    frames_bad_crc: int = 0
    frames_fixed: int = 0
    messages_decoded: int = 0

    def decode_frame_bytes(
        self, data: bytes, time_s: float, rssi_dbfs: float
    ) -> Optional[DecodedMessage]:
        """Decode one Mode S frame; None if CRC fails or type unknown."""
        self.frames_seen += 1
        frame = AdsbFrame(data)
        if not frame.is_valid():
            repaired = (
                fix_single_bit_error(data) if self.fix_errors else None
            )
            if repaired is None:
                self.frames_bad_crc += 1
                return None
            self.frames_fixed += 1
            frame = AdsbFrame(repaired)
        try:
            message = parse_frame(frame)
        except FrameError:
            self.frames_bad_crc += 1
            return None
        if message is None:
            return None
        decoded = self._to_decoded(message, time_s, rssi_dbfs)
        if decoded is not None:
            self.messages_decoded += 1
        return decoded

    def decode_frame_matrix(
        self,
        data: np.ndarray,
        lengths: np.ndarray,
        times_s: np.ndarray,
    ) -> BatchDecodeResult:
        """Decode a whole capture's frames in one vectorized pass.

        ``data`` is an (n, 14) uint8 matrix of frames, zero-padded on
        the right for 7-byte short frames; ``lengths`` gives each
        row's true byte count. Runs the same pipeline as
        ``decode_frame_bytes`` row-for-row — CRC syndrome, single-bit
        repair when ``fix_errors`` is set, DF/TC classification, the
        TC 19 "no information" velocity rule — with identical counter
        updates, and returns which rows decoded instead of message
        objects.

        Position rows advance the per-aircraft CPR pair state (so a
        later scalar decode sees the same history) but are not
        resolved to lat/lon: batch consumers — the directional scan —
        use only the decode tally, never per-message positions.
        """
        d = np.asarray(data, dtype=np.uint8)
        lens = np.asarray(lengths, dtype=np.int64)
        n = d.shape[0]
        self.frames_seen += n
        if n == 0:
            return BatchDecodeResult(
                decoded=np.zeros(0, dtype=bool),
                icao24=np.zeros(0, dtype=np.int64),
                kind_code=np.full(0, KIND_CODE_NONE, dtype=np.int64),
            )
        long_m = lens == DF17_BYTES
        short_m = lens == DF11_BYTES
        if not bool(np.all(long_m | short_m)):
            raise FrameError(
                f"Mode S frames must be {DF11_BYTES} or {DF17_BYTES} "
                "bytes"
            )

        syndrome = np.zeros(n, dtype=np.uint32)
        for mask, body_len in ((long_m, 11), (short_m, 4)):
            if not mask.any():
                continue
            sub = d[mask]
            parity = (
                (sub[:, body_len].astype(np.uint32) << 16)
                | (sub[:, body_len + 1].astype(np.uint32) << 8)
                | sub[:, body_len + 2]
            )
            syndrome[mask] = crc24_matrix(sub[:, :body_len]) ^ parity
        valid = syndrome == 0
        if self.fix_errors and not bool(valid.all()):
            d = d.copy()
            for i in np.flatnonzero(~valid).tolist():
                row = bytes(d[i, : int(lens[i])])
                repaired = fix_single_bit_error(row)
                if repaired is None:
                    continue
                self.frames_fixed += 1
                d[i, : int(lens[i])] = np.frombuffer(
                    repaired, dtype=np.uint8
                )
                valid[i] = True
        self.frames_bad_crc += int((~valid).sum())

        df = d[:, 0] >> 3
        icao24 = (
            (d[:, 1].astype(np.int64) << 16)
            | (d[:, 2].astype(np.int64) << 8)
            | d[:, 3]
        )
        me = np.zeros(n, dtype=np.uint64)
        for k in range(7):
            me |= d[:, 4 + k].astype(np.uint64) << np.uint64(
                8 * (6 - k)
            )
        tc = d[:, 4] >> 3
        df17 = valid & long_m & (df == 17)
        position = df17 & (tc >= 9) & (tc <= 18)
        ident = df17 & (tc >= 1) & (tc <= 4)
        v_ew = (me >> np.uint64(32)) & np.uint64(0x3FF)
        v_ns = (me >> np.uint64(21)) & np.uint64(0x3FF)
        velocity = (
            df17
            & (tc == 19)
            & ((d[:, 4] & 0x7) == 1)
            & (v_ew != 0)
            & (v_ns != 0)
        )
        acquisition = valid & short_m & (df == 11)

        kind_code = np.full(n, KIND_CODE_NONE, dtype=np.int64)
        kind_code[position] = KIND_CODE_POSITION
        kind_code[velocity] = KIND_CODE_VELOCITY
        kind_code[ident] = KIND_CODE_IDENTIFICATION
        kind_code[acquisition] = KIND_CODE_ACQUISITION
        decoded = kind_code != KIND_CODE_NONE
        self.messages_decoded += int(decoded.sum())

        if position.any():
            self._advance_cpr_state(
                np.flatnonzero(position),
                icao24,
                me,
                np.asarray(times_s, dtype=np.float64),
            )
        return BatchDecodeResult(
            decoded=decoded, icao24=icao24, kind_code=kind_code
        )

    def _advance_cpr_state(
        self,
        pos_idx: np.ndarray,
        icao24: np.ndarray,
        me: np.ndarray,
        times_s: np.ndarray,
    ) -> None:
        """Apply a batch's position updates to the CPR pair state.

        Only each (aircraft, parity) key's LAST update matters —
        ``_CprState`` keeps the most recent pair — so one state write
        per key reproduces the scalar path's end state.
        """
        odd_bit = (me[pos_idx] >> np.uint64(34)) & np.uint64(1)
        key = icao24[pos_idx] * 2 + odd_bit.astype(np.int64)
        uniq, last_rev = np.unique(key[::-1], return_index=True)
        last = pos_idx.size - 1 - last_rev
        for k, j in zip(uniq.tolist(), last.tolist()):
            row = int(pos_idx[j])
            state = self._cpr.setdefault(
                IcaoAddress(int(k) // 2), _CprState()
            )
            state.update(
                bool(k % 2),
                (
                    int((me[row] >> np.uint64(17)) & np.uint64(0x1FFFF)),
                    int(me[row] & np.uint64(0x1FFFF)),
                ),
                float(times_s[row]),
            )

    def decode_iq(
        self, samples: np.ndarray, block_start_s: float = 0.0
    ) -> List[DecodedMessage]:
        """Demodulate a raw IQ block and decode every valid frame."""
        demod = PpmDemodulator()
        out: List[DecodedMessage] = []
        for start, frame_bytes, rssi_power in demod.demodulate(samples):
            time_s = block_start_s + start / SAMPLE_RATE_HZ
            rssi_dbfs = 10.0 * math.log10(max(rssi_power, 1e-15))
            msg = self.decode_frame_bytes(frame_bytes, time_s, rssi_dbfs)
            if msg is not None:
                out.append(msg)
        return out

    def _to_decoded(
        self, message, time_s: float, rssi_dbfs: float
    ) -> Optional[DecodedMessage]:
        if isinstance(message, AirbornePosition):
            position = self._resolve_position(message, time_s)
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="position",
                position=position,
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, AirborneVelocity):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="velocity",
                velocity_kt=(
                    message.east_velocity_kt,
                    message.north_velocity_kt,
                ),
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, Identification):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="identification",
                callsign=message.callsign,
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, AcquisitionSquitter):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="acquisition",
                rssi_dbfs=rssi_dbfs,
            )
        return None

    def _resolve_position(
        self, message: AirbornePosition, time_s: float
    ) -> Optional[GeoPoint]:
        state = self._cpr.setdefault(message.icao, _CprState())
        state.update(
            message.odd, (message.cpr_lat, message.cpr_lon), time_s
        )
        latlon = state.try_global()
        if latlon is None and self.receiver_position is not None:
            latlon = cpr_decode_local(
                message.cpr_lat,
                message.cpr_lon,
                message.odd,
                self.receiver_position.lat_deg,
                self.receiver_position.lon_deg,
            )
        if latlon is None:
            return None
        lat, lon = latlon
        if not -90.0 <= lat <= 90.0:
            return None
        alt_m = (
            message.altitude_ft * 0.3048
            if message.altitude_ft is not None
            else 0.0
        )
        point = GeoPoint(lat, lon, alt_m)
        if self.receiver_position is not None:
            from repro.geo.distance import haversine_m

            if (
                haversine_m(self.receiver_position, point)
                > self.max_range_km * 1000.0
            ):
                return None
        return point
