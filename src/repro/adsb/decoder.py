"""A dump1090-style ADS-B decoder.

Consumes either raw IQ blocks (through the PPM demodulator) or frame
bytes straight off the link simulation, validates Mode S parity,
parses messages, and resolves CPR positions — globally from even/odd
pairs when possible, locally against the receiver's own position
otherwise (the sensor's location is known, as in the paper). Reports
per-message RSSI like dump1090 does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.adsb.cpr import cpr_decode_global, cpr_decode_local
from repro.adsb.crc import fix_single_bit_error
from repro.adsb.icao import IcaoAddress
from repro.adsb.messages import (
    AcquisitionSquitter,
    AdsbFrame,
    AirbornePosition,
    AirborneVelocity,
    FrameError,
    Identification,
    parse_frame,
)
from repro.adsb.modem import SAMPLE_RATE_HZ, PpmDemodulator
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class DecodedMessage:
    """One successfully decoded ADS-B message.

    Attributes:
        time_s: receive timestamp (simulation time).
        icao: transmitting aircraft's address.
        kind: "position", "velocity", or "identification".
        position: resolved GeoPoint for position messages (None until
            CPR can be resolved).
        velocity_kt: (east, north) ground speed for velocity messages.
        callsign: callsign for identification messages.
        rssi_dbfs: received signal strength as dump1090 reports it.
    """

    time_s: float
    icao: IcaoAddress
    kind: str
    position: Optional[GeoPoint] = None
    velocity_kt: Optional[Tuple[float, float]] = None
    callsign: Optional[str] = None
    rssi_dbfs: float = -50.0


@dataclass
class _CprState:
    """Most recent even/odd CPR pair for one aircraft."""

    even: Optional[Tuple[int, int]] = None
    even_time_s: float = -math.inf
    odd: Optional[Tuple[int, int]] = None
    odd_time_s: float = -math.inf

    #: Max age difference for combining an even/odd pair (DO-260B: 10 s).
    MAX_PAIR_AGE_S = 10.0

    def update(
        self, odd: bool, cpr: Tuple[int, int], time_s: float
    ) -> None:
        if odd:
            self.odd = cpr
            self.odd_time_s = time_s
        else:
            self.even = cpr
            self.even_time_s = time_s

    def try_global(self) -> Optional[Tuple[float, float]]:
        if self.even is None or self.odd is None:
            return None
        if abs(self.even_time_s - self.odd_time_s) > self.MAX_PAIR_AGE_S:
            return None
        return cpr_decode_global(
            self.even, self.odd, self.odd_time_s >= self.even_time_s
        )


@dataclass
class Dump1090Decoder:
    """Stateful frame decoder with CPR resolution.

    Attributes:
        receiver_position: sensor location, used for local CPR decode
            (dump1090's ``--lat/--lon`` option) and plausibility checks.
        max_range_km: discard positions farther than this from the
            receiver (dump1090 does the same sanity check).
        fix_errors: attempt single-bit error correction on frames that
            fail the CRC (dump1090's ``--fix``).
    """

    receiver_position: Optional[GeoPoint] = None
    max_range_km: float = 400.0
    fix_errors: bool = False
    _cpr: Dict[IcaoAddress, _CprState] = field(default_factory=dict)

    #: Counters mirroring dump1090's statistics output.
    frames_seen: int = 0
    frames_bad_crc: int = 0
    frames_fixed: int = 0
    messages_decoded: int = 0

    def decode_frame_bytes(
        self, data: bytes, time_s: float, rssi_dbfs: float
    ) -> Optional[DecodedMessage]:
        """Decode one Mode S frame; None if CRC fails or type unknown."""
        self.frames_seen += 1
        frame = AdsbFrame(data)
        if not frame.is_valid():
            repaired = (
                fix_single_bit_error(data) if self.fix_errors else None
            )
            if repaired is None:
                self.frames_bad_crc += 1
                return None
            self.frames_fixed += 1
            frame = AdsbFrame(repaired)
        try:
            message = parse_frame(frame)
        except FrameError:
            self.frames_bad_crc += 1
            return None
        if message is None:
            return None
        decoded = self._to_decoded(message, time_s, rssi_dbfs)
        if decoded is not None:
            self.messages_decoded += 1
        return decoded

    def decode_iq(
        self, samples: np.ndarray, block_start_s: float = 0.0
    ) -> List[DecodedMessage]:
        """Demodulate a raw IQ block and decode every valid frame."""
        demod = PpmDemodulator()
        out: List[DecodedMessage] = []
        for start, frame_bytes, rssi_power in demod.demodulate(samples):
            time_s = block_start_s + start / SAMPLE_RATE_HZ
            rssi_dbfs = 10.0 * math.log10(max(rssi_power, 1e-15))
            msg = self.decode_frame_bytes(frame_bytes, time_s, rssi_dbfs)
            if msg is not None:
                out.append(msg)
        return out

    def _to_decoded(
        self, message, time_s: float, rssi_dbfs: float
    ) -> Optional[DecodedMessage]:
        if isinstance(message, AirbornePosition):
            position = self._resolve_position(message, time_s)
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="position",
                position=position,
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, AirborneVelocity):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="velocity",
                velocity_kt=(
                    message.east_velocity_kt,
                    message.north_velocity_kt,
                ),
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, Identification):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="identification",
                callsign=message.callsign,
                rssi_dbfs=rssi_dbfs,
            )
        if isinstance(message, AcquisitionSquitter):
            return DecodedMessage(
                time_s=time_s,
                icao=message.icao,
                kind="acquisition",
                rssi_dbfs=rssi_dbfs,
            )
        return None

    def _resolve_position(
        self, message: AirbornePosition, time_s: float
    ) -> Optional[GeoPoint]:
        state = self._cpr.setdefault(message.icao, _CprState())
        state.update(
            message.odd, (message.cpr_lat, message.cpr_lon), time_s
        )
        latlon = state.try_global()
        if latlon is None and self.receiver_position is not None:
            latlon = cpr_decode_local(
                message.cpr_lat,
                message.cpr_lon,
                message.odd,
                self.receiver_position.lat_deg,
                self.receiver_position.lon_deg,
            )
        if latlon is None:
            return None
        lat, lon = latlon
        if not -90.0 <= lat <= 90.0:
            return None
        alt_m = (
            message.altitude_ft * 0.3048
            if message.altitude_ft is not None
            else 0.0
        )
        point = GeoPoint(lat, lon, alt_m)
        if self.receiver_position is not None:
            from repro.geo.distance import haversine_m

            if (
                haversine_m(self.receiver_position, point)
                > self.max_range_km * 1000.0
            ):
                return None
        return point
