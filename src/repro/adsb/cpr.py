"""Compact Position Reporting (CPR) for airborne positions.

ADS-B squeezes latitude/longitude into 17 bits each by alternating
between an "even" and an "odd" grid. A receiver combines an even/odd
message pair for a globally unambiguous fix, or a single message plus
a reference position (its own location) for a local fix. Both decoders
are implemented here, following DO-260B / "The 1090 MHz Riddle".
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

#: Number of latitude zones between equator and a pole.
NZ = 15

#: CPR fixed-point scale (17 bits).
_SCALE = 1 << 17

#: Even/odd latitude zone sizes in degrees.
_DLAT_EVEN = 360.0 / (4 * NZ)
_DLAT_ODD = 360.0 / (4 * NZ - 1)


def cpr_nl(lat_deg: float) -> int:
    """Number of longitude zones NL(lat) per DO-260B.

    Clamped to 1 near the poles and 59 near the equator.
    """
    if lat_deg == 0.0:
        return 59
    abs_lat = abs(lat_deg)
    if abs_lat >= 87.0:
        return 1 if abs_lat > 87.0 else 2
    a = 1.0 - math.cos(math.pi / (2.0 * NZ))
    b = math.cos(math.pi / 180.0 * abs_lat) ** 2
    nl = 2.0 * math.pi / math.acos(1.0 - a / b)
    return int(math.floor(nl))


def cpr_encode(lat_deg: float, lon_deg: float, odd: bool) -> Tuple[int, int]:
    """Encode a position into 17-bit CPR (lat, lon) counts.

    Returns the (YZ, XZ) integers transmitted in the airborne position
    message.
    """
    if not -90.0 <= lat_deg <= 90.0:
        raise ValueError(f"latitude out of range: {lat_deg}")
    dlat = _DLAT_ODD if odd else _DLAT_EVEN
    yz = math.floor(_SCALE * _mod(lat_deg, dlat) / dlat + 0.5)
    rlat = dlat * (yz / _SCALE + math.floor(lat_deg / dlat))
    nl = cpr_nl(rlat)
    n_lon = max(nl - (1 if odd else 0), 1)
    dlon = 360.0 / n_lon
    xz = math.floor(_SCALE * _mod(lon_deg, dlon) / dlon + 0.5)
    return int(yz) % _SCALE, int(xz) % _SCALE


def cpr_nl_array(lat_deg: np.ndarray) -> np.ndarray:
    """Batch :func:`cpr_nl`: longitude zone counts per latitude."""
    lat = np.asarray(lat_deg, dtype=np.float64)
    abs_lat = np.abs(lat)
    polar = abs_lat >= 87.0
    a = 1.0 - math.cos(math.pi / (2.0 * NZ))
    # Evaluate the DO-260B formula only where it is defined; the polar
    # clamp overwrites the placeholder values afterwards.
    b = np.cos(np.pi / 180.0 * np.where(polar, 0.0, abs_lat)) ** 2
    nl = np.floor(2.0 * np.pi / np.arccos(1.0 - a / b))
    nl = np.where(polar, np.where(abs_lat > 87.0, 1.0, 2.0), nl)
    nl = np.where(lat == 0.0, 59.0, nl)
    return nl.astype(np.int64)


def cpr_encode_arrays(
    lat_deg: np.ndarray, lon_deg: np.ndarray, odd: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch :func:`cpr_encode`: 17-bit (YZ, XZ) counts per position.

    ``odd`` is a boolean array selecting the odd grid per element.
    """
    lat = np.asarray(lat_deg, dtype=np.float64)
    lon = np.asarray(lon_deg, dtype=np.float64)
    odd_b = np.asarray(odd, dtype=bool)
    if np.any((lat < -90.0) | (lat > 90.0)):
        raise ValueError("latitude out of range")
    dlat = np.where(odd_b, _DLAT_ODD, _DLAT_EVEN)
    yz = np.floor(_SCALE * _mod_array(lat, dlat) / dlat + 0.5)
    rlat = dlat * (yz / _SCALE + np.floor(lat / dlat))
    nl = cpr_nl_array(rlat)
    n_lon = np.maximum(nl - odd_b.astype(np.int64), 1)
    dlon = 360.0 / n_lon
    xz = np.floor(_SCALE * _mod_array(lon, dlon) / dlon + 0.5)
    return (
        yz.astype(np.int64) % _SCALE,
        xz.astype(np.int64) % _SCALE,
    )


def cpr_decode_global(
    even: Tuple[int, int],
    odd: Tuple[int, int],
    most_recent_odd: bool,
) -> Optional[Tuple[float, float]]:
    """Globally unambiguous decode from an even/odd message pair.

    Args:
        even: (YZ, XZ) from the even-format message.
        odd: (YZ, XZ) from the odd-format message.
        most_recent_odd: True if the odd message is the newer one; the
            decoded position corresponds to the newer message.

    Returns:
        (lat_deg, lon_deg), or None when the pair straddles a latitude
        zone boundary (NL mismatch) and cannot be combined.
    """
    lat_even = even[0] / _SCALE
    lat_odd = odd[0] / _SCALE
    lon_even = even[1] / _SCALE
    lon_odd = odd[1] / _SCALE

    j = math.floor(59.0 * lat_even - 60.0 * lat_odd + 0.5)
    rlat_even = _DLAT_EVEN * (_mod(j, 60) + lat_even)
    rlat_odd = _DLAT_ODD * (_mod(j, 59) + lat_odd)
    if rlat_even >= 270.0:
        rlat_even -= 360.0
    if rlat_odd >= 270.0:
        rlat_odd -= 360.0
    if not -90.0 <= rlat_even <= 90.0 or not -90.0 <= rlat_odd <= 90.0:
        return None
    if cpr_nl(rlat_even) != cpr_nl(rlat_odd):
        return None

    if most_recent_odd:
        lat = rlat_odd
        nl = cpr_nl(lat)
        ni = max(nl - 1, 1)
        m = math.floor(lon_even * (nl - 1) - lon_odd * nl + 0.5)
        lon = (360.0 / ni) * (_mod(m, ni) + lon_odd)
    else:
        lat = rlat_even
        nl = cpr_nl(lat)
        ni = max(nl, 1)
        m = math.floor(lon_even * (nl - 1) - lon_odd * nl + 0.5)
        lon = (360.0 / ni) * (_mod(m, ni) + lon_even)
    if lon >= 180.0:
        lon -= 360.0
    return lat, lon


def cpr_decode_local(
    yz: int,
    xz: int,
    odd: bool,
    ref_lat_deg: float,
    ref_lon_deg: float,
) -> Tuple[float, float]:
    """Locally unambiguous decode using a reference position.

    Valid when the true position is within ~180 NM of the reference —
    always true here since the paper only considers aircraft within
    100 km of the sensor.
    """
    lat_cpr = yz / _SCALE
    lon_cpr = xz / _SCALE
    dlat = _DLAT_ODD if odd else _DLAT_EVEN
    j = math.floor(ref_lat_deg / dlat) + math.floor(
        0.5 + _mod(ref_lat_deg, dlat) / dlat - lat_cpr
    )
    lat = dlat * (j + lat_cpr)
    nl = cpr_nl(lat)
    n_lon = max(nl - (1 if odd else 0), 1)
    dlon = 360.0 / n_lon
    m = math.floor(ref_lon_deg / dlon) + math.floor(
        0.5 + _mod(ref_lon_deg, dlon) / dlon - lon_cpr
    )
    lon = dlon * (m + lon_cpr)
    return lat, lon


def _mod(a: float, b: float) -> float:
    """Mathematical modulo (result has the sign of ``b``)."""
    return a - b * math.floor(a / b)


def _mod_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_mod` with the scalar's exact op order."""
    return a - b * np.floor(a / b)
