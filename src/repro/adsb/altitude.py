"""Mode S altitude encodings: the 25 ft Q=1 code and Gillham code.

The 12-bit AC altitude field has two regimes (DO-260B):

- Q=1: 25 ft resolution, ``altitude = 25*N - 1000`` ft, valid up to
  50175 ft — what modern transponders use and what
  :mod:`repro.adsb.messages` emits;
- Q=0: the legacy 100 ft Gillham (gray) code inherited from Mode C,
  used above 50175 ft and by older equipment. dump1090 decodes both,
  so we do too.

Gillham code structure (for the 100 ft code up to 126700 ft): the
altitude in 500 ft increments is gray-coded into bits D2 D4 A1 A2 A4
B1 B2 B4, and the 100 ft sub-increment (1-5) into C1 C2 C4 with a
reflected pattern on odd 500 ft steps.
"""

from __future__ import annotations

from typing import Optional

#: Valid Gillham altitude range, feet.
GILLHAM_MIN_FT = -1000
GILLHAM_MAX_FT = 126_700


def _gray_encode(n: int) -> int:
    return n ^ (n >> 1)


def _gray_decode(g: int) -> int:
    n = 0
    while g:
        n ^= g
        g >>= 1
    return n


def gillham_encode(altitude_ft: int) -> int:
    """Encode an altitude into the 11-bit Gillham code.

    Returns the code as an integer holding the bits in the order
    D2 D4 A1 A2 A4 B1 B2 B4 C1 C2 C4 (MSB first). The altitude must be
    a multiple of 100 ft within [-1000, 126700].
    """
    if altitude_ft % 100 != 0:
        raise ValueError(
            f"Gillham altitude must be a 100 ft multiple: {altitude_ft}"
        )
    if not GILLHAM_MIN_FT <= altitude_ft <= GILLHAM_MAX_FT:
        raise ValueError(
            f"Gillham altitude out of range: {altitude_ft} ft"
        )
    # Work in 100 ft units offset so the scale starts at zero:
    # -1000 ft -> 0, -900 ft -> 1, ...
    units = (altitude_ft + 1200) // 100
    n500, rem = divmod(units, 5)
    # rem in 0..4 maps to the C1C2C4 pattern 1,2,3,4,5 gray-ish code.
    c_patterns = [0b001, 0b011, 0b010, 0b110, 0b100]
    c = c_patterns[rem]
    if n500 % 2 == 1:
        # Reflected on odd 500 ft steps so consecutive altitudes
        # differ in a single bit.
        c = c_patterns[4 - rem]
    dab = _gray_encode(n500)
    if dab >= (1 << 8):
        raise ValueError(
            f"Gillham altitude out of range: {altitude_ft} ft"
        )
    return (dab << 3) | c


def gillham_decode(code: int) -> Optional[int]:
    """Decode an 11-bit Gillham code to altitude in feet.

    Returns None for invalid codes (C bits not a legal pattern).
    """
    if not 0 <= code < (1 << 11):
        raise ValueError(f"Gillham code out of range: {code:#x}")
    dab = code >> 3
    c = code & 0b111
    c_patterns = [0b001, 0b011, 0b010, 0b110, 0b100]
    if c not in c_patterns:
        return None
    n500 = _gray_decode(dab)
    rem = c_patterns.index(c)
    if n500 % 2 == 1:
        rem = 4 - rem
    units = n500 * 5 + rem
    return units * 100 - 1200


def decode_ac12(field: int) -> Optional[float]:
    """Decode the 12-bit AC altitude field from an airborne position.

    Handles both the Q=1 (25 ft) and Q=0 (Gillham 100 ft) regimes,
    like dump1090's ``decodeAC12Field``. Returns feet, or None when
    the field is zero (no altitude information) or malformed.
    """
    if not 0 <= field < (1 << 12):
        raise ValueError(f"AC12 field out of range: {field:#x}")
    if field == 0:
        return None
    q = (field >> 4) & 1
    if q:
        n = ((field >> 5) << 4) | (field & 0x0F)
        return n * 25.0 - 1000.0
    # Q=0: the remaining 11 bits hold the Gillham code. In the AC12
    # layout the bit order (MSB first) is C1 A1 C2 A2 C4 A4 B1 Q B2 D2
    # B4 D4; with Q removed we reorder into D2 D4 A1 A2 A4 B1 B2 B4
    # C1 C2 C4.
    bits = [(field >> (11 - i)) & 1 for i in range(12)]
    c1, a1, c2, a2, c4, a4, b1, _q, b2, d2, b4, d4 = bits
    code = 0
    for bit in (d2, d4, a1, a2, a4, b1, b2, b4, c1, c2, c4):
        code = (code << 1) | bit
    alt = gillham_decode(code)
    return float(alt) if alt is not None else None


def encode_ac12_gillham(altitude_ft: int) -> int:
    """Encode an altitude as a Q=0 (Gillham) AC12 field."""
    code = gillham_encode(altitude_ft)
    bits11 = [(code >> (10 - i)) & 1 for i in range(11)]
    d2, d4, a1, a2, a4, b1, b2, b4, c1, c2, c4 = bits11
    ordered = (c1, a1, c2, a2, c4, a4, b1, 0, b2, d2, b4, d4)
    field = 0
    for bit in ordered:
        field = (field << 1) | bit
    return field
