"""Scalar (per-sample) reference implementation of the Mode S modem.

:mod:`repro.adsb.modem` is the production modem; its hot paths run as
numpy batch kernels over whole magnitude buffers. This module keeps
the original interpreter-style implementation — one sample, one bit,
one byte at a time — importable as the *oracle* for the equivalence
suite (``tests/test_modem_equivalence.py``) and as the scalar baseline
for the ``benchmarks/test_bench_vectorized.py`` comparisons.

Both implementations must stay behaviourally identical; the
equivalence tests assert detected starts, sliced bits, frame bytes and
RSSI match on arbitrary magnitude buffers.

One historical bug is fixed here *and* in the vectorized modem rather
than preserved: the original ``detect_preambles`` stopped scanning at
``n - SHORT_FRAME_SAMPLES``, so a preamble whose 16 samples (and even
its 5 DF bits) were fully present inside the last 128 samples of a
buffer was silently never reported, even though the method's contract
is "candidate starts; the caller decides the message length". Block
streaming callers that carry tail context rely on those candidates.
Scanning now runs to the last full preamble window; decoded output is
provably unchanged (a frame that does not fully fit still fails
``slice_bits``). See ``TestBufferEdgeRegression`` in
``tests/test_modem_equivalence.py`` for the pinned regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.adsb.messages import DF11_BITS, DF17_BITS
from repro.adsb.modem import (
    PREAMBLE_PULSES,
    PREAMBLE_QUIET,
    PREAMBLE_SAMPLES,
    SHORT_FRAME_SAMPLES,
)


def frame_to_bits_ref(frame_bytes: bytes) -> List[int]:
    """Expand frame bytes into an MSB-first bit list (scalar loop)."""
    bits: List[int] = []
    for byte in frame_bytes:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_frame_ref(bits: List[int]) -> bytes:
    """Pack an MSB-first bit list back into bytes (scalar loop)."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count not a byte multiple: {len(bits)}")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | (bit & 1)
        out.append(byte)
    return bytes(out)


@dataclass
class ScalarPpmDemodulator:
    """The per-sample ``while``-loop demodulator (reference oracle).

    Attributes:
        preamble_snr_ratio: how much stronger (linear magnitude) the
            preamble pulses must be than the quiet slots to declare a
            detection; dump1090 uses a comparable heuristic.
    """

    preamble_snr_ratio: float = 2.0

    def detect_preambles(self, magnitude: np.ndarray) -> List[int]:
        """Candidate frame start indices in an envelope-magnitude array.

        Skips past each detection by a short-frame length; the caller
        decides the actual message length from the DF bits. Scans up
        to the last index where a full 16-sample preamble fits (see
        the module docstring for the buffer-edge fix).
        """
        n = len(magnitude)
        starts: List[int] = []
        last = n - PREAMBLE_SAMPLES
        i = 0
        while i <= last:
            if self._preamble_at(magnitude, i):
                starts.append(i)
                # Skip ahead past this frame; overlapping Mode S frames
                # garble each other in reality too.
                i += SHORT_FRAME_SAMPLES
            else:
                i += 1
        return starts

    def _preamble_at(self, magnitude: np.ndarray, i: int) -> bool:
        pulses = [magnitude[i + k] for k in PREAMBLE_PULSES]
        quiet = [magnitude[i + k] for k in PREAMBLE_QUIET]
        lo_pulse = min(pulses)
        hi_quiet = max(quiet) if quiet else 0.0
        if lo_pulse <= 0.0:
            return False
        return lo_pulse > self.preamble_snr_ratio * hi_quiet

    def slice_bits(
        self, magnitude: np.ndarray, start: int, n_bits: int = DF17_BITS
    ) -> Optional[List[int]]:
        """Slice ``n_bits`` data bits following a preamble at ``start``.

        Each bit compares the energy in its two half-slots; ties (both
        halves equally quiet) fail the slice.
        """
        base = start + PREAMBLE_SAMPLES
        if base + 2 * n_bits > len(magnitude):
            return None
        bits: List[int] = []
        for i in range(n_bits):
            first = magnitude[base + 2 * i]
            second = magnitude[base + 2 * i + 1]
            if first == second:
                return None
            bits.append(1 if first > second else 0)
        return bits

    def demodulate(
        self, samples: np.ndarray
    ) -> List[Tuple[int, bytes, float]]:
        """Find and slice every frame in a block of IQ samples.

        Like dump1090, the downlink format (first 5 bits) selects the
        message length: DF 16 and above are long (112-bit) frames,
        below are short (56-bit). Returns (start_index, frame_bytes,
        rssi_power) triples; CRC validation is the decoder's job.
        """
        magnitude = np.abs(samples)
        results: List[Tuple[int, bytes, float]] = []
        for start in self.detect_preambles(magnitude):
            head = self.slice_bits(magnitude, start, 5)
            if head is None:
                continue
            df = 0
            for bit in head:
                df = (df << 1) | bit
            n_bits = DF17_BITS if df >= 16 else DF11_BITS
            bits = self.slice_bits(magnitude, start, n_bits)
            if bits is None:
                continue
            frame = bits_to_frame_ref(bits)
            frame_samples = PREAMBLE_SAMPLES + 2 * n_bits
            seg = magnitude[start : start + frame_samples]
            # RSSI over pulse samples only (half the slots carry energy).
            rssi = float(np.mean(np.sort(seg)[len(seg) // 2 :] ** 2))
            results.append((start, frame, rssi))
        return results
