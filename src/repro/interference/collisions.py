"""ADS-B message collisions with capture-effect decoding.

1090 MHz is a shared medium: every transponder in the airspace emits
onto the same channel, and two squitters whose frames overlap at the
receiver garble each other — the same physical fact behind the
modem's skip-ahead over overlapping Mode S frames
(:meth:`repro.adsb.modem.PpmDemodulator.detect_preambles`). This
module resolves a whole capture's overlaps at once:

1. events (time-sorted, as both evaluator paths produce them) are
   merged into *overlap clusters*: maximal runs of frames chained by
   on-air overlap, found with one cumulative-max pass over frame end
   times;
2. per cluster, member powers sum in the linear domain
   (:func:`repro.interference.aggregate.group_power_mw`) — each
   frame's interference is the cluster total minus itself;
3. capture effect: a contested frame survives iff its SINR over that
   interference plus noise clears ``capture_margin_db``. At any
   margin above 0 dB at most one frame per cluster can win — the
   strongest — and two exactly-equal contenders both garble.

A frame with no overlap keeps the *legacy* power-threshold compare,
bit for bit: zero-interferer SINR decoding is exactly SNR decoding.

Treating a cluster as all-mutual interference slightly over-counts
chained overlaps (A-B-C where A and C never touch on air) — a
conservative, deterministic approximation over windows of at most a
few frame durations. The scalar oracle implements the identical rule
so the equivalence suite can hold the vectorized kernel to exact
agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.adsb.messages import DF11_BITS, DF17_BITS
from repro.interference.aggregate import (
    dbm_to_mw,
    dbm_to_mw_array,
    group_power_mw,
)

#: Mode S bits last 1 us; the preamble 8 us.
_PREAMBLE_US = 8.0

#: On-air duration of a long (DF17) frame: 8 us preamble + 112 us.
LONG_FRAME_DURATION_S = (_PREAMBLE_US + DF17_BITS) * 1e-6

#: On-air duration of a short (DF11) acquisition squitter.
SHORT_FRAME_DURATION_S = (_PREAMBLE_US + DF11_BITS) * 1e-6


def frame_durations_s(kind_idx: np.ndarray) -> np.ndarray:
    """On-air duration per event from the batch-schedule kind index.

    Acquisition squitters (``KIND_ACQUISITION``) are 56-bit DF11
    frames; every other kind is a 112-bit DF17.
    """
    from repro.batch.schedule import KIND_ACQUISITION

    kinds = np.asarray(kind_idx, dtype=np.int64)
    return np.where(
        kinds == KIND_ACQUISITION,
        SHORT_FRAME_DURATION_S,
        LONG_FRAME_DURATION_S,
    )


@dataclass(frozen=True)
class CollisionStats:
    """Shared-medium outcome of one capture.

    Attributes:
        n_events: squitters transmitted during the capture.
        n_contested: events whose frame overlapped >= 1 other frame.
        n_captured: contested events that still decoded (the capture
            effect: their SINR margin cleared the threshold).
        n_garbled: contested events that were strong enough to decode
            alone (cleared the power threshold) but lost to the
            collision.
    """

    n_events: int
    n_contested: int
    n_captured: int
    n_garbled: int

    @property
    def collision_rate(self) -> float:
        """Fraction of transmitted squitters that arrived contested."""
        if self.n_events == 0:
            return 0.0
        return self.n_contested / self.n_events

    def to_dict(self) -> Dict[str, int]:
        return {
            "n_events": self.n_events,
            "n_contested": self.n_contested,
            "n_captured": self.n_captured,
            "n_garbled": self.n_garbled,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CollisionStats":
        return cls(
            n_events=int(data["n_events"]),
            n_contested=int(data["n_contested"]),
            n_captured=int(data["n_captured"]),
            n_garbled=int(data["n_garbled"]),
        )


def overlap_clusters(
    time_s: np.ndarray, duration_s: np.ndarray
) -> np.ndarray:
    """Cluster index per event; events must be sorted by start time.

    An event joins the running cluster when it starts before the
    latest frame end seen so far; otherwise it opens a new cluster.
    One vectorized pass: cumulative max of end times, shifted, then a
    cumulative sum over the new-cluster boundaries.
    """
    t = np.asarray(time_s, dtype=np.float64)
    if t.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(np.diff(t) < 0.0):
        raise ValueError("events must be sorted by start time")
    ends = t + np.asarray(duration_s, dtype=np.float64)
    latest_end = np.maximum.accumulate(ends)
    new_cluster = np.ones(t.size, dtype=bool)
    new_cluster[1:] = t[1:] >= latest_end[:-1]
    return np.cumsum(new_cluster) - 1


def resolve_collisions(
    time_s: np.ndarray,
    duration_s: np.ndarray,
    rx_dbm: np.ndarray,
    threshold_dbm: float,
    noise_dbm: float,
    capture_margin_db: float,
) -> Tuple[np.ndarray, CollisionStats]:
    """Decide which squitters of a capture survive the shared medium.

    Returns a boolean decodable mask aligned with the (time-sorted)
    events plus the capture's :class:`CollisionStats`. Isolated
    events use the legacy ``rx_dbm >= threshold_dbm`` compare
    unchanged; contested events additionally need their SINR margin.
    """
    t = np.asarray(time_s, dtype=np.float64)
    rx = np.asarray(rx_dbm, dtype=np.float64)
    if t.size == 0:
        empty = np.zeros(0, dtype=bool)
        return empty, CollisionStats(0, 0, 0, 0)

    cluster = overlap_clusters(t, duration_s)
    n_clusters = int(cluster[-1]) + 1
    cluster_mw = group_power_mw(rx, cluster, n_clusters)
    own_mw = dbm_to_mw_array(rx)
    interference_mw = cluster_mw[cluster] - own_mw
    # A cluster of one leaves interference at exactly 0.0 (x - x);
    # clamp tiny negative residue from the subtraction anyway.
    interference_mw = np.maximum(interference_mw, 0.0)
    contested = np.bincount(cluster, minlength=n_clusters)[cluster] > 1

    above_threshold = rx >= threshold_dbm
    noise_mw = dbm_to_mw(noise_dbm)
    margin_linear = 10.0 ** (capture_margin_db / 10.0)
    # SINR >= margin, formed without a log so isolated events (where
    # the branch is never taken) cannot perturb the legacy compare.
    captures = own_mw >= margin_linear * (interference_mw + noise_mw)
    decodable = np.where(
        contested, above_threshold & captures, above_threshold
    )

    n_contested = int(contested.sum())
    n_captured = int((contested & decodable).sum())
    n_garbled = int(
        (contested & above_threshold & ~decodable).sum()
    )
    stats = CollisionStats(
        n_events=int(t.size),
        n_contested=n_contested,
        n_captured=n_captured,
        n_garbled=n_garbled,
    )
    return decodable, stats


def resolve_collisions_scalar(
    time_s: Sequence[float],
    duration_s: Sequence[float],
    rx_dbm: Sequence[float],
    threshold_dbm: float,
    noise_dbm: float,
    capture_margin_db: float,
) -> Tuple[List[bool], CollisionStats]:
    """One-event-at-a-time oracle for :func:`resolve_collisions`.

    Same rule, plain Python: the equivalence suite holds the
    vectorized kernel to exact agreement with this loop.
    """
    n = len(time_s)
    if n == 0:
        return [], CollisionStats(0, 0, 0, 0)
    clusters: List[List[int]] = []
    latest_end = -np.inf
    for i in range(n):
        if i > 0 and time_s[i] < time_s[i - 1]:
            raise ValueError("events must be sorted by start time")
        if time_s[i] >= latest_end or not clusters:
            clusters.append([])
        clusters[-1].append(i)
        latest_end = max(latest_end, time_s[i] + duration_s[i])

    noise_mw = dbm_to_mw(noise_dbm)
    margin_linear = 10.0 ** (capture_margin_db / 10.0)
    decodable = [False] * n
    n_contested = 0
    n_captured = 0
    n_garbled = 0
    for members in clusters:
        total_mw = 0.0
        for i in members:
            total_mw += dbm_to_mw(rx_dbm[i])
        for i in members:
            above = rx_dbm[i] >= threshold_dbm
            if len(members) == 1:
                decodable[i] = above
                continue
            n_contested += 1
            own_mw = dbm_to_mw(rx_dbm[i])
            interference_mw = max(total_mw - own_mw, 0.0)
            captured = own_mw >= margin_linear * (
                interference_mw + noise_mw
            )
            decodable[i] = above and captured
            if decodable[i]:
                n_captured += 1
            elif above:
                n_garbled += 1
    stats = CollisionStats(
        n_events=n,
        n_contested=n_contested,
        n_captured=n_captured,
        n_garbled=n_garbled,
    )
    return decodable, stats
