"""The aggregation core: interferer powers sum in the linear domain.

Received powers live in dBm almost everywhere in this codebase, but
powers do not add in the log domain — ``repro lint`` RL102 flags
``dbm + dbm`` as dimensionally wrong by construction. Every
aggregation here therefore converts to milliwatts, sums, and converts
back, and the helpers carry explicit ``_dbm``/``_mw`` suffixes so the
unit-discipline lint can check call sites.

The group/slot aggregators are the vectorized kernels the collision
model and the §3.2 sources ride on: one ``bincount`` per capture, no
per-event Python.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def dbm_to_mw(power_dbm: float) -> float:
    """Convert one power in dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert milliwatts back to dBm.

    Raises ValueError for non-positive powers rather than returning
    -inf silently; callers with possibly-empty sums should branch
    before converting.
    """
    if power_mw <= 0.0:
        raise ValueError(f"power must be positive: {power_mw} mW")
    return 10.0 * math.log10(power_mw)


def dbm_to_mw_array(power_dbm: np.ndarray) -> np.ndarray:
    """Batch :func:`dbm_to_mw`."""
    return 10.0 ** (np.asarray(power_dbm, dtype=np.float64) / 10.0)


def dbfs_to_linear(power_dbfs: float) -> float:
    """Convert a dBFS reading to a linear full-scale fraction.

    dBm -> dBFS is an affine offset, so SINR arithmetic carried out
    on full-scale fractions gives the same ratios as mW — but the
    quantities are not milliwatts, and the unit lint rightly refuses
    to let a dBFS value into :func:`dbm_to_mw`.
    """
    return 10.0 ** (power_dbfs / 10.0)


def linear_to_dbfs(fraction: float) -> float:
    """Convert a linear full-scale fraction back to dBFS."""
    if fraction <= 0.0:
        raise ValueError(f"fraction must be positive: {fraction}")
    return 10.0 * math.log10(fraction)


def power_sum_dbm(powers_dbm: Sequence[float]) -> float:
    """Total power of simultaneous emitters, in dBm.

    The linear-domain sum: order-independent up to float roundoff
    (the hypothesis suite holds it to permutation invariance).
    """
    total_mw = 0.0
    for p_dbm in powers_dbm:
        total_mw += dbm_to_mw(p_dbm)
    return mw_to_dbm(total_mw)


def group_power_mw(
    powers_dbm: np.ndarray,
    group_idx: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Linear-domain power total per group, in mW.

    ``group_idx`` assigns each emitter to a group (a collision
    cluster, a channel, a cell); the result has one mW total per
    group, zero for empty groups.
    """
    if n_groups < 0:
        raise ValueError(f"n_groups must be >= 0: {n_groups}")
    return np.bincount(
        np.asarray(group_idx, dtype=np.int64),
        weights=dbm_to_mw_array(powers_dbm),
        minlength=n_groups,
    )


def slot_power_mw(
    time_s: np.ndarray,
    powers_dbm: np.ndarray,
    slot_s: float,
    t0_s: float = 0.0,
    n_slots: int = 0,
) -> np.ndarray:
    """Aggregate emitter power per time-slot, in mW.

    The (sensor, band, time-slot) reduction: events are binned into
    ``slot_s``-wide slots starting at ``t0_s`` and their powers sum
    linearly per slot — the channel-occupancy picture the congestion
    experiment reports.
    """
    if slot_s <= 0.0:
        raise ValueError(f"slot width must be positive: {slot_s}")
    t = np.asarray(time_s, dtype=np.float64)
    slots = np.floor((t - t0_s) / slot_s).astype(np.int64)
    if slots.size and slots.min() < 0:
        raise ValueError("event before t0_s")
    return group_power_mw(
        np.asarray(powers_dbm, dtype=np.float64), slots, n_slots
    )


def sinr_db(
    signal_dbm: np.ndarray,
    interference_mw: np.ndarray,
    noise_mw: float,
) -> np.ndarray:
    """Signal-to-interference-plus-noise ratio, elementwise, in dB.

    ``interference_mw`` is the linear-domain total of every other
    simultaneous emitter; ``noise_mw`` the receiver noise in the
    signal bandwidth.
    """
    if noise_mw <= 0.0:
        raise ValueError(f"noise must be positive: {noise_mw} mW")
    signal_mw = dbm_to_mw_array(signal_dbm)
    denominator_mw = (
        np.asarray(interference_mw, dtype=np.float64) + noise_mw
    )
    return 10.0 * np.log10(signal_mw / denominator_mw)
