"""Shared-medium interference: SINR instead of SNR.

Every earlier scenario assumed one transmitter per capture. Real
spectrum is shared: 1090 MHz squitters from a dense airspace overlap
and garble each other, broadcast-TV receivers see adjacent-channel
bleed, and cellular channels carry co-channel neighbours. This package
adds the missing layer:

- :mod:`repro.interference.aggregate` — the aggregation core: sum
  interferer powers in the linear (mW) domain per group/time-slot and
  form SINR.
- :mod:`repro.interference.collisions` — ADS-B message collisions
  with capture-effect decoding, vectorized with a scalar oracle.
- :mod:`repro.interference.sources` — co-channel interferer sources
  for the §3.2 frequency path (adjacent-channel TV bleed,
  neighbouring-cell EARFCN overlap).
- :mod:`repro.interference.config` — :class:`InterferenceConfig`,
  the switch both evaluators accept. Default off: bit-identical to
  the interference-free pipeline.
"""

from repro.interference.aggregate import (  # noqa: F401
    dbfs_to_linear,
    dbm_to_mw,
    dbm_to_mw_array,
    group_power_mw,
    linear_to_dbfs,
    mw_to_dbm,
    power_sum_dbm,
    sinr_db,
    slot_power_mw,
)
from repro.interference.collisions import (  # noqa: F401
    CollisionStats,
    frame_durations_s,
    resolve_collisions,
    resolve_collisions_scalar,
)
from repro.interference.config import InterferenceConfig  # noqa: F401
from repro.interference.sources import (  # noqa: F401
    cell_cochannel_interference_mw,
    tv_adjacent_interference_mw,
)

__all__ = [
    "InterferenceConfig",
    "CollisionStats",
    "frame_durations_s",
    "resolve_collisions",
    "resolve_collisions_scalar",
    "dbm_to_mw",
    "dbm_to_mw_array",
    "dbfs_to_linear",
    "linear_to_dbfs",
    "mw_to_dbm",
    "power_sum_dbm",
    "group_power_mw",
    "slot_power_mw",
    "sinr_db",
    "tv_adjacent_interference_mw",
    "cell_cochannel_interference_mw",
]
