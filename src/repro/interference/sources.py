"""Co-channel interferer sources for the §3.2 frequency path.

Two effects a crowd-sourced receiver actually sees:

- **Adjacent-channel TV bleed.** A strong ATSC transmitter one RF
  channel away (N±1) leaks energy past the channel filter into the
  measured band, suppressed by the front end's adjacent-channel
  rejection. The measured channel power is biased upward and the
  effective noise floor rises.
- **Neighbouring-cell EARFCN overlap.** LTE reuses the same carrier
  across cells: every other tower on the victim's EARFCN radiates
  straight into the scan, degrading the per-resource-element SINR
  srsUE needs to synchronize.

Interferer powers are computed with the deterministic median link
budget (the verifier-side model — tower locations and powers are
public knowledge), so enabling interference consumes no extra RNG
draws and the scalar/batch evaluator paths stay in lockstep. Results
are returned in linear mW so empty interferer sets are an honest 0.0
rather than a -inf dBm.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cellular.tower import CellTower
from repro.environment.links import (
    direct_received_power_dbm,
    direct_received_power_dbm_multifreq,
)
from repro.environment.site import SiteEnvironment
from repro.interference.aggregate import dbm_to_mw, dbm_to_mw_array
from repro.sdr.antenna import Antenna
from repro.tv.tower import TvTower


def tv_adjacent_interference_mw(
    env: SiteEnvironment,
    antenna: Antenna,
    towers: Sequence[TvTower],
    rejection_db: float,
) -> np.ndarray:
    """Adjacent-channel bleed into each tower's band, in mW.

    Per victim tower: the linear sum of every other tower's received
    power (median budget through the node's antenna and obstruction
    map) whose RF channel is exactly one away, suppressed by
    ``rejection_db``.
    """
    if not towers:
        return np.zeros(0, dtype=np.float64)
    rx_dbm = direct_received_power_dbm_multifreq(
        env,
        [t.position for t in towers],
        np.array([t.erp_dbm for t in towers], dtype=np.float64),
        np.array(
            [t.center_freq_hz for t in towers], dtype=np.float64
        ),
        antenna,
    )
    leaked_mw = dbm_to_mw_array(rx_dbm - rejection_db)
    channels = np.array([t.channel for t in towers], dtype=np.int64)
    adjacent = (
        np.abs(channels[:, None] - channels[None, :]) == 1
    )
    return adjacent @ leaked_mw


def tv_adjacent_interference_mw_scalar(
    env: SiteEnvironment,
    antenna: Antenna,
    towers: Sequence[TvTower],
    rejection_db: float,
) -> List[float]:
    """Per-tower oracle for :func:`tv_adjacent_interference_mw`."""
    out: List[float] = []
    for victim in towers:
        total_mw = 0.0
        for other in towers:
            if abs(other.channel - victim.channel) != 1:
                continue
            rx_dbm = direct_received_power_dbm(
                env,
                other.position,
                other.erp_dbm,
                other.center_freq_hz,
                antenna,
            )
            total_mw += dbm_to_mw(rx_dbm - rejection_db)
        out.append(total_mw)
    return out


def cell_cochannel_interference_mw(
    env: SiteEnvironment,
    antenna: Antenna,
    towers: Sequence[CellTower],
) -> np.ndarray:
    """Same-EARFCN neighbour power per tower, per resource element, mW.

    Per victim tower: the linear sum of every *other* tower sharing
    its EARFCN, at the victim's reference-signal granularity (EIRP
    per resource element, like RSRP itself).
    """
    if not towers:
        return np.zeros(0, dtype=np.float64)
    rx_dbm = direct_received_power_dbm_multifreq(
        env,
        [t.position for t in towers],
        np.array(
            [t.eirp_per_re_dbm() for t in towers], dtype=np.float64
        ),
        np.array(
            [t.downlink_freq_hz for t in towers], dtype=np.float64
        ),
        antenna,
    )
    rx_mw = dbm_to_mw_array(rx_dbm)
    earfcns = np.array([t.earfcn for t in towers], dtype=np.int64)
    cochannel = earfcns[:, None] == earfcns[None, :]
    np.fill_diagonal(cochannel, False)
    return cochannel @ rx_mw


def cell_cochannel_interference_mw_scalar(
    env: SiteEnvironment,
    antenna: Antenna,
    towers: Sequence[CellTower],
) -> List[float]:
    """Per-tower oracle for :func:`cell_cochannel_interference_mw`."""
    out: List[float] = []
    for victim in towers:
        total_mw = 0.0
        for other in towers:
            if other is victim or other.earfcn != victim.earfcn:
                continue
            rx_dbm = direct_received_power_dbm(
                env,
                other.position,
                other.eirp_per_re_dbm(),
                other.downlink_freq_hz,
                antenna,
            )
            total_mw += dbm_to_mw(rx_dbm)
        out.append(total_mw)
    return out
