"""Configuration switch for the interference layer.

Both evaluators accept an :class:`InterferenceConfig`; ``None`` or
``enabled=False`` keeps the legacy single-transmitter pipeline
bit-identical (no code path diverges, no RNG draw is added).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default capture margin. Equal to the single-transmitter decode SNR
#: (:data:`repro.core.directional.DECODE_SNR_DB`) so the zero-
#: interferer limit of the SINR rule converges to the legacy SNR rule.
DEFAULT_CAPTURE_MARGIN_DB = 10.0


@dataclass(frozen=True)
class InterferenceConfig:
    """Shared-medium interference knobs for both evaluators.

    Attributes:
        enabled: master switch. Off (the default) is bit-identical to
            the interference-free pipeline.
        capture_margin_db: SINR a squitter needs over the linear sum
            of its overlap group's other frames plus noise to survive
            a collision (the capture effect). At the default 10 dB —
            the same figure as the single-transmitter decode SNR —
            an isolated frame decodes under exactly the legacy rule.
        tv_adjacent_rejection_db: how much the TV channel filter
            suppresses an adjacent (N±1) channel's energy before it
            leaks into the measured band. Typical first-adjacent
            selectivity of a consumer front end is 30-40 dB.
        tv_min_sinr_db: margin the TV signal needs over receiver
            noise plus adjacent-channel bleed to count as decoded;
            matches the legacy 3 dB above-noise criterion.
        cell_min_sinr_db: per-resource-element SINR below which the
            srsUE-style scanner loses synchronization to a cell. LTE
            PSS/SSS correlation works a few dB below the co-channel
            floor, hence the negative default.
    """

    enabled: bool = False
    capture_margin_db: float = DEFAULT_CAPTURE_MARGIN_DB
    tv_adjacent_rejection_db: float = 30.0
    tv_min_sinr_db: float = 3.0
    cell_min_sinr_db: float = -6.0

    def __post_init__(self) -> None:
        if self.tv_adjacent_rejection_db < 0.0:
            raise ValueError(
                "adjacent-channel rejection must be >= 0 dB: "
                f"{self.tv_adjacent_rejection_db}"
            )
