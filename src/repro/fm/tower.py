"""FM broadcast transmitter model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fm.channels import fm_channel_center_hz
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class FmTower:
    """One FM broadcast station.

    Attributes:
        callsign: station callsign, for reports.
        channel: FCC channel number (200-300).
        position: transmitter site (altitude = radiation center).
        erp_dbm: effective radiated power toward the horizon. Full
            class B/C stations run 50-100 kW (77-80 dBm).
    """

    callsign: str
    channel: int
    position: GeoPoint
    erp_dbm: float = 77.0

    def __post_init__(self) -> None:
        fm_channel_center_hz(self.channel)  # validates the channel

    @property
    def center_freq_hz(self) -> float:
        return fm_channel_center_hz(self.channel)
