"""FM broadcast substrate — an additional signal of opportunity.

The paper's §5 ("RF sources") calls for "identifying and incorporating
additional RF sources to enhance the comprehensiveness ... of the
calibration techniques". FM broadcast (87.9-107.9 MHz) extends the
frequency-response evaluation below the TV band: transmitters are
ubiquitous, high-power, and their locations/frequencies are public.

The measurement reuses the same GNU Radio-style chain as the TV meter,
over a 200 kHz FM channel; the synthetic waveform is true wideband FM
(constant envelope, 75 kHz deviation) of noise-like audio.
"""

from repro.fm.channels import (
    FM_CHANNEL_SPACING_HZ,
    fm_channel_center_hz,
    fm_channel_for_freq,
)
from repro.fm.tower import FmTower
from repro.fm.waveform import fm_waveform
from repro.fm.meter import FmMeasurement, FmPowerMeter

__all__ = [
    "FM_CHANNEL_SPACING_HZ",
    "fm_channel_center_hz",
    "fm_channel_for_freq",
    "FmTower",
    "fm_waveform",
    "FmMeasurement",
    "FmPowerMeter",
]
