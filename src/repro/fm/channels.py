"""The North American FM channel plan (FCC §73.201).

Channels 200-300 at 200 kHz spacing: channel 200 is 87.9 MHz, channel
300 is 107.9 MHz. Stations are conventionally named by frequency
("94.7"), but the channel number is the canonical key.
"""

from __future__ import annotations

#: FM channel spacing in North America.
FM_CHANNEL_SPACING_HZ = 200e3

#: FCC channel number range.
FM_CHANNEL_MIN = 200
FM_CHANNEL_MAX = 300

#: Channel 200 center frequency.
_CHANNEL_200_HZ = 87.9e6


def fm_channel_center_hz(channel: int) -> float:
    """Center frequency of an FCC FM channel number."""
    if not FM_CHANNEL_MIN <= channel <= FM_CHANNEL_MAX:
        raise ValueError(f"unknown FM channel: {channel}")
    return _CHANNEL_200_HZ + (channel - FM_CHANNEL_MIN) * (
        FM_CHANNEL_SPACING_HZ
    )


def fm_channel_for_freq(freq_hz: float) -> int:
    """FCC channel number whose center is ``freq_hz``.

    Raises ValueError for off-raster or out-of-band frequencies.
    """
    steps = (freq_hz - _CHANNEL_200_HZ) / FM_CHANNEL_SPACING_HZ
    channel = FM_CHANNEL_MIN + int(round(steps))
    if abs(steps - round(steps)) > 1e-6:
        raise ValueError(f"{freq_hz} Hz is off the FM raster")
    if not FM_CHANNEL_MIN <= channel <= FM_CHANNEL_MAX:
        raise ValueError(f"{freq_hz} Hz is outside the FM band")
    return channel
