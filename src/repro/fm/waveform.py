"""Synthetic wideband-FM baseband waveform.

Real FM: constant-envelope, phase = integral of the audio, peak
deviation 75 kHz, audio band-limited to 15 kHz (plus pilot/SCA
subcarriers we fold into the noise-like program). By Carson's rule the
occupied bandwidth is ~2*(75+15) = 180 kHz, inside the 200 kHz channel.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import (
    design_lowpass_fir_cached,
    fft_fir_filter,
    fir_filter,
)
from repro.dsp.iq import frequency_shift

#: Peak frequency deviation.
FM_DEVIATION_HZ = 75e3

#: Audio (modulating) bandwidth.
FM_AUDIO_BW_HZ = 15e3

#: Carson-rule occupied bandwidth.
FM_OCCUPIED_HZ = 2.0 * (FM_DEVIATION_HZ + FM_AUDIO_BW_HZ)


def fm_waveform(
    rng: np.random.Generator,
    n_samples: int,
    sample_rate_hz: float,
    channel_offset_hz: float = 0.0,
    num_taps: int = 101,
    filter_mode: str = "direct",
) -> np.ndarray:
    """Unit-power FM waveform at a baseband offset.

    The program material is band-limited Gaussian noise, scaled so the
    RMS deviation is ~FM_DEVIATION_HZ/3 (typical program loudness).
    Constant envelope by construction: |x| = 1 everywhere.

    ``num_taps`` (101 at the original 1 Msps design) must scale with
    the sample rate for wideband captures; ``filter_mode="fft"``
    applies the audio filter via overlap-save for long tap counts.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive: {n_samples}")
    if filter_mode not in ("direct", "fft"):
        raise ValueError(
            f"filter_mode must be 'direct' or 'fft': {filter_mode!r}"
        )
    nyquist = sample_rate_hz / 2.0
    if abs(channel_offset_hz) + FM_OCCUPIED_HZ / 2.0 >= nyquist:
        raise ValueError(
            f"FM channel at offset {channel_offset_hz} Hz does not "
            f"fit in a {sample_rate_hz} Hz capture"
        )
    audio = rng.standard_normal(n_samples)
    taps = design_lowpass_fir_cached(
        FM_AUDIO_BW_HZ, sample_rate_hz, num_taps
    )
    if filter_mode == "fft":
        audio = fft_fir_filter(taps, audio)
    else:
        audio = fir_filter(taps, audio)
    rms = float(np.sqrt(np.mean(audio**2)))
    if rms <= 0.0:
        raise RuntimeError("degenerate audio power")
    audio = audio / rms  # unit RMS

    deviation = FM_DEVIATION_HZ / 3.0  # RMS deviation
    phase = (
        2.0
        * np.pi
        * deviation
        * np.cumsum(audio)
        / sample_rate_hz
    )
    signal = np.exp(1j * phase)
    if channel_offset_hz != 0.0:
        signal = frequency_shift(
            signal, channel_offset_hz, sample_rate_hz
        )
    return signal
