"""FM channel-power measurement.

Identical measurement philosophy to the paper's TV program: bandpass
the 200 kHz channel, magnitude-square, long moving average, fixed SDR
gain, dBFS output. Budget and full-IQ paths provided, like
:class:`repro.tv.meter.TvPowerMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.dsp.channelizer import (
    ChannelSpec,
    Channelizer,
    plan_capture_groups,
)
from repro.dsp.filters import scaled_num_taps
from repro.dsp.power import ParsevalPowerMeter
from repro.environment.links import (
    direct_received_power_dbm,
    direct_received_power_dbm_multifreq,
)
from repro.environment.site import SiteEnvironment
from repro.fm.tower import FmTower
from repro.fm.waveform import FM_OCCUPIED_HZ, fm_waveform
from repro.sdr.antenna import Antenna
from repro.sdr.capture import CaptureSession, WidebandCapture
from repro.sdr.frontend import SdrFrontEnd

#: Capture sample rate for FM measurements.
FM_SAMPLE_RATE_HZ = 1e6

#: FM broadcast channel width (FCC raster).
FM_CHANNEL_WIDTH_HZ = 200e3

#: Headroom factor between a capture group's span and its sample rate.
CAPTURE_GUARD_FACTOR = 1.05


@dataclass(frozen=True)
class FmMeasurement:
    """One FM channel-power measurement."""

    callsign: str
    channel: int
    freq_hz: float
    power_dbfs: float
    above_noise_db: float


@dataclass
class FmPowerMeter:
    """Measures FM station power from one sensor node."""

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna

    def received_power_dbm(self, tower: FmTower) -> float:
        """Median received channel power at the SDR input."""
        return direct_received_power_dbm(
            self.env,
            tower.position,
            tower.erp_dbm,
            tower.center_freq_hz,
            self.antenna,
        )

    def noise_dbfs(self) -> float:
        """Receiver noise within the occupied bandwidth, in dBFS."""
        noise_dbm = self.sdr.noise_floor_dbm(FM_OCCUPIED_HZ)
        return self.sdr.input_dbm_to_dbfs(noise_dbm)

    def measure_budget(self, tower: FmTower) -> FmMeasurement:
        """Fast link-budget measurement."""
        power_dbm = self.received_power_dbm(tower)
        power_dbfs = self.sdr.input_dbm_to_dbfs(power_dbm)
        return FmMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def measure_iq(
        self,
        tower: FmTower,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
        sample_rate_hz: float = FM_SAMPLE_RATE_HZ,
    ) -> FmMeasurement:
        """Full-DSP measurement through the filter/averager chain."""
        self.sdr.check_tune(tower.center_freq_hz)
        session = CaptureSession(
            sdr=self.sdr,
            antenna=self.antenna,
            center_freq_hz=tower.center_freq_hz,
            sample_rate_hz=sample_rate_hz,
        )
        waveform = fm_waveform(rng, n_samples, sample_rate_hz)
        power_dbm = self.received_power_dbm(tower)
        capture = session.capture(
            [(waveform, power_dbm)], rng, n_samples
        )
        half = FM_OCCUPIED_HZ / 2.0
        meter = ParsevalPowerMeter(
            sample_rate_hz=sample_rate_hz,
            band_low_hz=-half,
            band_high_hz=half,
            average_window=max(n_samples // 2, 1024),
        )
        power_dbfs = meter.read_dbfs(capture.samples)
        return FmMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def received_power_dbm_batch(
        self, towers: Sequence[FmTower]
    ) -> np.ndarray:
        """Median received power for many stations in one array pass."""
        return direct_received_power_dbm_multifreq(
            self.env,
            [t.position for t in towers],
            np.array([t.erp_dbm for t in towers], dtype=np.float64),
            np.array(
                [t.center_freq_hz for t in towers], dtype=np.float64
            ),
            self.antenna,
        )

    def measure_budget_batch(
        self, towers: Sequence[FmTower]
    ) -> List[FmMeasurement]:
        """Batch :meth:`measure_budget`: all stations in one pass."""
        if not towers:
            return []
        power_dbfs = self.sdr.input_dbm_to_dbfs_array(
            self.received_power_dbm_batch(towers)
        )
        noise = self.noise_dbfs()
        return [
            FmMeasurement(
                callsign=t.callsign,
                channel=t.channel,
                freq_hz=t.center_freq_hz,
                power_dbfs=float(p),
                above_noise_db=float(p) - noise,
            )
            for t, p in zip(towers, power_dbfs)
        ]

    def measure_iq_batch(
        self,
        towers: Sequence[FmTower],
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
    ) -> List[FmMeasurement]:
        """Channelized IQ measurement: one capture per station group.

        Same structure and RNG draw-order contract as
        :meth:`repro.tv.meter.TvPowerMeter.measure_iq_batch`: per
        group, station waveforms are synthesized in ascending channel
        order, then one AWGN block covers the whole capture. The whole
        FM band fits one BladeRF capture, so the usual cost is a
        single wideband capture for every station.
        """
        if not towers:
            return []
        for t in towers:
            self.sdr.check_tune(t.center_freq_hz)
        half_channel = FM_CHANNEL_WIDTH_HZ / 2.0
        edges = [
            (
                t.center_freq_hz - half_channel,
                t.center_freq_hz + half_channel,
            )
            for t in towers
        ]
        groups = plan_capture_groups(
            edges, self.sdr.max_sample_rate_hz / CAPTURE_GUARD_FACTOR
        )
        power_dbm = self.received_power_dbm_batch(towers)
        noise = self.noise_dbfs()
        results: Dict[int, FmMeasurement] = {}
        for group in groups:
            low = min(edges[i][0] for i in group)
            high = max(edges[i][1] for i in group)
            center = 0.5 * (low + high)
            rate = min(
                max(
                    (high - low) * CAPTURE_GUARD_FACTOR,
                    FM_SAMPLE_RATE_HZ,
                ),
                self.sdr.max_sample_rate_hz,
            )
            session = WidebandCapture(
                sdr=self.sdr,
                antenna=self.antenna,
                center_freq_hz=center,
                sample_rate_hz=rate,
            )
            num_taps = scaled_num_taps(101, FM_SAMPLE_RATE_HZ, rate)
            signals = []
            for i in group:
                waveform = fm_waveform(
                    rng,
                    n_samples,
                    rate,
                    num_taps=num_taps,
                    filter_mode="fft",
                )
                signals.append(
                    (
                        waveform,
                        towers[i].center_freq_hz - center,
                        float(power_dbm[i]),
                    )
                )
            buffer = session.capture_channels(signals, rng, n_samples)
            channelizer = Channelizer(
                rate,
                [
                    ChannelSpec(
                        label=towers[i].callsign,
                        offset_hz=towers[i].center_freq_hz - center,
                        bandwidth_hz=FM_OCCUPIED_HZ,
                    )
                    for i in group
                ],
            )
            dbfs = channelizer.band_powers_dbfs(buffer.samples)
            for i, p in zip(group, dbfs):
                results[i] = FmMeasurement(
                    callsign=towers[i].callsign,
                    channel=towers[i].channel,
                    freq_hz=towers[i].center_freq_hz,
                    power_dbfs=float(p),
                    above_noise_db=float(p) - noise,
                )
        return [results[i] for i in range(len(towers))]
