"""FM channel-power measurement.

Identical measurement philosophy to the paper's TV program: bandpass
the 200 kHz channel, magnitude-square, long moving average, fixed SDR
gain, dBFS output. Budget and full-IQ paths provided, like
:class:`repro.tv.meter.TvPowerMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.power import ParsevalPowerMeter
from repro.environment.links import direct_received_power_dbm
from repro.environment.site import SiteEnvironment
from repro.fm.tower import FmTower
from repro.fm.waveform import FM_OCCUPIED_HZ, fm_waveform
from repro.sdr.antenna import Antenna
from repro.sdr.capture import CaptureSession
from repro.sdr.frontend import SdrFrontEnd

#: Capture sample rate for FM measurements.
FM_SAMPLE_RATE_HZ = 1e6


@dataclass(frozen=True)
class FmMeasurement:
    """One FM channel-power measurement."""

    callsign: str
    channel: int
    freq_hz: float
    power_dbfs: float
    above_noise_db: float


@dataclass
class FmPowerMeter:
    """Measures FM station power from one sensor node."""

    env: SiteEnvironment
    sdr: SdrFrontEnd
    antenna: Antenna

    def received_power_dbm(self, tower: FmTower) -> float:
        """Median received channel power at the SDR input."""
        return direct_received_power_dbm(
            self.env,
            tower.position,
            tower.erp_dbm,
            tower.center_freq_hz,
            self.antenna,
        )

    def noise_dbfs(self) -> float:
        """Receiver noise within the occupied bandwidth, in dBFS."""
        noise_dbm = self.sdr.noise_floor_dbm(FM_OCCUPIED_HZ)
        return self.sdr.input_dbm_to_dbfs(noise_dbm)

    def measure_budget(self, tower: FmTower) -> FmMeasurement:
        """Fast link-budget measurement."""
        power_dbm = self.received_power_dbm(tower)
        power_dbfs = self.sdr.input_dbm_to_dbfs(power_dbm)
        return FmMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )

    def measure_iq(
        self,
        tower: FmTower,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
        sample_rate_hz: float = FM_SAMPLE_RATE_HZ,
    ) -> FmMeasurement:
        """Full-DSP measurement through the filter/averager chain."""
        self.sdr.check_tune(tower.center_freq_hz)
        session = CaptureSession(
            sdr=self.sdr,
            antenna=self.antenna,
            center_freq_hz=tower.center_freq_hz,
            sample_rate_hz=sample_rate_hz,
        )
        waveform = fm_waveform(rng, n_samples, sample_rate_hz)
        power_dbm = self.received_power_dbm(tower)
        capture = session.capture(
            [(waveform, power_dbm)], rng, n_samples
        )
        half = FM_OCCUPIED_HZ / 2.0
        meter = ParsevalPowerMeter(
            sample_rate_hz=sample_rate_hz,
            band_low_hz=-half,
            band_high_hz=half,
            average_window=max(n_samples // 2, 1024),
        )
        power_dbfs = meter.read_dbfs(capture.samples)
        return FmMeasurement(
            callsign=tower.callsign,
            channel=tower.channel,
            freq_hz=tower.center_freq_hz,
            power_dbfs=power_dbfs,
            above_noise_db=power_dbfs - self.noise_dbfs(),
        )
