"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``calibrate --location {rooftop,window,indoor}`` — run the full
  automatic-calibration pipeline on a node at one of the testbed
  locations and print the report (``--json FILE`` writes the full
  machine-readable report; ``--traffic dense-urban`` runs it under a
  congested airspace).
- ``interference [--densities N,N,...]`` — sweep traffic density
  through the shared-medium collision model and print how collision
  rate degrades decodes, FoV agreement and trust (§3.1 under
  congestion).
- ``figure {1,2,3,4,fm}`` — regenerate one of the paper's figures as
  a terminal table.
- ``trust`` — run the fabrication-detection experiment.
- ``fleet [--workers N] [--cache-dir DIR] [--checkpoint FILE]
  [--resume]`` — calibrate the 12-node fleet through the
  :mod:`repro.runtime` campaign machinery (parallel workers, retries,
  result cache, resumable checkpoints) and print the marketplace.
- ``schedule --windows N`` — compare measurement-scheduling
  strategies for a daily budget.
- ``stream --source {replay,sim}`` — run the live ingest gateway:
  online incremental calibration over a replayed or simulated record
  stream, with drift detection and re-calibration requests
  (``--window``, ``--drift-threshold``, ``--swap-to`` for the drift
  scenario).
- ``serve [--source {synthetic,fleet,file}] [--port P]`` — the
  spectrum-data query API: an asyncio HTTP/JSON gateway over a fleet
  snapshot (node assessments, FoV maps, trust, drift, band power)
  with ETag/TTL caching and cursor pagination.
- ``lint [PATH ...]`` — the domain-aware static analyzer (unit
  suffixes, determinism, lock hygiene, interface hygiene); all
  arguments are forwarded to :mod:`repro.lint`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.network import CalibrationService
from repro.core.serialize import report_to_json
from repro.experiments import (
    crosscheck_exp,
    figure1,
    figure2,
    figure3,
    figure4,
    fleet,
    fm_extension,
    scheduling,
    trust,
)
from repro.airspace.traffic import TRAFFIC_PRESETS
from repro.experiments.common import LOCATIONS, build_world
from repro.node.sensor import SensorNode


def _add_engine_args(sub: argparse.ArgumentParser) -> None:
    """The compute-backend flags shared by calibrate and fleet."""
    from repro.engines import engine_names

    sub.add_argument(
        "--engine",
        choices=engine_names(),
        help="compute backend (default: $REPRO_ENGINE or numpy); "
        "accelerated backends fall back to numpy when their "
        "dependency is missing",
    )
    sub.add_argument(
        "--path-cache",
        choices=["on", "off"],
        default="on",
        help="reuse content-keyed stage results across captures and "
        "runs (bit-identical; default: on)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automatic calibration of crowd-sourced spectrum sensors "
            "(HotNets '23 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    calibrate = sub.add_parser(
        "calibrate", help="calibrate one node end to end"
    )
    calibrate.add_argument(
        "--location",
        choices=LOCATIONS,
        default="window",
        help="testbed installation to evaluate",
    )
    calibrate.add_argument(
        "--seed", type=int, default=1, help="simulation seed"
    )
    calibrate.add_argument(
        "--json",
        metavar="FILE",
        help="also write the machine-readable report to FILE",
    )
    calibrate.add_argument(
        "--traffic",
        choices=sorted(TRAFFIC_PRESETS),
        default="default",
        help="traffic-density preset the airspace is populated with",
    )
    _add_engine_args(calibrate)

    interference = sub.add_parser(
        "interference",
        help=(
            "sweep traffic density through the 1090 MHz collision "
            "model (SINR + capture effect)"
        ),
    )
    interference.add_argument(
        "--location", choices=LOCATIONS, default="rooftop",
        help="testbed installation to evaluate",
    )
    interference.add_argument(
        "--seed", type=int, default=1, help="simulation seed"
    )
    interference.add_argument(
        "--densities", metavar="N,N,...",
        help="comma-separated aircraft counts to sweep "
        "(default: 60,120,240,480)",
    )
    interference.add_argument(
        "--duration", type=float, default=30.0,
        help="capture length per run in seconds",
    )

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure"
    )
    figure.add_argument(
        "which", choices=["1", "2", "3", "4", "fm"],
        help="figure number (fm = the FM extension)",
    )
    figure.add_argument("--seed", type=int, default=1)

    sub.add_parser("trust", help="run the fabrication-detection experiment")

    fleet_cmd = sub.add_parser(
        "fleet",
        help=(
            "calibrate a 12-node fleet through the parallel runtime "
            "and print the marketplace"
        ),
    )
    fleet_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker pool size (1 = serial, bit-identical to seed)",
    )
    fleet_cmd.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="worker pool backend",
    )
    fleet_cmd.add_argument(
        "--seed", type=int, default=95, help="campaign base seed"
    )
    fleet_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache; unchanged nodes skip "
        "recomputation on re-runs",
    )
    fleet_cmd.add_argument(
        "--checkpoint", metavar="FILE",
        help="campaign manifest, rewritten after every finished job",
    )
    fleet_cmd.add_argument(
        "--resume", action="store_true",
        help="restore completed jobs from --checkpoint and run only "
        "the remainder",
    )
    fleet_cmd.add_argument(
        "--max-jobs", type=int, metavar="N",
        help="stop after N jobs (simulates a partial run; combine "
        "with --checkpoint/--resume)",
    )
    fleet_cmd.add_argument(
        "--fail-node", metavar="NODE_ID",
        help="inject a crash fault into one node to exercise "
        "retry/partial-failure handling",
    )
    fleet_cmd.add_argument(
        "--json", metavar="FILE",
        help="write the full network evaluation (assessments + "
        "failures + campaign metrics) as JSON; `repro serve "
        "--source file` loads it",
    )
    _add_engine_args(fleet_cmd)
    fleet_cmd.add_argument(
        "--path-cache-dir", metavar="DIR",
        help="persist path-cache entries under DIR so later "
        "campaigns (and process workers) start warm",
    )
    sub.add_parser(
        "crosscheck",
        help="tracker-free peer cross-validation of five nodes",
    )

    schedule = sub.add_parser(
        "schedule", help="compare measurement schedules"
    )
    schedule.add_argument(
        "--windows", type=int, default=4,
        help="measurement windows per day",
    )

    ingest = sub.add_parser(
        "ingest",
        help=(
            "evaluate a real dump1090 SBS feed against an archived "
            "flight-tracker report"
        ),
    )
    ingest.add_argument(
        "--sbs", required=True, metavar="FILE",
        help="SBS-1 (BaseStation, port 30003) capture file",
    )
    ingest.add_argument(
        "--tracker", required=True, metavar="FILE",
        help="flight-tracker report JSON (see flight_reports_to_json)",
    )
    ingest.add_argument("--lat", type=float, required=True)
    ingest.add_argument("--lon", type=float, required=True)
    ingest.add_argument("--alt", type=float, default=0.0)

    stream = sub.add_parser(
        "stream",
        help=(
            "run the live ingest gateway: online incremental "
            "calibration with drift detection"
        ),
    )
    stream.add_argument(
        "--source", choices=["replay", "sim"], default="sim",
        help="replay a recorded scan, or simulate a live node "
        "window by window",
    )
    stream.add_argument(
        "--location", choices=LOCATIONS, default="rooftop",
        help="testbed installation the node streams from",
    )
    stream.add_argument(
        "--scan", metavar="FILE",
        help="recorded scan JSON to replay (replay source; default: "
        "simulate one fresh scan first)",
    )
    stream.add_argument(
        "--windows", type=int, default=4,
        help="measurement windows to stream (sim source)",
    )
    stream.add_argument(
        "--window", type=float, default=30.0,
        help="calibration window length in stream seconds",
    )
    stream.add_argument(
        "--drift-threshold", type=float, default=0.30,
        help="sector-disagreement fraction that triggers "
        "re-calibration",
    )
    stream.add_argument(
        "--swap-to", choices=LOCATIONS, metavar="LOCATION",
        help="sim: move the node to this location mid-stream (the "
        "drift scenario)",
    )
    stream.add_argument(
        "--swap-at", type=int, metavar="K",
        help="sim: window index the swap happens at (default: "
        "halfway)",
    )
    stream.add_argument(
        "--queue-capacity", type=int, default=1024,
        help="per-node broker queue bound",
    )
    stream.add_argument(
        "--policy", choices=["block", "drop-oldest", "reject"],
        default="block", help="broker overflow policy",
    )
    stream.add_argument(
        "--seed", type=int, default=11, help="simulation seed"
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "serve the fleet query API (assessments, FoV, trust, "
            "drift, band power) over HTTP"
        ),
    )
    serve.add_argument(
        "--source", choices=["synthetic", "fleet", "file"],
        default="synthetic",
        help="fleet to serve: a synthetic N-node fleet, the "
        "12-node testbed fleet (calibrated first), or a "
        "`repro fleet --json` dump",
    )
    serve.add_argument(
        "--nodes", type=int, default=1000,
        help="synthetic fleet size",
    )
    serve.add_argument(
        "--file", metavar="FILE",
        help="network-evaluation JSON to serve (--source file)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="listen port (0 = pick a free port)",
    )
    serve.add_argument(
        "--ttl", type=float, default=5.0,
        help="response-cache TTL in seconds",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=64,
        help="in-flight request bound",
    )
    serve.add_argument(
        "--max-requests", type=int, metavar="N",
        help="stop after serving N requests (smoke tests, demos)",
    )
    serve.add_argument(
        "--port-file", metavar="FILE",
        help="write the bound 'host port' to FILE once listening",
    )
    serve.add_argument(
        "--seed", type=int, default=7,
        help="synthetic-fleet / fleet-calibration seed",
    )

    # The lint tool owns its own argparse; forward everything so
    # `repro lint --help` shows the analyzer's options, not ours.
    lint = sub.add_parser(
        "lint",
        add_help=False,
        help=(
            "run the domain-aware static analyzer (units, "
            "determinism, concurrency, interfaces)"
        ),
    )
    lint.add_argument("rest", nargs=argparse.REMAINDER)
    return parser


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.engines import configure_path_cache

    configure_path_cache(enabled=args.path_cache == "on")
    world = build_world(traffic_preset=args.traffic)
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
        fm_towers=world.testbed.fm_towers,
        engine=args.engine,
    )
    node = SensorNode(
        f"{args.location}-node", world.testbed.site(args.location)
    )
    assessment = service.evaluate_node(node, seed=args.seed)
    print(assessment.report.render_text())
    print()
    print("Per-sector/per-band usability (renter's view):")
    print(assessment.report.render_usability())
    print()
    print(f"Trust score: {assessment.trust.trust_score():.2f}")
    for check in assessment.trust.checks:
        status = "pass" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    if assessment.claim_violations:
        print("Claim violations:")
        for violation in assessment.claim_violations:
            print(f"  - {violation.claim}: {violation.evidence}")
    if args.json:
        with open(args.json, "w") as f:
            f.write(report_to_json(assessment.report, indent=2))
        print(f"wrote {args.json}")
    return 0


def _cmd_interference(args: argparse.Namespace) -> int:
    from repro.experiments import interference_exp

    if args.duration <= 0.0:
        print("--duration must be positive", file=sys.stderr)
        return 2
    if args.densities is not None:
        try:
            densities = [
                int(part) for part in args.densities.split(",") if part
            ]
        except ValueError:
            print(
                "--densities must be comma-separated integers",
                file=sys.stderr,
            )
            return 2
        if not densities or any(d <= 0 for d in densities):
            print(
                "--densities needs at least one positive count",
                file=sys.stderr,
            )
            return 2
    else:
        densities = list(interference_exp.DEFAULT_DENSITIES)
    points = interference_exp.run_density_sweep(
        densities=densities,
        location=args.location,
        seed=args.seed,
        duration_s=args.duration,
    )
    print(interference_exp.format_rows(points))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    world = build_world()
    if args.which == "1":
        panels = figure1.run_figure1(world=world, seed=args.seed)
        print(figure1.format_summary(panels))
        for panel in panels:
            print()
            print(figure1.render_ascii_polar(panel))
    elif args.which == "2":
        print(figure2.format_layout(figure2.run_figure2(world.testbed)))
    elif args.which == "3":
        print(figure3.format_bars(figure3.run_figure3(world=world)))
    elif args.which == "4":
        print(figure4.format_bars(figure4.run_figure4(world=world)))
    else:
        print(
            fm_extension.format_bars(
                fm_extension.run_fm_extension(world=world)
            )
        )
    return 0


def _cmd_trust(_args: argparse.Namespace) -> int:
    world = build_world()
    print(trust.format_rows(trust.run_trust_experiment(world=world)))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(
            f"--workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.fail_node is not None:
        from repro.runtime.campaign import standard_fleet_specs

        known = [s.node_id for s in standard_fleet_specs()]
        if args.fail_node not in known:
            print(
                f"--fail-node: unknown node {args.fail_node!r}"
                f" (fleet nodes: {', '.join(known)})",
                file=sys.stderr,
            )
            return 2
    world = build_world()
    result = fleet.run_fleet(
        world=world,
        seed=args.seed,
        workers=args.workers,
        executor=args.executor,
        cache_dir=args.cache_dir,
        checkpoint=args.checkpoint,
        resume=args.resume,
        max_jobs=args.max_jobs,
        fail_node=args.fail_node,
        engine=args.engine,
        path_cache=args.path_cache == "on",
        path_cache_dir=args.path_cache_dir,
    )
    print(fleet.format_marketplace(result))
    if result.campaign is not None:
        print()
        print(result.campaign.summary_text())
    if args.json:
        from repro.core.serialize import network_to_json

        with open(args.json, "w") as f:
            f.write(network_to_json(_fleet_network(result), indent=2))
        print(f"wrote {args.json}")
    return 0


def _fleet_network(result):
    """FleetResult -> NetworkAssessments (campaign failures included)."""
    from repro.core.network import (
        AssessmentFailure,
        NetworkAssessments,
    )

    network = NetworkAssessments(result.assessments)
    if result.campaign is not None:
        for entry in result.campaign.failed():
            network.failures[entry.job_id] = AssessmentFailure(
                node_id=entry.job_id,
                error=entry.errors[-1] if entry.errors else "failed",
                exception_type="JobFailed",
            )
        network.metrics = dict(result.campaign.metrics)
    return network


def _cmd_crosscheck(_args: argparse.Namespace) -> int:
    world = build_world()
    print(
        crosscheck_exp.format_rows(
            crosscheck_exp.run_crosscheck_experiment(world=world)
        )
    )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.windows <= 0:
        print("--windows must be positive", file=sys.stderr)
        return 2
    rows = scheduling.run_scheduling(
        budgets=list(range(1, args.windows + 1))
    )
    print(scheduling.format_rows(rows))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.core.fov import KnnFovEstimator
    from repro.core.ingest import (
        flight_reports_from_json,
        scan_from_sbs,
    )
    from repro.core.network import TrustEvaluator
    from repro.geo.coords import GeoPoint

    with open(args.sbs) as f:
        lines = f.readlines()
    with open(args.tracker) as f:
        reports = flight_reports_from_json(f.read())
    receiver = GeoPoint(args.lat, args.lon, args.alt)
    scan = scan_from_sbs(
        lines, reports, node_id="ingested", receiver_position=receiver
    )
    print(
        f"{len(scan.received)}/{len(scan.observations)} tracked "
        f"aircraft received ({scan.decoded_message_count} messages, "
        f"{len(scan.ghost_icaos)} ghosts)"
    )
    fov = KnnFovEstimator().estimate(scan)
    sectors = ", ".join(
        f"{s.start_deg:.0f}-{s.end_deg:.0f} deg"
        for s in fov.open_sectors()
    ) or "none"
    print(
        f"Estimated field of view: {fov.open_fraction():.0%} open "
        f"[{sectors}]"
    )
    assessment = TrustEvaluator().assess(scan)
    for check in assessment.checks:
        status = "pass" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.core.directional import DirectionalEvaluator
    from repro.core.serialize import scan_from_dict
    from repro.stream import (
        EngineConfig,
        GatewayConfig,
        OverflowPolicy,
        ReplaySource,
        SimulatedNodeSource,
        StreamGateway,
    )

    if args.window <= 0.0:
        print("--window must be positive", file=sys.stderr)
        return 2
    if not 0.0 < args.drift_threshold <= 1.0:
        print("--drift-threshold must be in (0, 1]", file=sys.stderr)
        return 2
    if args.windows < 1:
        print("--windows must be >= 1", file=sys.stderr)
        return 2
    if args.swap_at is not None and args.swap_to is None:
        print("--swap-at requires --swap-to", file=sys.stderr)
        return 2

    node_id = f"{args.location}-stream"
    window_s = args.window
    if args.source == "replay" and args.scan:
        with open(args.scan) as f:
            data = json.load(f)
        # Accept either a bare scan dict or a full calibration report
        # (``repro calibrate --json``), which nests the scan.
        scan = scan_from_dict(data.get("scan", data))
        node_id = scan.node_id
        # Window boundaries must match the recording.
        window_s = scan.duration_s
        records = ReplaySource(scan=scan).records()
    else:
        world = build_world()

        def evaluator(location: str) -> DirectionalEvaluator:
            return DirectionalEvaluator(
                node=SensorNode(node_id, world.testbed.site(location)),
                traffic=world.traffic,
                ground_truth=world.ground_truth,
                duration_s=window_s,
                ground_truth_query_s=window_s / 2.0,
            )

        if args.source == "replay":
            import numpy as np

            scan = evaluator(args.location).run(
                np.random.default_rng(args.seed)
            )
            records = ReplaySource(scan=scan).records()
        else:
            swap_at = None
            swap_evaluator = None
            if args.swap_to is not None:
                swap_at = (
                    args.swap_at
                    if args.swap_at is not None
                    else args.windows // 2
                )
                if not 0 < swap_at < args.windows:
                    print(
                        f"--swap-at must be in (0, {args.windows})",
                        file=sys.stderr,
                    )
                    return 2
                swap_evaluator = evaluator(args.swap_to)
            records = SimulatedNodeSource(
                evaluator=evaluator(args.location),
                n_windows=args.windows,
                seed=args.seed,
                swap_at=swap_at,
                swap_evaluator=swap_evaluator,
            ).records()

    engine = EngineConfig(
        window_s=window_s, drift_threshold=args.drift_threshold
    )
    gateway = StreamGateway(
        config=GatewayConfig(
            engine=engine,
            queue_capacity=args.queue_capacity,
            policy=OverflowPolicy(args.policy),
        )
    )
    for i, record in enumerate(records):
        gateway.publish(node_id, record, timeout_s=0.0)
        if (i + 1) % 256 == 0:
            gateway.drain_node(node_id)
    gateway.flush()

    session = gateway.sessions[node_id]
    print(f"streamed {session.counters.records} records for {node_id}")
    for summary in session.engine.summaries:
        drift = " DRIFT" if summary.drift is not None else ""
        print(
            f"  window {summary.index:>2} (t={summary.end_s:6.1f} s): "
            f"{summary.evidence:>3} obs, "
            f"{summary.open_fraction:5.1%} open{drift}"
        )
    for event in gateway.drift_events():
        hours = ", ".join(
            f"{h:.1f}h" for h in event.request.schedule.hours
        )
        print(
            f"drift at t={event.detected_at_s:.0f} s: "
            f"{event.request.reason}"
        )
        print(f"  re-calibration requested at hours: {hours}")
    snapshot = gateway.snapshot(node_id)
    print()
    print(
        f"Final field of view: "
        f"{snapshot.report.fov.open_fraction():.0%} open; "
        f"trust score {snapshot.trust.trust_score():.2f}"
    )
    for check in snapshot.trust.checks:
        status = "pass" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    print()
    print(gateway.summary_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        FleetSnapshot,
        FleetStore,
        ResponseCache,
        SpectrumApp,
        SpectrumServer,
        store_from_json,
        store_from_network,
        synthetic_fleet,
    )

    if args.source == "file" and not args.file:
        print("--source file requires --file", file=sys.stderr)
        return 2
    if args.nodes < 0:
        print("--nodes must be >= 0", file=sys.stderr)
        return 2
    if args.ttl <= 0.0:
        print("--ttl must be positive", file=sys.stderr)
        return 2
    if args.max_requests is not None and args.max_requests < 1:
        print("--max-requests must be >= 1", file=sys.stderr)
        return 2

    if args.source == "file":
        store = store_from_json(args.file)
    elif args.source == "fleet":
        result = fleet.run_fleet(world=build_world(), seed=args.seed)
        store = store_from_network(_fleet_network(result))
    else:
        network, drift = synthetic_fleet(args.nodes, seed=args.seed)
        store = FleetStore(
            snapshot=FleetSnapshot(
                network,
                failures=network.failures,
                drift=drift,
                generation=1,
            )
        )

    app = SpectrumApp(store, cache=ResponseCache(ttl_s=args.ttl))
    server = SpectrumServer(
        app,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_requests=args.max_requests,
    )

    async def _serve() -> int:
        host, port = await server.start()
        snapshot = store.current()
        print(
            f"serving {snapshot.n_nodes} nodes "
            f"(generation {snapshot.generation}, "
            f"{len(snapshot.failures)} failures) "
            f"on http://{host}:{port}"
        )
        if args.port_file:
            with open(args.port_file, "w") as f:
                f.write(f"{host} {port}\n")
        served = await server.serve_until_stopped()
        print(f"served {served} request(s)")
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted")
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Hand the full tail to the analyzer's own parser:
        # argparse.REMAINDER drops leading options (`lint
        # --list-rules`), so the dispatch happens before argparse.
        from repro.lint import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    handlers = {
        "calibrate": _cmd_calibrate,
        "interference": _cmd_interference,
        "figure": _cmd_figure,
        "trust": _cmd_trust,
        "fleet": _cmd_fleet,
        "crosscheck": _cmd_crosscheck,
        "schedule": _cmd_schedule,
        "ingest": _cmd_ingest,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
