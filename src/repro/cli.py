"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``calibrate --location {rooftop,window,indoor}`` — run the full
  automatic-calibration pipeline on a node at one of the testbed
  locations and print the report (``--json FILE`` writes the full
  machine-readable report).
- ``figure {1,2,3,4,fm}`` — regenerate one of the paper's figures as
  a terminal table.
- ``trust`` — run the fabrication-detection experiment.
- ``fleet [--workers N] [--cache-dir DIR] [--checkpoint FILE]
  [--resume]`` — calibrate the 12-node fleet through the
  :mod:`repro.runtime` campaign machinery (parallel workers, retries,
  result cache, resumable checkpoints) and print the marketplace.
- ``schedule --windows N`` — compare measurement-scheduling
  strategies for a daily budget.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.network import CalibrationService
from repro.core.serialize import report_to_json
from repro.experiments import (
    crosscheck_exp,
    figure1,
    figure2,
    figure3,
    figure4,
    fleet,
    fm_extension,
    scheduling,
    trust,
)
from repro.experiments.common import LOCATIONS, build_world
from repro.node.sensor import SensorNode


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automatic calibration of crowd-sourced spectrum sensors "
            "(HotNets '23 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    calibrate = sub.add_parser(
        "calibrate", help="calibrate one node end to end"
    )
    calibrate.add_argument(
        "--location",
        choices=LOCATIONS,
        default="window",
        help="testbed installation to evaluate",
    )
    calibrate.add_argument(
        "--seed", type=int, default=1, help="simulation seed"
    )
    calibrate.add_argument(
        "--json",
        metavar="FILE",
        help="also write the machine-readable report to FILE",
    )

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure"
    )
    figure.add_argument(
        "which", choices=["1", "2", "3", "4", "fm"],
        help="figure number (fm = the FM extension)",
    )
    figure.add_argument("--seed", type=int, default=1)

    sub.add_parser("trust", help="run the fabrication-detection experiment")

    fleet_cmd = sub.add_parser(
        "fleet",
        help=(
            "calibrate a 12-node fleet through the parallel runtime "
            "and print the marketplace"
        ),
    )
    fleet_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker pool size (1 = serial, bit-identical to seed)",
    )
    fleet_cmd.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="worker pool backend",
    )
    fleet_cmd.add_argument(
        "--seed", type=int, default=95, help="campaign base seed"
    )
    fleet_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache; unchanged nodes skip "
        "recomputation on re-runs",
    )
    fleet_cmd.add_argument(
        "--checkpoint", metavar="FILE",
        help="campaign manifest, rewritten after every finished job",
    )
    fleet_cmd.add_argument(
        "--resume", action="store_true",
        help="restore completed jobs from --checkpoint and run only "
        "the remainder",
    )
    fleet_cmd.add_argument(
        "--max-jobs", type=int, metavar="N",
        help="stop after N jobs (simulates a partial run; combine "
        "with --checkpoint/--resume)",
    )
    fleet_cmd.add_argument(
        "--fail-node", metavar="NODE_ID",
        help="inject a crash fault into one node to exercise "
        "retry/partial-failure handling",
    )
    sub.add_parser(
        "crosscheck",
        help="tracker-free peer cross-validation of five nodes",
    )

    schedule = sub.add_parser(
        "schedule", help="compare measurement schedules"
    )
    schedule.add_argument(
        "--windows", type=int, default=4,
        help="measurement windows per day",
    )

    ingest = sub.add_parser(
        "ingest",
        help=(
            "evaluate a real dump1090 SBS feed against an archived "
            "flight-tracker report"
        ),
    )
    ingest.add_argument(
        "--sbs", required=True, metavar="FILE",
        help="SBS-1 (BaseStation, port 30003) capture file",
    )
    ingest.add_argument(
        "--tracker", required=True, metavar="FILE",
        help="flight-tracker report JSON (see flight_reports_to_json)",
    )
    ingest.add_argument("--lat", type=float, required=True)
    ingest.add_argument("--lon", type=float, required=True)
    ingest.add_argument("--alt", type=float, default=0.0)
    return parser


def _cmd_calibrate(args: argparse.Namespace) -> int:
    world = build_world()
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
        fm_towers=world.testbed.fm_towers,
    )
    node = SensorNode(
        f"{args.location}-node", world.testbed.site(args.location)
    )
    assessment = service.evaluate_node(node, seed=args.seed)
    print(assessment.report.render_text())
    print()
    print("Per-sector/per-band usability (renter's view):")
    print(assessment.report.render_usability())
    print()
    print(f"Trust score: {assessment.trust.trust_score():.2f}")
    for check in assessment.trust.checks:
        status = "pass" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    if assessment.claim_violations:
        print("Claim violations:")
        for violation in assessment.claim_violations:
            print(f"  - {violation.claim}: {violation.evidence}")
    if args.json:
        with open(args.json, "w") as f:
            f.write(report_to_json(assessment.report, indent=2))
        print(f"wrote {args.json}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    world = build_world()
    if args.which == "1":
        panels = figure1.run_figure1(world=world, seed=args.seed)
        print(figure1.format_summary(panels))
        for panel in panels:
            print()
            print(figure1.render_ascii_polar(panel))
    elif args.which == "2":
        print(figure2.format_layout(figure2.run_figure2(world.testbed)))
    elif args.which == "3":
        print(figure3.format_bars(figure3.run_figure3(world=world)))
    elif args.which == "4":
        print(figure4.format_bars(figure4.run_figure4(world=world)))
    else:
        print(
            fm_extension.format_bars(
                fm_extension.run_fm_extension(world=world)
            )
        )
    return 0


def _cmd_trust(_args: argparse.Namespace) -> int:
    world = build_world()
    print(trust.format_rows(trust.run_trust_experiment(world=world)))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(
            f"--workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.fail_node is not None:
        from repro.runtime.campaign import standard_fleet_specs

        known = [s.node_id for s in standard_fleet_specs()]
        if args.fail_node not in known:
            print(
                f"--fail-node: unknown node {args.fail_node!r}"
                f" (fleet nodes: {', '.join(known)})",
                file=sys.stderr,
            )
            return 2
    world = build_world()
    result = fleet.run_fleet(
        world=world,
        seed=args.seed,
        workers=args.workers,
        executor=args.executor,
        cache_dir=args.cache_dir,
        checkpoint=args.checkpoint,
        resume=args.resume,
        max_jobs=args.max_jobs,
        fail_node=args.fail_node,
    )
    print(fleet.format_marketplace(result))
    if result.campaign is not None:
        print()
        print(result.campaign.summary_text())
    return 0


def _cmd_crosscheck(_args: argparse.Namespace) -> int:
    world = build_world()
    print(
        crosscheck_exp.format_rows(
            crosscheck_exp.run_crosscheck_experiment(world=world)
        )
    )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.windows <= 0:
        print("--windows must be positive", file=sys.stderr)
        return 2
    rows = scheduling.run_scheduling(
        budgets=list(range(1, args.windows + 1))
    )
    print(scheduling.format_rows(rows))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.core.fov import KnnFovEstimator
    from repro.core.ingest import (
        flight_reports_from_json,
        scan_from_sbs,
    )
    from repro.core.network import TrustEvaluator
    from repro.geo.coords import GeoPoint

    with open(args.sbs) as f:
        lines = f.readlines()
    with open(args.tracker) as f:
        reports = flight_reports_from_json(f.read())
    receiver = GeoPoint(args.lat, args.lon, args.alt)
    scan = scan_from_sbs(
        lines, reports, node_id="ingested", receiver_position=receiver
    )
    print(
        f"{len(scan.received)}/{len(scan.observations)} tracked "
        f"aircraft received ({scan.decoded_message_count} messages, "
        f"{len(scan.ghost_icaos)} ghosts)"
    )
    fov = KnnFovEstimator().estimate(scan)
    sectors = ", ".join(
        f"{s.start_deg:.0f}-{s.end_deg:.0f} deg"
        for s in fov.open_sectors()
    ) or "none"
    print(
        f"Estimated field of view: {fov.open_fraction():.0%} open "
        f"[{sectors}]"
    )
    assessment = TrustEvaluator().assess(scan)
    for check in assessment.checks:
        status = "pass" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "calibrate": _cmd_calibrate,
        "figure": _cmd_figure,
        "trust": _cmd_trust,
        "fleet": _cmd_fleet,
        "crosscheck": _cmd_crosscheck,
        "schedule": _cmd_schedule,
        "ingest": _cmd_ingest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
