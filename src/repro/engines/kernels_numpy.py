"""The numpy baseline kernels: the reference compute backend.

These are the exact array expressions the batch pipeline has always
run — extracted behind the engine interface so accelerated backends
(:mod:`repro.engines.kernels_numba`) can substitute jitted versions
of the geometry → obstruction → pathloss chain while this module
remains the oracle every backend is equivalence-tested against.

Every kernel keeps the per-element operation order of its scalar
counterpart (``ray_geometry``, ``free_space_path_loss_db``,
``AdsbLinkModel``), so results agree with the scalar path to the last
ulp of the platform libm — the bit-identity contract the equivalence
suites pin.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.rf.pathloss import (
    free_space_path_loss_db_array,
    free_space_path_loss_db_multifreq,
)

#: Whether this module's kernels are jit-compiled (the numpy baseline
#: never is; the flag exists so every kernel namespace looks alike).
ACCELERATED = False


def rays_from_enu(
    east: np.ndarray, north: np.ndarray, up: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ENU offsets -> (azimuth deg, elevation deg, clamped slant m).

    Mirrors the scalar ENU property chain, including
    ``atan2(0, 0) = 0`` for the degenerate straight-up ray and the
    >= 1 m slant clamp of ``ray_geometry``.
    """
    azimuth = np.degrees(np.arctan2(east, north)) % 360.0
    horiz = np.hypot(east, north)
    elevation = np.degrees(np.arctan2(up, horiz))
    slant = np.sqrt(east**2 + north**2 + up**2)
    slant = np.maximum(slant, 1.0)
    return azimuth, elevation, slant


def fspl_db(distance_m: np.ndarray, freq_hz: float) -> np.ndarray:
    """Friis free-space path loss, one carrier for the whole batch."""
    return free_space_path_loss_db_array(distance_m, freq_hz)


def fspl_db_multifreq(
    distance_m: np.ndarray, freq_hz: np.ndarray
) -> np.ndarray:
    """Friis free-space path loss, per-element carrier."""
    return free_space_path_loss_db_multifreq(distance_m, freq_hz)


def received_power_dbm(
    unobstructed_dbm: np.ndarray,
    obstruction_db: np.ndarray,
    shadow_db: np.ndarray,
    leak_db: np.ndarray,
    leakage_base_db: float,
    fade_db: np.ndarray,
) -> np.ndarray:
    """Combine direct and leakage paths into per-event power (dBm).

    The :class:`~repro.environment.links.AdsbLinkModel` combination:
    the obstructed direct path (shadowing applied) in parallel with
    the urban leakage path, leakage ignored on clear rays, Rician
    fading added last.
    """
    direct_extra = obstruction_db - shadow_db
    leakage_extra = leakage_base_db + leak_db
    combined = -10.0 * np.log10(
        10.0 ** (-np.maximum(direct_extra, 0.0) / 10.0)
        + 10.0 ** (-np.maximum(leakage_extra, 0.0) / 10.0)
    )
    effective_extra = np.where(
        obstruction_db <= 0.5, direct_extra, combined
    )
    return unobstructed_dbm - effective_extra + fade_db
