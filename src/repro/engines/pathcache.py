"""Campaign-scoped, content-keyed path cache.

Node/tower/material layouts are static across a calibration campaign,
but the batch engines used to recompute ray geometry, obstruction
stacks, and penetration losses for every capture. This cache computes
each (sensor, emitter) chain exactly once per campaign and replays it
across captures, windows, repeated fleet runs, and — with a persist
directory — across processes alongside the disk result cache in
:mod:`repro.runtime`.

Keys are blake2b content digests (:mod:`repro.engines.contentkey`)
over every input that determines the stage's output, including the
RNG bit-stream position for stages that consume randomness. A hit is
therefore bit-identical to the recompute by construction: if anything
that could change the answer changed, the key changed. Stages that
draw from the generator store their post-stage RNG state next to the
value and restore it on hit, so downstream draws stay in lockstep
with an uncached run (the draw-order discipline of
docs/performance.md).

The cache is process-global and thread-safe: campaign workers running
in a thread pool share entries. Campaigns scope their *stats* by
snapshotting the counters before and after a run; the entries
themselves survive, which is exactly the warm-run win.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.engines.contentkey import (
    UncacheableValue,
    capture_rng_state,
    content_key,
    restore_rng_state,
    rng_state_token,
)

#: Default bound on in-memory entries; oldest-used entries evict first.
DEFAULT_MAX_ENTRIES = 16384

#: Sentinel distinguishing "missing" from a cached ``None``.
_MISS = object()


class PathCache:
    """Thread-safe LRU of content-keyed stage results.

    Attributes are read through :meth:`stats`; entries are opaque to
    the cache (each call site stores whatever arrays/tuples its stage
    replays from).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        persist_dir: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1: {max_entries}"
            )
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.max_entries = max_entries
        self.enabled = enabled
        self.persist_dir = persist_dir
        self._hits = 0
        self._misses = 0
        self._skips = 0
        self._evictions = 0
        self._disk_hits = 0

    # -- raw access -------------------------------------------------------

    def lookup(self, key: str) -> Any:
        """The entry for ``key``, or the module-private miss sentinel."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is not _MISS:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
        value = self._load_persisted(key)
        if value is _MISS:
            with self._lock:
                self._misses += 1
            return _MISS
        with self._lock:
            self._hits += 1
            self._disk_hits += 1
            self._insert(key, value)
        return value

    def store(self, key: str, value: Any) -> None:
        with self._lock:
            self._insert(key, value)
        self._persist(key, value)

    def _insert(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    # -- the main call-site API -------------------------------------------

    def get_or_compute(
        self,
        key_parts: Tuple,
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``key_parts``, computing on miss.

        Content that cannot be hashed (:class:`UncacheableValue`)
        silently bypasses the cache — correctness first. When the
        cache is disabled every call computes and only the skip
        counter moves.
        """
        if not self.enabled:
            with self._lock:
                self._skips += 1
            return compute()
        try:
            key = content_key(*key_parts)
        except UncacheableValue:
            with self._lock:
                self._skips += 1
            return compute()
        value = self.lookup(key)
        if value is not _MISS:
            return value
        value = compute()
        self.store(key, value)
        return value

    def get_or_compute_rng(
        self,
        key_parts: Tuple,
        rng,
        compute: Callable[[], Any],
    ) -> Any:
        """Like :meth:`get_or_compute` for RNG-consuming stages.

        The generator's exact bit-stream position joins the key, and
        the post-stage state is stored next to the value; a hit
        replays the value AND advances ``rng`` to that state, so
        downstream draws stay in lockstep with an uncached run.
        """
        if not self.enabled:
            with self._lock:
                self._skips += 1
            return compute()
        try:
            key = content_key(rng_state_token(rng), *key_parts)
        except UncacheableValue:
            with self._lock:
                self._skips += 1
            return compute()
        entry = self.lookup(key)
        if entry is not _MISS:
            value, post_state = entry
            restore_rng_state(rng, post_state)
            return value
        value = compute()
        self.store(key, (value, capture_rng_state(rng)))
        return value

    # -- disk persistence --------------------------------------------------

    def _path_for(self, key: str) -> Optional[Path]:
        if self.persist_dir is None:
            return None
        return Path(self.persist_dir) / f"{key}.pathcache"

    def _persist(self, key: str, value: Any) -> None:
        path = self._path_for(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            pass  # persistence is best-effort; memory entry stands

    def _load_persisted(self, key: str) -> Any:
        path = self._path_for(key)
        if path is None or not path.exists():
            return _MISS
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return _MISS

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits/misses/entries and friends."""
        with self._lock:
            return {
                "path_cache_hits": self._hits,
                "path_cache_misses": self._misses,
                "path_cache_entries": len(self._entries),
                "path_cache_evictions": self._evictions,
                "path_cache_skips": self._skips,
                "path_cache_disk_hits": self._disk_hits,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._skips = 0
            self._evictions = 0
            self._disk_hits = 0


# ---------------------------------------------------------------------------
# The process-global cache instance and its configuration surface.

_GLOBAL = PathCache()
_GLOBAL_LOCK = threading.Lock()


def get_path_cache() -> PathCache:
    """The process-global path cache every pipeline stage consults."""
    return _GLOBAL


def configure_path_cache(
    enabled: Optional[bool] = None,
    max_entries: Optional[int] = None,
    persist_dir: Optional[str] = None,
    clear: bool = False,
) -> PathCache:
    """Adjust the global cache; ``None`` leaves a setting unchanged.

    ``clear=True`` drops entries and counters first — what a test or
    a cold-start benchmark round uses to re-establish a cold cache.
    """
    with _GLOBAL_LOCK:
        if clear:
            _GLOBAL.clear()
        if enabled is not None:
            _GLOBAL.enabled = enabled
        if max_entries is not None:
            if max_entries < 1:
                raise ValueError(
                    f"max_entries must be >= 1: {max_entries}"
                )
            _GLOBAL.max_entries = max_entries
        if persist_dir is not None:
            _GLOBAL.persist_dir = persist_dir or None
        return _GLOBAL


def path_cache_stats() -> Dict[str, int]:
    """Stats of the global cache (convenience for metrics surfaces)."""
    return _GLOBAL.stats()


def record_path_cache_metrics(metrics, before: Dict[str, int]) -> None:
    """Fold the per-campaign stats delta into a MetricsRegistry.

    ``before`` is a :meth:`PathCache.stats` snapshot taken when the
    campaign started; the entry count is recorded absolute, the
    counters as deltas, so each campaign reports its own cache
    effectiveness even though the cache itself is process-global.
    """
    after = _GLOBAL.stats()
    for name in (
        "path_cache_hits",
        "path_cache_misses",
        "path_cache_skips",
        "path_cache_disk_hits",
    ):
        # Always emit, even when zero, so fleet --json and the serve
        # snapshots carry the keys on every run.
        metrics.incr(name, after[name] - before.get(name, 0))
    metrics.incr(
        "path_cache_entries", after["path_cache_entries"]
    )
