"""Content keys: stable hashes over the pipeline's static inputs.

The path cache (:mod:`repro.engines.pathcache`) keys every entry by a
blake2b digest of the *content* that determines the computation —
node position and antenna, tower/emitter layout, material stock,
obstruction map, frequency set, and (for RNG-consuming stages) the
exact generator state. Two calls with equal content produce equal
keys; mutating any static input — a tower moved, a material swapped,
a frequency added — changes the digest and forces a recompute. That
property is what lets cached results claim bit-identity.

Hashing walks the object graph directly into the hasher (no
intermediate canonical string), with type tags so ``1`` and ``1.0``
and ``"1"`` never collide. Dataclasses hash as (qualified class name,
field values); numpy arrays as (dtype, shape, raw bytes). Anything
the walker cannot prove stable — a bare callable, an open file, an
arbitrary object — raises :class:`UncacheableValue`, and callers skip
the cache rather than risk a wrong hit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Tuple

import numpy as np

#: Digest size for content keys (hex length 32).
_DIGEST_BYTES = 16

#: Per-class field lists, memoized — ``dataclasses.fields`` rebuilds
#: the tuple on every call, and hashing walks many instances.
_FIELDS_BY_CLASS: dict = {}


def _class_fields(cls):
    cached = _FIELDS_BY_CLASS.get(cls)
    if cached is None:
        cached = tuple(
            (f.name, f) for f in dataclasses.fields(cls)
        )
        _FIELDS_BY_CLASS[cls] = cached
    return cached


class UncacheableValue(TypeError):
    """A value whose content cannot be hashed safely.

    Raised for callables and unknown object types. Call sites catch
    this and fall through to the uncached computation — a skipped
    cache is always correct; a mis-keyed one never is.
    """


def _update(h, obj: Any) -> None:
    """Feed one object (recursively) into the hasher, type-tagged."""
    if obj is None:
        h.update(b"N")
    elif obj is True:
        h.update(b"T")
    elif obj is False:
        h.update(b"F")
    elif isinstance(obj, bytes):
        h.update(b"b")
        h.update(len(obj).to_bytes(8, "little"))
        h.update(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"s")
        h.update(len(raw).to_bytes(8, "little"))
        h.update(raw)
    elif isinstance(obj, int):
        h.update(b"i")
        raw = str(obj).encode("ascii")
        h.update(len(raw).to_bytes(8, "little"))
        h.update(raw)
    elif isinstance(obj, float):
        h.update(b"f")
        h.update(np.float64(obj).tobytes())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a")
        _update(h, str(arr.dtype))
        _update(h, arr.shape)
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        h.update(b"g")
        _update(h, str(obj.dtype))
        h.update(obj.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"l")
        h.update(len(obj).to_bytes(8, "little"))
        for item in obj:
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(b"d")
        h.update(len(obj).to_bytes(8, "little"))
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif isinstance(obj, (set, frozenset)):
        h.update(b"e")
        h.update(len(obj).to_bytes(8, "little"))
        for item in sorted(obj, key=repr):
            _update(h, item)
    elif hasattr(obj, "content_token"):
        # Opt-in protocol: the object supplies the value that defines
        # its content (used to exclude runtime state like RNG caches).
        h.update(b"c")
        _update(h, type(obj).__qualname__)
        _update(h, obj.content_token())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D")
        _update(h, type(obj).__qualname__)
        for name, _f in _class_fields(type(obj)):
            _update(h, name)
            _update(h, getattr(obj, name))
    else:
        raise UncacheableValue(
            f"cannot derive a content key for {type(obj).__qualname__}"
        )


def content_key(*parts: Any) -> str:
    """Blake2b digest (hex) over the content of ``parts``.

    Raises :class:`UncacheableValue` when any part contains a value
    whose content cannot be hashed (callables, unknown objects).
    """
    import hashlib

    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        _update(h, part)
    return h.hexdigest()


def rng_state_token(rng: np.random.Generator) -> Tuple:
    """A hashable token of the generator's exact bit-stream position.

    Stages that consume randomness key their cache entries on this:
    equal state + equal content means the batched draws that follow
    are bit-identical, so the stage's outputs can be replayed and the
    saved post-state restored.
    """
    return _freeze(rng.bit_generator.state)


def capture_rng_state(rng: np.random.Generator):
    """The generator's state, for later :func:`restore_rng_state`."""
    return rng.bit_generator.state


def restore_rng_state(rng: np.random.Generator, state) -> None:
    """Advance ``rng`` to a previously captured post-stage state."""
    rng.bit_generator.state = state


def _freeze(obj: Any):
    """Recursively convert dict/list state into hashable tuples."""
    if isinstance(obj, dict):
        return tuple(
            (k, _freeze(v)) for k, v in sorted(obj.items())
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(v) for v in obj)
    if isinstance(obj, np.ndarray):
        return (str(obj.dtype), obj.shape, obj.tobytes())
    return obj


def iter_tokens(objs: Iterable[Any]) -> Tuple:
    """Tuple-ify an iterable so it can participate in a content key."""
    return tuple(objs)
