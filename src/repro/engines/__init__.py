"""Pluggable compute backends and the content-keyed path cache.

``repro.engines`` is the execution-policy layer of the batch
pipeline: the :mod:`registry <repro.engines.registry>` selects which
kernel implementation runs (numpy baseline, numba-jitted, or the
scalar reference), and the :mod:`path cache
<repro.engines.pathcache>` replays content-keyed stage results so
each (sensor, emitter) ray/obstruction/penetration chain is computed
exactly once per campaign. Neither choice changes results: engines
are equivalence-tested against the numpy oracle, and cache keys
(:mod:`repro.engines.contentkey`) cover every input that determines a
stage's output, including RNG bit-stream position.
"""

from repro.engines.contentkey import (
    UncacheableValue,
    capture_rng_state,
    content_key,
    restore_rng_state,
    rng_state_token,
)
from repro.engines.pathcache import (
    PathCache,
    configure_path_cache,
    get_path_cache,
    path_cache_stats,
    record_path_cache_metrics,
)
from repro.engines.registry import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    Engine,
    default_engine_name,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine,
    set_default_engine,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "Engine",
    "PathCache",
    "UncacheableValue",
    "capture_rng_state",
    "configure_path_cache",
    "content_key",
    "default_engine_name",
    "engine_names",
    "get_engine",
    "get_path_cache",
    "list_engines",
    "path_cache_stats",
    "record_path_cache_metrics",
    "register_engine",
    "resolve_engine",
    "restore_rng_state",
    "rng_state_token",
    "set_default_engine",
]
