"""Numba-jitted kernels for the geometry -> pathloss chain.

When numba is importable, the hot per-element loops compile to native
code with IEEE semantics (``fastmath`` stays off, so operation order
— and therefore rounding — matches the numpy baseline). When numba is
absent the module still imports cleanly and every name falls back to
the numpy baseline kernels; :data:`NUMBA_AVAILABLE` records which
world we are in so the registry can report the engine as running in
fallback mode. The CI matrix runs both legs.

Numba's own elementwise libm calls can differ from numpy's vectorized
ones by an ulp on some platforms, so the cross-backend equivalence
contract is: bit-identical in fallback mode, agreement to 1e-9
relative tolerance when jitted (the path cache's bit-identity claim
is about cache hits, which replay stored arrays and are exact under
every backend).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.engines import kernels_numpy as _baseline

try:  # pragma: no cover - exercised by the CI with-numba leg
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default container path
    _njit = None
    NUMBA_AVAILABLE = False

#: Mirrors :data:`repro.engines.kernels_numpy.ACCELERATED`.
ACCELERATED = NUMBA_AVAILABLE


if NUMBA_AVAILABLE:  # pragma: no cover - compiled only with numba

    @_njit(cache=True)
    def _rays_from_enu_jit(east, north, up):
        n = east.shape[0]
        azimuth = np.empty(n, dtype=np.float64)
        elevation = np.empty(n, dtype=np.float64)
        slant = np.empty(n, dtype=np.float64)
        for i in range(n):
            azimuth[i] = math.degrees(
                math.atan2(east[i], north[i])
            ) % 360.0
            horiz = math.hypot(east[i], north[i])
            elevation[i] = math.degrees(math.atan2(up[i], horiz))
            s = math.sqrt(
                east[i] * east[i]
                + north[i] * north[i]
                + up[i] * up[i]
            )
            slant[i] = s if s > 1.0 else 1.0
        return azimuth, elevation, slant

    @_njit(cache=True)
    def _fspl_db_jit(distance_m, lam):
        n = distance_m.shape[0]
        out = np.empty(n, dtype=np.float64)
        four_pi = 4.0 * math.pi
        for i in range(n):
            d = distance_m[i]
            if d < lam:
                d = lam
            out[i] = 20.0 * math.log10(four_pi * d / lam)
        return out

    @_njit(cache=True)
    def _fspl_db_multifreq_jit(distance_m, lam):
        n = distance_m.shape[0]
        out = np.empty(n, dtype=np.float64)
        four_pi = 4.0 * math.pi
        for i in range(n):
            d = distance_m[i]
            if d < lam[i]:
                d = lam[i]
            out[i] = 20.0 * math.log10(four_pi * d / lam[i])
        return out

    @_njit(cache=True)
    def _received_power_dbm_jit(
        unobstructed_dbm,
        obstruction_db,
        shadow_db,
        leak_db,
        leakage_base_db,
        fade_db,
    ):
        n = unobstructed_dbm.shape[0]
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            direct_extra = obstruction_db[i] - shadow_db[i]
            if obstruction_db[i] <= 0.5:
                effective = direct_extra
            else:
                leakage_extra = leakage_base_db + leak_db[i]
                d = direct_extra if direct_extra > 0.0 else 0.0
                k = leakage_extra if leakage_extra > 0.0 else 0.0
                effective = -10.0 * math.log10(
                    10.0 ** (-d / 10.0) + 10.0 ** (-k / 10.0)
                )
            out[i] = unobstructed_dbm[i] - effective + fade_db[i]
        return out

    def rays_from_enu(
        east: np.ndarray, north: np.ndarray, up: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _rays_from_enu_jit(
            np.ascontiguousarray(east, dtype=np.float64),
            np.ascontiguousarray(north, dtype=np.float64),
            np.ascontiguousarray(up, dtype=np.float64),
        )

    def fspl_db(
        distance_m: np.ndarray, freq_hz: float
    ) -> np.ndarray:
        from repro.rf.units import wavelength_m

        d = np.ascontiguousarray(distance_m, dtype=np.float64)
        if np.any(d < 0.0):
            raise ValueError("distances must be non-negative")
        return _fspl_db_jit(d, wavelength_m(freq_hz))

    def fspl_db_multifreq(
        distance_m: np.ndarray, freq_hz: np.ndarray
    ) -> np.ndarray:
        from repro.rf.units import wavelength_m_array

        d = np.ascontiguousarray(distance_m, dtype=np.float64)
        if np.any(d < 0.0):
            raise ValueError("distances must be non-negative")
        lam = np.ascontiguousarray(
            wavelength_m_array(freq_hz), dtype=np.float64
        )
        return _fspl_db_multifreq_jit(d, lam)

    def received_power_dbm(
        unobstructed_dbm: np.ndarray,
        obstruction_db: np.ndarray,
        shadow_db: np.ndarray,
        leak_db: np.ndarray,
        leakage_base_db: float,
        fade_db: np.ndarray,
    ) -> np.ndarray:
        return _received_power_dbm_jit(
            np.ascontiguousarray(unobstructed_dbm, dtype=np.float64),
            np.ascontiguousarray(obstruction_db, dtype=np.float64),
            np.ascontiguousarray(shadow_db, dtype=np.float64),
            np.ascontiguousarray(leak_db, dtype=np.float64),
            float(leakage_base_db),
            np.ascontiguousarray(fade_db, dtype=np.float64),
        )

else:
    # Fallback: identical signatures, numpy execution. The engine
    # registry reports the "numba" engine as available-with-fallback
    # so `--engine numba` stays green on hosts without the package.
    rays_from_enu = _baseline.rays_from_enu
    fspl_db = _baseline.fspl_db
    fspl_db_multifreq = _baseline.fspl_db_multifreq
    received_power_dbm = _baseline.received_power_dbm
