"""The compute-backend registry.

Every batch pipeline stage that has more than one implementation —
the numpy baseline, the numba-jitted chain, the per-event scalar
reference — asks the registry for its kernels instead of importing
one directly. Backends are selected by name at runtime:

1. an explicit name (CLI ``--engine``, ``CampaignConfig.engine``,
   an evaluator's ``engine`` field) wins;
2. else the ``REPRO_ENGINE`` environment variable;
3. else the process default (``numpy``, changeable with
   :func:`set_default_engine`).

Three engines register at import:

- ``numpy`` — the vectorized baseline; the oracle every other
  backend is equivalence-tested against.
- ``numba`` — jitted geometry/pathloss kernels when numba is
  importable; otherwise the same engine name resolves to the numpy
  kernels with ``fallback`` set, so selecting it is always safe.
- ``scalar`` — the per-event reference pipeline (evaluators run
  their ``run_scalar`` paths). Slow by design; exists for
  equivalence work and bisection.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engines import kernels_numba, kernels_numpy

#: Environment variable consulted when no explicit engine is given.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: The shipped default backend.
DEFAULT_ENGINE = "numpy"


@dataclass(frozen=True)
class Engine:
    """One registered compute backend.

    Attributes:
        name: registry key (``--engine`` value).
        description: one-line summary for ``--help``/docs.
        kernels: namespace providing the kernel functions
            (``rays_from_enu``, ``fspl_db``, ``fspl_db_multifreq``,
            ``received_power_dbm``).
        use_batch: whether evaluators should dispatch to their batch
            paths (the ``scalar`` engine turns this off).
        accelerated: whether the kernels are actually compiled (the
            ``numba`` engine reports False when running its numpy
            fallback).
        fallback: name of the backend the kernels actually came from
            when the native ones are unavailable; ``None`` otherwise.
    """

    name: str
    description: str
    kernels: Any = field(repr=False)
    use_batch: bool = True
    accelerated: bool = False
    fallback: Optional[str] = None

    @property
    def kernel_token(self) -> str:
        """Which kernel implementation actually runs — the string the
        path cache folds into its keys. A backend running in fallback
        mode reports the fallback's token, so e.g. ``numba`` without
        numba shares cache entries with ``numpy`` (they execute the
        same code), while jitted kernels get their own entries.
        """
        if self.accelerated:
            return self.name
        return self.fallback or self.name


_REGISTRY: Dict[str, Engine] = {}
_LOCK = threading.Lock()
_DEFAULT_OVERRIDE: Optional[str] = None


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Add a backend to the registry.

    Re-registering an existing name requires ``replace=True`` so a
    typo cannot silently shadow a shipped backend.
    """
    with _LOCK:
        if engine.name in _REGISTRY and not replace:
            raise ValueError(
                f"engine {engine.name!r} is already registered"
            )
        _REGISTRY[engine.name] = engine
        return engine


def get_engine(name: Optional[str] = None) -> Engine:
    """Resolve a backend: explicit name > $REPRO_ENGINE > default."""
    resolved = (
        name
        or os.environ.get(ENGINE_ENV_VAR)
        or _DEFAULT_OVERRIDE
        or DEFAULT_ENGINE
    )
    with _LOCK:
        engine = _REGISTRY.get(resolved)
    if engine is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown engine {resolved!r} (registered: {known})"
        )
    return engine


def resolve_engine(engine: Any = None) -> Engine:
    """Accept an :class:`Engine`, a name, or ``None`` (default)."""
    if isinstance(engine, Engine):
        return engine
    return get_engine(engine)


def list_engines() -> List[Engine]:
    """Registered backends, sorted by name."""
    with _LOCK:
        return sorted(_REGISTRY.values(), key=lambda e: e.name)


def engine_names() -> List[str]:
    """Just the registered names (CLI ``choices=``)."""
    return [e.name for e in list_engines()]


def set_default_engine(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process default backend.

    Campaigns use this to scope an engine choice to a run without
    threading the name through every evaluator constructor. An
    explicit ``get_engine(name)`` and the environment variable both
    still win over this default.
    """
    global _DEFAULT_OVERRIDE
    if name is not None:
        get_engine(name)  # validate eagerly
    with _LOCK:
        _DEFAULT_OVERRIDE = name


def default_engine_name() -> str:
    """The name ``get_engine(None)`` would resolve to right now."""
    return (
        os.environ.get(ENGINE_ENV_VAR)
        or _DEFAULT_OVERRIDE
        or DEFAULT_ENGINE
    )


# ---------------------------------------------------------------------------
# The shipped backends.

register_engine(
    Engine(
        name="numpy",
        description=(
            "vectorized numpy pipeline (baseline + equivalence oracle)"
        ),
        kernels=kernels_numpy,
        use_batch=True,
        accelerated=False,
    )
)

register_engine(
    Engine(
        name="numba",
        description=(
            "numba-jitted geometry/pathloss kernels"
            if kernels_numba.NUMBA_AVAILABLE
            else "numba unavailable - running numpy fallback kernels"
        ),
        kernels=kernels_numba,
        use_batch=True,
        accelerated=kernels_numba.NUMBA_AVAILABLE,
        fallback=(
            None if kernels_numba.NUMBA_AVAILABLE else "numpy"
        ),
    )
)

register_engine(
    Engine(
        name="scalar",
        description=(
            "per-event scalar reference pipeline (slow; for"
            " equivalence and bisection)"
        ),
        kernels=kernels_numpy,
        use_batch=False,
        accelerated=False,
    )
)
