"""Calibration reports: the deliverable of an automatic evaluation.

A :class:`CalibrationReport` bundles everything the pipeline learned
about one node — directional scan, field-of-view estimate, frequency
profile, installation classification — into per-band quality grades,
an overall quality score, and machine-checkable claim verification.
This is what a spectrum-sensing marketplace would attach to a node's
listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.classify import Classification, InstallationFeatures
from repro.core.fov import FieldOfViewEstimate
from repro.core.frequency import BandMeasurement, FrequencyProfile
from repro.core.observations import DirectionalScan
from repro.node.claims import NodeClaims

#: Excess-attenuation grade boundaries, dB.
_GRADE_EDGES = ((3.0, "A"), (8.0, "B"), (15.0, "C"), (25.0, "D"))


def grade_for_excess_db(excess_db: Optional[float]) -> str:
    """Letter grade for a band's excess attenuation (F = no decode)."""
    if excess_db is None:
        return "F"
    for edge, grade in _GRADE_EDGES:
        if excess_db <= edge:
            return grade
    return "E"


@dataclass(frozen=True)
class BandGrade:
    """Quality grade for one measured band."""

    label: str
    freq_hz: float
    grade: str
    excess_attenuation_db: Optional[float]


@dataclass(frozen=True)
class ClaimViolation:
    """One operator claim contradicted by measurement."""

    claim: str
    evidence: str


@dataclass
class CalibrationReport:
    """The complete automatic evaluation of one node.

    Attributes:
        node_id: node evaluated.
        scan: the §3.1 directional scan.
        fov: estimated field of view.
        profile: the §3.2 frequency profile.
        features: derived classifier features.
        classification: indoor/outdoor + installation class verdict.
    """

    node_id: str
    scan: DirectionalScan
    fov: FieldOfViewEstimate
    profile: FrequencyProfile
    features: InstallationFeatures
    classification: Classification
    band_grades: List[BandGrade] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.band_grades:
            self.band_grades = [
                BandGrade(
                    label=m.label,
                    freq_hz=m.freq_hz,
                    grade=grade_for_excess_db(m.excess_attenuation_db),
                    excess_attenuation_db=m.excess_attenuation_db,
                )
                for m in self.profile.measurements
            ]

    def directional_score(self) -> float:
        """0-1 score for angular coverage (open-horizon fraction)."""
        return self.fov.open_fraction()

    def frequency_score(self) -> float:
        """0-1 score for spectral coverage.

        Mean over measured bands of a per-band score: 1.0 for grade A
        down to 0.0 for F.
        """
        if not self.band_grades:
            return 0.0
        scale = {"A": 1.0, "B": 0.8, "C": 0.55, "D": 0.3, "E": 0.1, "F": 0.0}
        return sum(scale[g.grade] for g in self.band_grades) / len(
            self.band_grades
        )

    def overall_score(self) -> float:
        """Combined quality score in [0, 1]."""
        return 0.5 * self.directional_score() + 0.5 * self.frequency_score()

    def verify_claims(self, claims: NodeClaims) -> List[ClaimViolation]:
        """Check operator claims against the measurements."""
        violations: List[ClaimViolation] = []
        if claims.outdoor and not self.classification.outdoor:
            violations.append(
                ClaimViolation(
                    claim="outdoor installation",
                    evidence=(
                        "classified as "
                        f"{self.classification.installation} "
                        f"(P[outdoor]="
                        f"{self.classification.outdoor_probability:.2f})"
                    ),
                )
            )
        if claims.unobstructed and self.fov.open_fraction() < 0.9:
            violations.append(
                ClaimViolation(
                    claim="unobstructed field of view",
                    evidence=(
                        f"only {self.fov.open_fraction():.0%} of the "
                        "horizon shows reception"
                    ),
                )
            )
        violations.extend(self._verify_frequency_range(claims))
        return violations

    def _verify_frequency_range(
        self, claims: NodeClaims
    ) -> List[ClaimViolation]:
        """Claimed-range check: dead measured bands inside the claim."""
        violations = []
        dead: List[BandMeasurement] = [
            m
            for m in self.profile.measurements
            if not m.decoded
            and claims.min_freq_hz <= m.freq_hz <= claims.max_freq_hz
        ]
        if dead:
            labels = ", ".join(
                f"{m.label} ({m.freq_hz / 1e6:.0f} MHz)" for m in dead
            )
            violations.append(
                ClaimViolation(
                    claim=(
                        "usable "
                        f"{claims.min_freq_hz / 1e6:.0f}-"
                        f"{claims.max_freq_hz / 1e6:.0f} MHz coverage"
                    ),
                    evidence=f"no reception from known signals: {labels}",
                )
            )
        return violations

    def usability_matrix(
        self, n_sectors: int = 8, max_excess_db: float = 15.0
    ) -> Dict[str, Dict[str, bool]]:
        """Per-sector, per-band usability: the renter's view.

        A (sector, band) cell is usable when the sector shows ADS-B
        reception (directional evidence of an open path) *and* the
        band's known signal was received with acceptable excess
        attenuation. Bands are the measured signal families grouped by
        frequency decade label.
        """
        if n_sectors <= 0 or 360 % n_sectors != 0:
            raise ValueError(
                f"n_sectors must divide 360: {n_sectors}"
            )
        width = 360 // n_sectors
        sector_labels = [
            f"{i * width:03d}-{(i + 1) * width:03d}"
            for i in range(n_sectors)
        ]
        bands = {}
        for m in self.profile.measurements:
            label = f"{m.freq_hz / 1e6:.0f} MHz"
            usable = (
                m.decoded
                and m.excess_attenuation_db is not None
                and m.excess_attenuation_db <= max_excess_db
            )
            bands[label] = usable
        matrix: Dict[str, Dict[str, bool]] = {}
        for i, sector_label in enumerate(sector_labels):
            center = (i + 0.5) * width
            sector_open = self.fov.is_open(center)
            matrix[sector_label] = {
                band: sector_open and usable
                for band, usable in bands.items()
            }
        return matrix

    def render_usability(self, n_sectors: int = 8) -> str:
        """Terminal rendition of :meth:`usability_matrix`."""
        matrix = self.usability_matrix(n_sectors)
        bands = list(next(iter(matrix.values())))
        width = max(len(b) for b in bands)
        lines = [
            "sector   " + " ".join(b.rjust(width) for b in bands)
        ]
        for sector, cells in matrix.items():
            row = " ".join(
                ("yes" if cells[b] else ".").rjust(width)
                for b in bands
            )
            lines.append(f"{sector}  {row}")
        return "\n".join(lines)

    def render_text(self) -> str:
        """Human-readable report."""
        lines = [
            f"Calibration report for {self.node_id}",
            "=" * 50,
            (
                f"ADS-B: {len(self.scan.received)}/"
                f"{len(self.scan.observations)} aircraft received, "
                f"max range {self.scan.max_received_range_km():.0f} km, "
                f"{self.scan.decoded_message_count} messages"
            ),
            (
                f"Field of view: {self.fov.open_fraction():.0%} open "
                f"({len(self.fov.open_sectors())} sector(s))"
            ),
            (
                f"Installation: {self.classification.installation} "
                f"(P[outdoor]="
                f"{self.classification.outdoor_probability:.2f})"
            ),
            "Band grades:",
        ]
        for g in sorted(self.band_grades, key=lambda b: b.freq_hz):
            excess = (
                f"{g.excess_attenuation_db:5.1f} dB excess"
                if g.excess_attenuation_db is not None
                else "  no decode"
            )
            lines.append(
                f"  {g.freq_hz / 1e6:7.1f} MHz {g.label:<10} "
                f"grade {g.grade}  {excess}"
            )
        lines.append(
            f"Overall quality score: {self.overall_score():.2f}"
        )
        return "\n".join(lines)
