"""Shared metrics: counters and latency percentiles.

Just enough observability for a campaign or stream summary — jobs
run, retries, cache hits, records consumed, p50/p95 latencies —
without pulling in a metrics dependency. Thread-safe, since both the
runtime's worker pool and the stream gateway's consumers record from
many threads at once.

This started life as :mod:`repro.runtime.metrics`; it moved to
:mod:`repro.core` when the streaming subsystem needed the same
counters, so :mod:`repro.runtime` and :mod:`repro.stream` share one
implementation (the old import path still works as a re-export).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Union


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"p must be in [0, 100]: {p}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class MetricsRegistry:
    """Named counters plus per-name duration observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._durations: Dict[str, List[float]] = {}

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, name: str, duration_s: float) -> None:
        with self._lock:
            self._durations.setdefault(name, []).append(duration_s)

    def durations(self, name: str) -> List[float]:
        with self._lock:
            return list(self._durations.get(name, []))

    def summary(self) -> Dict[str, Union[int, float]]:
        """Flat dict: every counter, plus p50/p95/total per timer."""
        with self._lock:
            out: Dict[str, Union[int, float]] = dict(self._counters)
            for name, values in self._durations.items():
                if not values:
                    continue
                out[f"{name}_p50_s"] = percentile(values, 50.0)
                out[f"{name}_p95_s"] = percentile(values, 95.0)
                out[f"{name}_total_s"] = sum(values)
            return out
