"""Measurement scheduling (§5 future work).

"An end-to-end system must decide when to perform ADS-B measurements
to gain as much information as possible, as flight schedules vary over
time." The scheduler chooses measurement windows across a day to
maximize the expected number of *distinct* aircraft observed, given an
hourly traffic-density profile, under diminishing returns for windows
at similar hours (the same flights are still overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

#: A plausible diurnal air-traffic profile: quiet overnight, morning
#: and evening banks. Values are relative density multipliers.
DEFAULT_DIURNAL_PROFILE = (
    0.15, 0.10, 0.08, 0.08, 0.12, 0.30,  # 00-05
    0.60, 0.95, 1.00, 0.90, 0.85, 0.90,  # 06-11
    0.95, 0.90, 0.85, 0.90, 1.00, 0.95,  # 12-17
    0.90, 0.80, 0.65, 0.50, 0.35, 0.22,  # 18-23
)


def diurnal_density(hour: float) -> float:
    """Interpolated density multiplier for a time of day."""
    profile = DEFAULT_DIURNAL_PROFILE
    h = hour % 24.0
    i = int(h)
    frac = h - i
    nxt = profile[(i + 1) % 24]
    return profile[i] * (1.0 - frac) + nxt * frac


@dataclass(frozen=True)
class Schedule:
    """A chosen set of measurement windows.

    Attributes:
        hours: window start hours (fractions allowed).
        expected_aircraft: model-predicted distinct aircraft observed.
    """

    hours: Sequence[float]
    expected_aircraft: float


def expected_distinct_aircraft(
    hours: Sequence[float],
    density: Callable[[float], float],
    peak_aircraft: float = 80.0,
    overlap_halflife_h: float = 0.4,
) -> float:
    """Expected distinct aircraft seen across measurement windows.

    Each window at hour h sees ~``peak_aircraft * density(h)``
    aircraft; windows close in time mostly re-observe the same flights
    (a flight stays in a 100 km disk for ~20-30 min), modelled as an
    exponential overlap decaying with hour separation.
    """
    if peak_aircraft <= 0.0:
        raise ValueError(f"peak_aircraft must be positive: {peak_aircraft}")
    total = 0.0
    seen: List[float] = []
    for h in sorted(float(h) % 24.0 for h in hours):
        count = peak_aircraft * max(density(h), 0.0)
        novelty = 1.0
        for prior in seen:
            gap = min(abs(h - prior), 24.0 - abs(h - prior))
            overlap = 0.5 ** (gap / overlap_halflife_h)
            novelty *= 1.0 - overlap
        total += count * novelty
        seen.append(h)
    return total


@dataclass
class DayTrafficModel:
    """A day of flights over the site, for validating schedules.

    Aircraft arrive as an inhomogeneous Poisson process whose rate
    follows the diurnal density profile, and stay in reception range
    for a dwell time around 25 minutes (a 100 km disk at enroute
    speeds). ``distinct_observed`` counts how many distinct aircraft a
    set of measurement windows would actually see — the ground truth
    the analytic :func:`expected_distinct_aircraft` approximates.

    Attributes:
        density: hourly density profile.
        peak_rate_per_h: aircraft arrivals per hour at density 1.0.
        mean_dwell_h: average time an aircraft stays in range.
    """

    density: Callable[[float], float] = diurnal_density
    peak_rate_per_h: float = 160.0
    mean_dwell_h: float = 25.0 / 60.0

    def sample_day(self, rng: np.random.Generator) -> List[tuple]:
        """Draw one day of (entry_hour, exit_hour) aircraft."""
        if self.peak_rate_per_h <= 0.0:
            raise ValueError(
                f"rate must be positive: {self.peak_rate_per_h}"
            )
        flights = []
        # Thinning: propose at the peak rate, accept by density.
        n_proposed = rng.poisson(self.peak_rate_per_h * 24.0)
        entries = rng.uniform(0.0, 24.0, n_proposed)
        for entry in entries:
            if rng.uniform() > max(self.density(float(entry)), 0.0):
                continue
            dwell = rng.exponential(self.mean_dwell_h)
            flights.append((float(entry), float(entry) + dwell))
        return flights

    def distinct_observed(
        self,
        hours: Sequence[float],
        rng: np.random.Generator,
        window_h: float = 30.0 / 3600.0,
    ) -> int:
        """Distinct aircraft seen by windows at ``hours`` on one day."""
        flights = self.sample_day(rng)
        seen = 0
        for entry, exit_ in flights:
            for h in hours:
                if entry <= h + window_h and exit_ >= h:
                    seen += 1
                    break
        return seen


@dataclass
class MeasurementScheduler:
    """Greedy scheduler over a discretized day.

    Attributes:
        density: hourly traffic-density profile.
        resolution_h: candidate-window spacing.
        peak_aircraft: aircraft in range at density 1.0.
    """

    density: Callable[[float], float] = diurnal_density
    resolution_h: float = 0.5
    peak_aircraft: float = 80.0

    def schedule(self, n_windows: int) -> Schedule:
        """Greedily pick ``n_windows`` maximizing expected coverage."""
        if n_windows <= 0:
            raise ValueError(f"n_windows must be positive: {n_windows}")
        candidates = np.arange(0.0, 24.0, self.resolution_h)
        chosen: List[float] = []
        for _ in range(n_windows):
            best_hour, best_gain = None, -1.0
            current = expected_distinct_aircraft(
                chosen, self.density, self.peak_aircraft
            )
            for hour in candidates:
                if hour in chosen:
                    continue
                gain = (
                    expected_distinct_aircraft(
                        chosen + [float(hour)],
                        self.density,
                        self.peak_aircraft,
                    )
                    - current
                )
                if gain > best_gain:
                    best_hour, best_gain = float(hour), gain
            if best_hour is None:
                break
            chosen.append(best_hour)
        return Schedule(
            hours=tuple(sorted(chosen)),
            expected_aircraft=expected_distinct_aircraft(
                chosen, self.density, self.peak_aircraft
            ),
        )

    def naive_uniform(self, n_windows: int) -> Schedule:
        """Baseline: evenly spaced windows starting at midnight."""
        if n_windows <= 0:
            raise ValueError(f"n_windows must be positive: {n_windows}")
        hours = [24.0 * i / n_windows for i in range(n_windows)]
        return Schedule(
            hours=tuple(hours),
            expected_aircraft=expected_distinct_aircraft(
                hours, self.density, self.peak_aircraft
            ),
        )

    def random_schedule(
        self, n_windows: int, rng: np.random.Generator
    ) -> Schedule:
        """Baseline: windows at uniformly random times."""
        if n_windows <= 0:
            raise ValueError(f"n_windows must be positive: {n_windows}")
        hours = [float(h) for h in rng.uniform(0.0, 24.0, n_windows)]
        return Schedule(
            hours=tuple(sorted(hours)),
            expected_aircraft=expected_distinct_aircraft(
                hours, self.density, self.peak_aircraft
            ),
        )
