"""Ingesting real-world feeds into the calibration pipeline.

A production deployment would not embed this library's decoder: the
node already runs dump1090, which serves decoded traffic as SBS-1
(BaseStation) lines on port 30003, and the verifier separately queries
the flight tracker. This module joins those two streams into the
:class:`~repro.core.observations.DirectionalScan` the rest of the
pipeline consumes — so the §3.1 procedure runs unchanged on real
hardware output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.adsb.icao import IcaoAddress
from repro.adsb.sbs import SbsRecord, parse_sbs
from repro.airspace.flightradar import FlightReport
from repro.core.observations import AircraftObservation, DirectionalScan
from repro.environment.links import ray_geometry
from repro.geo.coords import GeoPoint


@dataclass
class _IngestTally:
    """Per-aircraft message statistics accumulated from SBS lines."""

    n_messages: int = 0


@dataclass
class IngestStats:
    """Skip-and-count accounting for one SBS feed pass.

    Every input line lands in exactly one bucket, so
    ``lines == blank + parsed + malformed`` always holds. The last
    rejection is kept (not raised) for operator diagnostics.
    """

    lines: int = 0
    blank: int = 0
    parsed: int = 0
    malformed: int = 0
    last_error: Optional[str] = None

    def as_dict(self) -> Dict[str, int]:
        return {
            "lines": self.lines,
            "blank": self.blank,
            "parsed": self.parsed,
            "malformed": self.malformed,
        }


def parse_sbs_stream(
    lines: Iterable[str], stats: Optional[IngestStats] = None
) -> List[SbsRecord]:
    """Parse an SBS feed, skipping blank and malformed lines.

    Real feeds contain status lines and the occasional truncated
    record; ingestion is forgiving where frame decoding is strict.
    Pass an :class:`IngestStats` to count what was skipped — dropped
    input should be visible in counters, never silent.
    """
    records: List[SbsRecord] = []
    if stats is None:
        stats = IngestStats()
    for line in lines:
        stats.lines += 1
        line = line.strip()
        if not line:
            stats.blank += 1
            continue
        try:
            records.append(parse_sbs(line))
        except (ValueError, IndexError) as exc:
            stats.malformed += 1
            stats.last_error = str(exc)
            continue
        stats.parsed += 1
    return records


def flight_reports_to_json(
    reports: Sequence[FlightReport], **json_kwargs
) -> str:
    """Serialize a tracker report for archival / CLI ingestion."""
    data = [
        {
            "icao": str(r.icao),
            "callsign": r.callsign,
            "lat_deg": r.position.lat_deg,
            "lon_deg": r.position.lon_deg,
            "alt_m": r.position.alt_m,
            "ground_speed_ms": r.ground_speed_ms,
            "track_deg": r.track_deg,
        }
        for r in reports
    ]
    return json.dumps(data, **json_kwargs)


def flight_reports_from_json(text: str) -> List[FlightReport]:
    """Parse a tracker report archived by :func:`flight_reports_to_json`."""
    raw: Any = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("flight report JSON must be a list")
    reports: List[FlightReport] = []
    for entry in raw:
        reports.append(
            FlightReport(
                icao=IcaoAddress.from_hex(entry["icao"]),
                callsign=entry["callsign"],
                position=GeoPoint(
                    entry["lat_deg"],
                    entry["lon_deg"],
                    entry["alt_m"],
                ),
                ground_speed_ms=entry["ground_speed_ms"],
                track_deg=entry["track_deg"],
            )
        )
    return reports


def scan_from_sbs(
    lines: Iterable[str],
    ground_truth: Sequence[FlightReport],
    node_id: str,
    receiver_position: GeoPoint,
    duration_s: float = 30.0,
    radius_m: float = 100_000.0,
    stats: Optional[IngestStats] = None,
) -> DirectionalScan:
    """Join an SBS feed with a flight-tracker report into a scan.

    Args:
        lines: raw SBS lines captured during the measurement window.
        ground_truth: the tracker's flights-within-radius report.
        node_id: the uploading node.
        receiver_position: the node's (claimed) location, used for the
            observation geometry.
        duration_s / radius_m: measurement parameters, recorded in the
            scan.
        stats: optional skip-and-count accounting for the feed pass.

    Exactly the paper's §3.1 join: each ground-truth aircraft becomes
    an observation marked received when at least one SBS message
    carried its ICAO address; locally-decoded addresses missing from
    the ground truth surface as ghosts for the trust checks.
    """
    tallies: Dict[IcaoAddress, _IngestTally] = {}
    for record in parse_sbs_stream(lines, stats=stats):
        tally = tallies.setdefault(record.icao, _IngestTally())
        tally.n_messages += 1

    observations: List[AircraftObservation] = []
    gt_icaos = set()
    for report in ground_truth:
        gt_icaos.add(report.icao)
        geom = ray_geometry(receiver_position, report.position)
        tally = tallies.get(report.icao)
        received = tally is not None and tally.n_messages > 0
        observations.append(
            AircraftObservation(
                icao=report.icao,
                callsign=report.callsign,
                bearing_deg=geom.azimuth_deg,
                ground_range_m=geom.ground_m,
                elevation_deg=geom.elevation_deg,
                position=report.position,
                received=received,
                n_messages=tally.n_messages if received else 0,
                # SBS lines carry no RSSI; left unknown.
                mean_rssi_dbfs=None,
            )
        )
    ghosts = sorted(
        icao for icao in tallies if icao not in gt_icaos
    )
    return DirectionalScan(
        node_id=node_id,
        duration_s=duration_s,
        radius_m=radius_m,
        observations=observations,
        decoded_message_count=sum(
            t.n_messages for t in tallies.values()
        ),
        ghost_icaos=ghosts,
    )
