"""Field-of-view estimation from directional scans.

The paper's §5 proposes "model-based or ML-based techniques to
calibrate a sensor given the observed and ground-truth airplane
locations ... such as k-nearest neighbors (KNN) or a support vector
machine (SVM) to estimate the true sensor field of view". Three
estimators are implemented, all consuming the same
:class:`~repro.core.observations.DirectionalScan`:

- :class:`SectorHistogramEstimator` — the model-based baseline: a
  bearing histogram marking a sector open when aircraft were received
  beyond a range floor.
- :class:`KnnFovEstimator` — KNN over (bearing, range) with a wrapped
  angular metric.
- :class:`LinearSvmFovEstimator` — a from-scratch linear SVM (Pegasos
  SGD) on bearing-harmonic × range features.

All emit a :class:`FieldOfViewEstimate` that can be scored against the
ground-truth obstruction map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.observations import AircraftObservation, DirectionalScan
from repro.engines.pathcache import get_path_cache
from repro.environment.obstruction import ObstructionMap, flags_to_sectors
from repro.geo.sectors import AzimuthSector, bearing_difference

#: Ranges below this are ignored when judging openness: the paper
#: notes transmissions within ~20 km "have a chance of being received
#: regardless of direction" via multipath, so they carry no
#: directional information.
MULTIPATH_FLOOR_KM = 20.0


@dataclass
class FieldOfViewEstimate:
    """An estimated field of view.

    Attributes:
        bin_deg: angular resolution of the estimate.
        open_flags: per-bin open/closed, bin i covering
            [i*bin_deg, (i+1)*bin_deg).
        max_range_km: per-bin maximum usable range estimate.
    """

    bin_deg: float
    open_flags: List[bool]
    max_range_km: List[float]

    def __post_init__(self) -> None:
        if len(self.open_flags) != len(self.max_range_km):
            raise ValueError("flag and range arrays must align")
        if abs(len(self.open_flags) * self.bin_deg - 360.0) > 1e-6:
            raise ValueError("bins must tile the full circle")

    @property
    def n_bins(self) -> int:
        return len(self.open_flags)

    def is_open(self, bearing_deg: float) -> bool:
        """Whether the estimate calls ``bearing_deg`` open."""
        idx = int((bearing_deg % 360.0) / self.bin_deg) % self.n_bins
        return self.open_flags[idx]

    def open_fraction(self) -> float:
        """Fraction of the horizon estimated open."""
        return sum(self.open_flags) / self.n_bins

    def open_sectors(self) -> List[AzimuthSector]:
        """Contiguous open sectors (wrapping through north)."""
        return flags_to_sectors(list(self.open_flags), self.bin_deg)

    def agreement_with_truth(
        self,
        truth: ObstructionMap,
        probe_elevation_deg: float = 8.0,
        threshold_db: float = 6.0,
    ) -> float:
        """Fraction of bearing bins where estimate matches ground truth.

        Ground truth: a bin is open when the obstruction loss at the
        probe elevation is below ``threshold_db`` at 1090 MHz.
        """
        agree = 0
        for i in range(self.n_bins):
            bearing = (i + 0.5) * self.bin_deg
            true_open = truth.is_clear(
                bearing, probe_elevation_deg, threshold_db
            )
            if true_open == self.open_flags[i]:
                agree += 1
        return agree / self.n_bins


def _informative(
    observations: Sequence[AircraftObservation],
    min_range_km: float,
) -> List[AircraftObservation]:
    """Observations beyond the multipath floor (directional evidence)."""
    return [
        o for o in observations if o.ground_range_km >= min_range_km
    ]


def pool_scans(scans: Sequence[DirectionalScan]) -> DirectionalScan:
    """Merge several scans into one larger evidence set.

    Measurements taken at different times see different flights, so
    pooling fills bearing gaps and averages out per-aircraft fading —
    the cheap way to sharpen a field-of-view estimate (§5: "decide
    when to perform ADS-B measurements to gain as much information as
    possible"). Scans must come from the same node.
    """
    if not scans:
        raise ValueError("need at least one scan to pool")
    node_ids = {s.node_id for s in scans}
    if len(node_ids) > 1:
        raise ValueError(
            f"cannot pool scans from different nodes: {sorted(node_ids)}"
        )
    observations: List[AircraftObservation] = []
    ghosts = []
    for scan in scans:
        observations.extend(scan.observations)
        ghosts.extend(scan.ghost_icaos)
    return DirectionalScan(
        node_id=scans[0].node_id,
        duration_s=sum(s.duration_s for s in scans),
        radius_m=max(s.radius_m for s in scans),
        observations=observations,
        decoded_message_count=sum(
            s.decoded_message_count for s in scans
        ),
        ghost_icaos=ghosts,
    )


@dataclass
class SectorHistogramEstimator:
    """Model-based baseline: per-sector received/missed statistics.

    A sector is called open when at least ``min_received`` aircraft
    beyond the multipath floor were received in it and the received
    fraction beats ``min_ratio``. Sectors with no informative traffic
    inherit their nearest populated neighbour's verdict (the paper:
    "not receiving any messages from a direction does not necessarily
    indicate blockage ... there may have been no aircraft there").
    """

    bin_deg: float = 10.0
    min_range_km: float = MULTIPATH_FLOOR_KM
    min_received: int = 1
    min_ratio: float = 0.34

    def estimate(self, scan: DirectionalScan) -> FieldOfViewEstimate:
        n = int(round(360.0 / self.bin_deg))
        received = [0] * n
        total = [0] * n
        max_range = [0.0] * n
        for obs in _informative(scan.observations, self.min_range_km):
            idx = int(obs.bearing_deg / self.bin_deg) % n
            total[idx] += 1
            if obs.received:
                received[idx] += 1
                max_range[idx] = max(
                    max_range[idx], obs.ground_range_km
                )
        flags: List[Optional[bool]] = [None] * n
        for i in range(n):
            if total[i] == 0:
                continue
            flags[i] = (
                received[i] >= self.min_received
                and received[i] / total[i] >= self.min_ratio
            )
        filled = fill_unobserved(flags)
        return FieldOfViewEstimate(
            bin_deg=self.bin_deg,
            open_flags=filled,
            max_range_km=max_range,
        )


def fill_unobserved(flags: List[Optional[bool]]) -> List[bool]:
    """Give empty bins the verdict of the nearest populated bin.

    Shared with the streaming engine's incremental sector statistics
    (:mod:`repro.stream.online`), which must fill identically to stay
    bit-compatible with this estimator.
    """
    n = len(flags)
    if all(f is None for f in flags):
        return [False] * n
    out: List[bool] = []
    for i in range(n):
        if flags[i] is not None:
            out.append(bool(flags[i]))
            continue
        for step in range(1, n):
            left = flags[(i - step) % n]
            right = flags[(i + step) % n]
            if left is not None:
                out.append(bool(left))
                break
            if right is not None:
                out.append(bool(right))
                break
        else:
            out.append(False)
    return out


@dataclass
class KnnFovEstimator:
    """K-nearest-neighbour field-of-view estimation.

    For each bearing bin, the estimator asks: would an aircraft at the
    probe range in this direction be received? It answers by majority
    vote among the k nearest informative observations under a scaled
    polar metric (angular distance weighted against range distance).
    """

    bin_deg: float = 10.0
    k: int = 7
    probe_range_km: float = 60.0
    min_range_km: float = MULTIPATH_FLOOR_KM
    #: km of range distance equivalent to one degree of bearing.
    km_per_degree: float = 1.5

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive: {self.k}")

    def estimate(self, scan: DirectionalScan) -> FieldOfViewEstimate:
        data = _informative(scan.observations, self.min_range_km)
        n = int(round(360.0 / self.bin_deg))
        if not data:
            return FieldOfViewEstimate(
                self.bin_deg, [False] * n, [0.0] * n
            )
        # The verdict depends only on (bearing, range, received) of
        # the informative observations plus the estimator parameters,
        # so repeat evaluations of an unchanged scan replay from the
        # path cache; a fresh estimate object is built per call.
        flags, ranges = get_path_cache().get_or_compute(
            (
                "knn_fov",
                self.bin_deg,
                self.k,
                self.probe_range_km,
                self.min_range_km,
                self.km_per_degree,
                np.array(
                    [
                        (
                            o.bearing_deg,
                            o.ground_range_m,
                            1.0 if o.received else 0.0,
                        )
                        for o in data
                    ],
                    dtype=np.float64,
                ),
            ),
            lambda: self._estimate_bins(data, n),
        )
        return FieldOfViewEstimate(
            self.bin_deg, list(flags), list(ranges)
        )

    def _estimate_bins(
        self, data: Sequence[AircraftObservation], n: int
    ) -> tuple:
        flags: List[bool] = []
        ranges: List[float] = []
        for i in range(n):
            bearing = (i + 0.5) * self.bin_deg
            flags.append(
                self._predict(data, bearing, self.probe_range_km)
            )
            ranges.append(self._max_open_range(data, bearing))
        return tuple(flags), tuple(ranges)

    def _predict(
        self,
        data: Sequence[AircraftObservation],
        bearing_deg: float,
        range_km: float,
    ) -> bool:
        distances = []
        for obs in data:
            ang = bearing_difference(bearing_deg, obs.bearing_deg)
            rad = abs(range_km - obs.ground_range_km)
            distances.append(
                (
                    math.hypot(ang, rad / self.km_per_degree),
                    obs.received,
                )
            )
        distances.sort(key=lambda pair: pair[0])
        k = min(self.k, len(distances))
        votes = sum(1 for _, received in distances[:k] if received)
        return votes * 2 > k

    def _max_open_range(
        self, data: Sequence[AircraftObservation], bearing_deg: float
    ) -> float:
        """Largest probe range still predicted receivable."""
        best = 0.0
        for probe in (30.0, 45.0, 60.0, 75.0, 90.0):
            if self._predict(data, bearing_deg, probe):
                best = probe
        return best


@dataclass
class LinearSvmFovEstimator:
    """Linear SVM on bearing-harmonic features (Pegasos SGD).

    Features for an observation at bearing θ, range r (normalized):
    [1, sin kθ, cos kθ for k ≤ harmonics] ⊗ [1, r] — a decision
    boundary that is a direction-dependent range threshold. Trained
    from scratch; no external ML dependency.
    """

    bin_deg: float = 10.0
    harmonics: int = 4
    probe_range_km: float = 60.0
    min_range_km: float = MULTIPATH_FLOOR_KM
    epochs: int = 200
    lambda_reg: float = 1e-3
    seed: int = 7
    _weights: Optional[np.ndarray] = field(default=None, repr=False)

    def _features(self, bearing_deg: float, range_km: float) -> np.ndarray:
        theta = math.radians(bearing_deg)
        r = range_km / 100.0
        base = [1.0]
        for k in range(1, self.harmonics + 1):
            base.append(math.sin(k * theta))
            base.append(math.cos(k * theta))
        base = np.asarray(base)
        return np.concatenate([base, r * base])

    def fit(self, scan: DirectionalScan) -> "LinearSvmFovEstimator":
        """Train on a scan's informative observations."""
        data = _informative(scan.observations, self.min_range_km)
        dim = 2 * (2 * self.harmonics + 1)
        if not data:
            self._weights = np.zeros(dim)
            return self
        x = np.stack(
            [
                self._features(o.bearing_deg, o.ground_range_km)
                for o in data
            ]
        )
        y = np.asarray([1.0 if o.received else -1.0 for o in data])
        rng = np.random.default_rng(self.seed)
        w = np.zeros(dim)
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(data))
            for idx in order:
                t += 1
                eta = 1.0 / (self.lambda_reg * t)
                margin = y[idx] * float(x[idx] @ w)
                w = (1.0 - eta * self.lambda_reg) * w
                if margin < 1.0:
                    w = w + eta * y[idx] * x[idx]
        self._weights = w
        return self

    def decision(self, bearing_deg: float, range_km: float) -> float:
        """Signed margin; positive predicts reception."""
        if self._weights is None:
            raise RuntimeError("estimator not fitted; call fit() first")
        return float(
            self._features(bearing_deg, range_km) @ self._weights
        )

    def estimate(self, scan: DirectionalScan) -> FieldOfViewEstimate:
        self.fit(scan)
        n = int(round(360.0 / self.bin_deg))
        flags: List[bool] = []
        ranges: List[float] = []
        for i in range(n):
            bearing = (i + 0.5) * self.bin_deg
            flags.append(
                self.decision(bearing, self.probe_range_km) > 0.0
            )
            best = 0.0
            for probe in (30.0, 45.0, 60.0, 75.0, 90.0):
                if self.decision(bearing, probe) > 0.0:
                    best = probe
            ranges.append(best)
        return FieldOfViewEstimate(self.bin_deg, flags, ranges)
