"""Position-claim verification from ADS-B geometry.

A node's claimed location feeds CBRS-style databases and determines
which ground truth the verifier compares against, so a spoofed
location is a serious lie. ADS-B gives a free check: decoded position
messages carry the aircraft's *absolute* coordinates, and reception
probability falls with distance — so the cloud of received aircraft
physically centers on the *true* receiver location. If the reported
reception cloud is far from the claimed position, or contains
aircraft that would be beyond any plausible reception range from it,
the claim is false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.observations import DirectionalScan
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_m

#: Practical 1090 MHz reception limit for a ground station (radio
#: horizon for enroute altitudes).
MAX_PLAUSIBLE_RANGE_KM = 450.0


@dataclass(frozen=True)
class PositionCheckResult:
    """Outcome of verifying a claimed position against a scan.

    Attributes:
        claimed: the operator's claimed position.
        reception_centroid: message-weighted centroid of received
            aircraft positions (None with no receptions).
        centroid_offset_km: distance from claim to centroid.
        impossible_receptions: received aircraft beyond any plausible
            range of the claimed position.
        consistent: the verdict.
    """

    claimed: GeoPoint
    reception_centroid: Optional[GeoPoint]
    centroid_offset_km: float
    impossible_receptions: int
    consistent: bool


@dataclass
class PositionVerifier:
    """Checks a claimed position against a directional scan.

    Attributes:
        max_centroid_offset_km: allowed distance between the claimed
            position and the reception centroid. Receptions spread
            over a ~100 km disk centered on the receiver, so an honest
            centroid lands within a few tens of km of it even with an
            asymmetric field of view.
        min_receptions: below this the check abstains (consistent).
    """

    max_centroid_offset_km: float = 60.0
    min_receptions: int = 5

    def verify(
        self, scan: DirectionalScan, claimed: GeoPoint
    ) -> PositionCheckResult:
        """Run the geometric consistency check."""
        received = scan.received
        if len(received) < self.min_receptions:
            return PositionCheckResult(
                claimed=claimed,
                reception_centroid=None,
                centroid_offset_km=0.0,
                impossible_receptions=0,
                consistent=True,
            )
        centroid = self._weighted_centroid(received)
        offset_km = haversine_m(claimed, centroid) / 1000.0
        impossible = sum(
            1
            for o in received
            if haversine_m(claimed, o.position) / 1000.0
            > MAX_PLAUSIBLE_RANGE_KM
        )
        consistent = (
            offset_km <= self.max_centroid_offset_km
            and impossible == 0
        )
        return PositionCheckResult(
            claimed=claimed,
            reception_centroid=centroid,
            centroid_offset_km=offset_km,
            impossible_receptions=impossible,
            consistent=consistent,
        )

    @staticmethod
    def _weighted_centroid(observations: List) -> GeoPoint:
        """Message-count-weighted mean of received positions.

        Close aircraft produce more decoded messages, so the weighting
        pulls the centroid toward the true receiver even when the
        field of view is lopsided.
        """
        total = 0.0
        lat = 0.0
        lon = 0.0
        for obs in observations:
            weight = float(max(obs.n_messages, 1))
            total += weight
            lat += weight * obs.position.lat_deg
            lon += weight * obs.position.lon_deg
        if total <= 0.0:
            raise ValueError("no weight in centroid")
        return GeoPoint(lat / total, lon / total, 0.0)


def plausible_range_check(
    scan: DirectionalScan, claimed: GeoPoint
) -> int:
    """Count receptions impossible from the claimed position.

    Convenience wrapper over the verifier's impossibility count, for
    callers that only need the hard geometric contradiction.
    """
    result = PositionVerifier().verify(scan, claimed)
    return result.impossible_receptions
