"""JSON-friendly serialization of calibration results.

A crowd-sourced network ships scans and reports between nodes and the
cloud; these converters produce plain dict/JSON structures (and read
them back) so results can be stored, diffed, and audited. Round-trip
fidelity is tested for every record type.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.adsb.icao import IcaoAddress
from repro.core.abs_power import AbsolutePowerCalibration
from repro.core.classify import Classification, InstallationFeatures
from repro.core.fov import FieldOfViewEstimate
from repro.core.frequency import BandMeasurement, FrequencyProfile
from repro.core.network import (
    AssessmentFailure,
    NetworkAssessments,
    NodeAssessment,
    TrustAssessment,
    TrustCheck,
)
from repro.core.observations import AircraftObservation, DirectionalScan
from repro.core.report import BandGrade, CalibrationReport, ClaimViolation
from repro.geo.coords import GeoPoint
from repro.interference.collisions import CollisionStats


def observation_to_dict(obs: AircraftObservation) -> Dict[str, Any]:
    """Serialize one aircraft observation."""
    return {
        "icao": str(obs.icao),
        "callsign": obs.callsign,
        "bearing_deg": obs.bearing_deg,
        "ground_range_m": obs.ground_range_m,
        "elevation_deg": obs.elevation_deg,
        "position": {
            "lat_deg": obs.position.lat_deg,
            "lon_deg": obs.position.lon_deg,
            "alt_m": obs.position.alt_m,
        },
        "received": obs.received,
        "n_messages": obs.n_messages,
        "mean_rssi_dbfs": obs.mean_rssi_dbfs,
    }


def observation_from_dict(data: Dict[str, Any]) -> AircraftObservation:
    """Inverse of :func:`observation_to_dict`."""
    pos = data["position"]
    return AircraftObservation(
        icao=IcaoAddress.from_hex(data["icao"]),
        callsign=data["callsign"],
        bearing_deg=data["bearing_deg"],
        ground_range_m=data["ground_range_m"],
        elevation_deg=data["elevation_deg"],
        position=GeoPoint(
            pos["lat_deg"], pos["lon_deg"], pos["alt_m"]
        ),
        received=data["received"],
        n_messages=data["n_messages"],
        mean_rssi_dbfs=data["mean_rssi_dbfs"],
    )


def scan_to_dict(scan: DirectionalScan) -> Dict[str, Any]:
    """Serialize a directional scan."""
    return {
        "node_id": scan.node_id,
        "duration_s": scan.duration_s,
        "radius_m": scan.radius_m,
        "observations": [
            observation_to_dict(o) for o in scan.observations
        ],
        "decoded_message_count": scan.decoded_message_count,
        "ghost_icaos": [str(g) for g in scan.ghost_icaos],
        "collision_stats": (
            scan.collision_stats.to_dict()
            if scan.collision_stats is not None
            else None
        ),
    }


def scan_from_dict(data: Dict[str, Any]) -> DirectionalScan:
    """Inverse of :func:`scan_to_dict`.

    ``collision_stats`` is optional so scans written before the
    interference layer still parse.
    """
    stats = data.get("collision_stats")
    return DirectionalScan(
        node_id=data["node_id"],
        duration_s=data["duration_s"],
        radius_m=data["radius_m"],
        observations=[
            observation_from_dict(o) for o in data["observations"]
        ],
        decoded_message_count=data["decoded_message_count"],
        ghost_icaos=[
            IcaoAddress.from_hex(g) for g in data["ghost_icaos"]
        ],
        collision_stats=(
            CollisionStats.from_dict(stats)
            if stats is not None
            else None
        ),
    )


def fov_to_dict(fov: FieldOfViewEstimate) -> Dict[str, Any]:
    """Serialize a field-of-view estimate."""
    return {
        "bin_deg": fov.bin_deg,
        "open_flags": list(fov.open_flags),
        "max_range_km": list(fov.max_range_km),
    }


def fov_from_dict(data: Dict[str, Any]) -> FieldOfViewEstimate:
    """Inverse of :func:`fov_to_dict`."""
    return FieldOfViewEstimate(
        bin_deg=data["bin_deg"],
        open_flags=[bool(f) for f in data["open_flags"]],
        max_range_km=[float(r) for r in data["max_range_km"]],
    )


def measurement_to_dict(m: BandMeasurement) -> Dict[str, Any]:
    """Serialize one band measurement."""
    return {
        "source": m.source,
        "label": m.label,
        "freq_hz": m.freq_hz,
        "measured": m.measured,
        "expected": m.expected,
        "excess_attenuation_db": m.excess_attenuation_db,
        "decoded": m.decoded,
        "interference_dbm": m.interference_dbm,
    }


def measurement_from_dict(data: Dict[str, Any]) -> BandMeasurement:
    """Inverse of :func:`measurement_to_dict`.

    ``interference_dbm`` is optional so profiles written before the
    interference layer still parse.
    """
    return BandMeasurement(
        interference_dbm=data.get("interference_dbm"),
        **{
            k: v
            for k, v in data.items()
            if k != "interference_dbm"
        },
    )


def profile_to_dict(profile: FrequencyProfile) -> Dict[str, Any]:
    """Serialize a frequency profile."""
    return {
        "node_id": profile.node_id,
        "measurements": [
            measurement_to_dict(m) for m in profile.measurements
        ],
    }


def profile_from_dict(data: Dict[str, Any]) -> FrequencyProfile:
    """Inverse of :func:`profile_to_dict`."""
    return FrequencyProfile(
        node_id=data["node_id"],
        measurements=[
            measurement_from_dict(m) for m in data["measurements"]
        ],
    )


def report_to_dict(report: CalibrationReport) -> Dict[str, Any]:
    """Serialize a full calibration report."""
    features = report.features
    classification = report.classification
    return {
        "node_id": report.node_id,
        "scan": scan_to_dict(report.scan),
        "fov": fov_to_dict(report.fov),
        "profile": profile_to_dict(report.profile),
        "features": {
            "fov_open_fraction": features.fov_open_fraction,
            "max_received_range_km": features.max_received_range_km,
            "reach_km": features.reach_km,
            "high_band_decode_fraction": (
                features.high_band_decode_fraction
            ),
            "high_band_excess_db": features.high_band_excess_db,
            "low_band_excess_db": features.low_band_excess_db,
        },
        "classification": {
            "installation": classification.installation,
            "outdoor": classification.outdoor,
            "outdoor_probability": classification.outdoor_probability,
        },
        "band_grades": [
            {
                "label": g.label,
                "freq_hz": g.freq_hz,
                "grade": g.grade,
                "excess_attenuation_db": g.excess_attenuation_db,
            }
            for g in report.band_grades
        ],
        "scores": {
            "directional": report.directional_score(),
            "frequency": report.frequency_score(),
            "overall": report.overall_score(),
        },
    }


def report_from_dict(data: Dict[str, Any]) -> CalibrationReport:
    """Inverse of :func:`report_to_dict` (scores are recomputed)."""
    return CalibrationReport(
        node_id=data["node_id"],
        scan=scan_from_dict(data["scan"]),
        fov=fov_from_dict(data["fov"]),
        profile=profile_from_dict(data["profile"]),
        features=InstallationFeatures(**data["features"]),
        classification=Classification(**data["classification"]),
        band_grades=[BandGrade(**g) for g in data["band_grades"]],
    )


def report_to_json(report: CalibrationReport, **json_kwargs) -> str:
    """Serialize a report straight to a JSON string."""
    return json.dumps(report_to_dict(report), **json_kwargs)


def report_from_json(text: str) -> CalibrationReport:
    """Parse a report from its JSON string."""
    return report_from_dict(json.loads(text))


def trust_check_to_dict(check: TrustCheck) -> Dict[str, Any]:
    """Serialize one trust check."""
    return {
        "name": check.name,
        "passed": check.passed,
        "score": check.score,
        "detail": check.detail,
    }


def trust_check_from_dict(data: Dict[str, Any]) -> TrustCheck:
    """Inverse of :func:`trust_check_to_dict`."""
    return TrustCheck(**data)


def trust_to_dict(trust: TrustAssessment) -> Dict[str, Any]:
    """Serialize a trust assessment (score is recomputed on read)."""
    return {
        "node_id": trust.node_id,
        "checks": [trust_check_to_dict(c) for c in trust.checks],
    }


def trust_from_dict(data: Dict[str, Any]) -> TrustAssessment:
    """Inverse of :func:`trust_to_dict`."""
    return TrustAssessment(
        node_id=data["node_id"],
        checks=[trust_check_from_dict(c) for c in data["checks"]],
    )


def violation_to_dict(violation: ClaimViolation) -> Dict[str, Any]:
    """Serialize one claim violation."""
    return {"claim": violation.claim, "evidence": violation.evidence}


def violation_from_dict(data: Dict[str, Any]) -> ClaimViolation:
    """Inverse of :func:`violation_to_dict`."""
    return ClaimViolation(**data)


def abs_power_to_dict(cal: AbsolutePowerCalibration) -> Dict[str, Any]:
    """Serialize an absolute-power calibration."""
    return {
        "full_scale_dbm_estimate": cal.full_scale_dbm_estimate,
        "spread_db": cal.spread_db,
        "anchor_label": cal.anchor_label,
        "anchor_bearing_deg": cal.anchor_bearing_deg,
        "n_signals": cal.n_signals,
        "reliable": cal.reliable,
    }


def abs_power_from_dict(data: Dict[str, Any]) -> AbsolutePowerCalibration:
    """Inverse of :func:`abs_power_to_dict`."""
    return AbsolutePowerCalibration(**data)


def assessment_to_dict(assessment: NodeAssessment) -> Dict[str, Any]:
    """Serialize a full node assessment.

    This is the record the fleet runtime's result cache and campaign
    checkpoints persist: everything the service concluded about one
    node, round-trippable through JSON.
    """
    return {
        "node_id": assessment.node_id,
        "report": report_to_dict(assessment.report),
        "trust": trust_to_dict(assessment.trust),
        "claim_violations": [
            violation_to_dict(v) for v in assessment.claim_violations
        ],
        "abs_power": (
            abs_power_to_dict(assessment.abs_power)
            if assessment.abs_power is not None
            else None
        ),
    }


def assessment_from_dict(data: Dict[str, Any]) -> NodeAssessment:
    """Inverse of :func:`assessment_to_dict`."""
    return NodeAssessment(
        node_id=data["node_id"],
        report=report_from_dict(data["report"]),
        trust=trust_from_dict(data["trust"]),
        claim_violations=[
            violation_from_dict(v) for v in data["claim_violations"]
        ],
        abs_power=(
            abs_power_from_dict(data["abs_power"])
            if data["abs_power"] is not None
            else None
        ),
    )


def assessment_to_json(
    assessment: NodeAssessment, **json_kwargs
) -> str:
    """Serialize a node assessment straight to a JSON string."""
    return json.dumps(assessment_to_dict(assessment), **json_kwargs)


def assessment_from_json(text: str) -> NodeAssessment:
    """Parse a node assessment from its JSON string."""
    return assessment_from_dict(json.loads(text))


def failure_to_dict(failure: AssessmentFailure) -> Dict[str, Any]:
    """Serialize one assessment failure."""
    return {
        "node_id": failure.node_id,
        "error": failure.error,
        "exception_type": failure.exception_type,
    }


def failure_from_dict(data: Dict[str, Any]) -> AssessmentFailure:
    """Inverse of :func:`failure_to_dict`."""
    return AssessmentFailure(**data)


def network_to_dict(
    network: NetworkAssessments,
) -> Dict[str, Any]:
    """Serialize a whole network evaluation, failures included.

    This is the record a finished fleet campaign hands to the serve
    store: every successful node assessment plus every node that
    crashed instead of completing.
    """
    out: Dict[str, Any] = {
        "assessments": {
            node_id: assessment_to_dict(assessment)
            for node_id, assessment in sorted(network.items())
        },
        "failures": {
            node_id: failure_to_dict(failure)
            for node_id, failure in sorted(network.failures.items())
        },
    }
    if network.metrics:
        # Campaign counters (path-cache effectiveness, retries, job
        # latencies) ride along so `repro serve --source file` can
        # surface them; plain batch evaluations omit the key.
        out["metrics"] = dict(network.metrics)
    return out


def network_from_dict(data: Dict[str, Any]) -> NetworkAssessments:
    """Inverse of :func:`network_to_dict`."""
    out = NetworkAssessments(
        {
            node_id: assessment_from_dict(assessment)
            for node_id, assessment in data["assessments"].items()
        }
    )
    out.failures = {
        node_id: failure_from_dict(failure)
        for node_id, failure in data.get("failures", {}).items()
    }
    out.metrics = dict(data.get("metrics", {}))
    return out


def network_to_json(
    network: NetworkAssessments, **json_kwargs: Any
) -> str:
    """Serialize a network evaluation straight to a JSON string."""
    return json.dumps(network_to_dict(network), **json_kwargs)


def network_from_json(text: str) -> NetworkAssessments:
    """Parse a network evaluation from its JSON string."""
    return network_from_dict(json.loads(text))
