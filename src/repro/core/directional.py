"""Directional reception evaluation (paper §3.1).

The procedure, verbatim from the paper: run the ADS-B decoder on the
sensor node for 30 seconds; 15 seconds in, retrieve all flights within
100 km from the ground-truth service; at the end, join the two sets on
ICAO address. Every ground-truth aircraft becomes an observation at
(bearing, range) marked received (≥1 decoded message) or missed —
the blue and gray points of Figure 1.

The physical path of every squitter is simulated: the transponder
emits a bit-exact DF17 frame, the link model computes its received
power through the site's obstruction map (with shadowing, multipath
leakage, and per-message fading), and frames that clear the decode
threshold go through the same dump1090-style decoder (CRC check, CPR
resolution) a real deployment would run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.adsb.decoder import Dump1090Decoder
from repro.adsb.icao import IcaoAddress
from repro.airspace.flightradar import FlightRadarService
from repro.airspace.traffic import TrafficSimulator
from repro.batch.schedule import traffic_content_token
from repro.core.observations import AircraftObservation, DirectionalScan
from repro.engines.pathcache import get_path_cache
from repro.engines.registry import resolve_engine
from repro.environment.links import AdsbLinkModel, ray_geometry
from repro.geo.coords import GeoPoint
from repro.interference.collisions import (
    LONG_FRAME_DURATION_S,
    SHORT_FRAME_DURATION_S,
    CollisionStats,
    resolve_collisions_scalar,
)
from repro.interference.config import InterferenceConfig
from repro.node.sensor import SensorNode

#: Effective noise bandwidth of the 2 Msps ADS-B receive chain.
ADSB_BANDWIDTH_HZ = 2e6

#: SNR needed for preamble detection + correct bit slicing.
DECODE_SNR_DB = 10.0


@dataclass
class DirectionalEvaluator:
    """Runs the §3.1 measurement procedure against one node.

    Attributes:
        node: the sensor node under evaluation.
        traffic: simulated traffic picture around the node.
        ground_truth: the FlightRadar24-style service.
        duration_s: capture length (paper: 30 s).
        ground_truth_query_s: when the ground truth is queried
            (paper: 15 s into the measurement).
        radius_m: ground-truth query radius (paper: 100 km).
        use_batch: run the capture through the vectorized batch
            engine (:mod:`repro.batch`). The batch path is
            equivalence-tested against :meth:`run_scalar`: same seed,
            same decode set.
        geometry_epsilon_m: along-track distance an aircraft may move
            before its ray geometry/obstruction is recomputed (batch
            path only). 0 disables the cache — exact per-event
            geometry.
        interference: shared-medium collision model
            (:class:`repro.interference.InterferenceConfig`). ``None``
            or disabled keeps the single-transmitter pipeline
            bit-identical.
        engine: compute-backend name (``repro.engines``); ``None``
            resolves through ``$REPRO_ENGINE`` to the registry
            default. The ``scalar`` engine forces :meth:`run_scalar`;
            engine choice is execution policy and never changes
            results beyond documented kernel tolerances.
    """

    node: SensorNode
    traffic: TrafficSimulator
    ground_truth: FlightRadarService
    duration_s: float = 30.0
    ground_truth_query_s: float = 15.0
    radius_m: float = 100_000.0
    use_batch: bool = True
    geometry_epsilon_m: float = 0.0
    interference: Optional[InterferenceConfig] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ValueError(
                f"duration must be positive: {self.duration_s}"
            )
        if not 0.0 <= self.ground_truth_query_s <= self.duration_s:
            raise ValueError(
                "ground-truth query time must fall inside the capture"
            )
        if self.radius_m <= 0.0:
            raise ValueError(f"radius must be positive: {self.radius_m}")

    def decode_threshold_dbm(self) -> float:
        """Minimum received power for a squitter to decode."""
        floor = self.node.sdr.noise_floor_dbm(ADSB_BANDWIDTH_HZ)
        return floor + DECODE_SNR_DB

    def noise_floor_dbm(self) -> float:
        """Receiver noise over the ADS-B bandwidth (SINR denominator)."""
        return self.node.sdr.noise_floor_dbm(ADSB_BANDWIDTH_HZ)

    def interference_enabled(self) -> bool:
        """Whether the shared-medium collision model is active."""
        return self.interference is not None and self.interference.enabled

    def run(self, rng: np.random.Generator) -> DirectionalScan:
        """Execute one full evaluation and return the scan.

        Dispatches to the vectorized batch engine unless
        ``use_batch`` is off or the selected compute backend is the
        ``scalar`` reference engine; both paths consume the RNG
        identically and produce the same decode set for the same
        seed.
        """
        if self.use_batch and resolve_engine(self.engine).use_batch:
            from repro.batch.engine import run_directional_scan_batch

            return run_directional_scan_batch(self, rng)
        return self.run_scalar(rng)

    def run_scalar(self, rng: np.random.Generator) -> DirectionalScan:
        """The per-squitter reference pipeline.

        Kept as the equivalence oracle for the batch engine (and for
        profiling): one Python object per squitter, one link-model
        call per event.
        """
        link = AdsbLinkModel(
            env=self.node.environment, rx_antenna=self.node.antenna
        )
        decoder = Dump1090Decoder(receiver_position=self.node.position)
        threshold = self.decode_threshold_dbm()

        per_aircraft: Dict[IcaoAddress, _AircraftTally] = {}
        decoded_count = 0
        collision_stats: Optional[CollisionStats] = None
        squitters = self.traffic.squitters_between(
            0.0, self.duration_s, rng
        )
        shared_medium = self.interference_enabled()
        decodable: Optional[List[bool]] = None
        powers_dbm: List[float] = []
        if shared_medium:
            # Two passes: the link draws happen first, in event order
            # (identical RNG consumption to the single-pass loop),
            # then the shared medium decides who survives.
            for event in squitters:
                powers_dbm.append(
                    link.message_received_power_dbm(
                        event.frame.icao,
                        GeoPoint(
                            event.lat_deg, event.lon_deg, event.alt_m
                        ),
                        event.tx_power_w,
                        rng,
                        time_s=event.time_s,
                    )
                )
            assert self.interference is not None
            decodable, collision_stats = resolve_collisions_scalar(
                [event.time_s for event in squitters],
                [
                    SHORT_FRAME_DURATION_S
                    if len(event.frame.data) == 7
                    else LONG_FRAME_DURATION_S
                    for event in squitters
                ],
                powers_dbm,
                threshold,
                self.noise_floor_dbm(),
                self.interference.capture_margin_db,
            )
        for i, event in enumerate(squitters):
            if shared_medium:
                assert decodable is not None
                if not decodable[i]:
                    continue
                rx_dbm = powers_dbm[i]
            else:
                tx_position = GeoPoint(
                    event.lat_deg, event.lon_deg, event.alt_m
                )
                rx_dbm = link.message_received_power_dbm(
                    event.frame.icao,
                    tx_position,
                    event.tx_power_w,
                    rng,
                    time_s=event.time_s,
                )
                if rx_dbm < threshold:
                    continue
            rssi_dbfs = self.node.sdr.input_dbm_to_dbfs(rx_dbm)
            message = decoder.decode_frame_bytes(
                event.frame.data, event.time_s, rssi_dbfs
            )
            if message is None:
                continue
            decoded_count += 1
            tally = per_aircraft.setdefault(
                message.icao, _AircraftTally()
            )
            tally.n_messages += 1
            tally.rssi_sum_dbfs += rssi_dbfs

        return self._finalize(
            per_aircraft,
            decoded_count,
            rng,
            collision_stats=collision_stats,
        )

    def _finalize(
        self,
        per_aircraft: Dict[IcaoAddress, "_AircraftTally"],
        decoded_count: int,
        rng: np.random.Generator,
        collision_stats: Optional[CollisionStats] = None,
    ) -> DirectionalScan:
        """Join decode tallies against ground truth into a scan.

        Shared tail of the scalar and batch paths: the ground-truth
        query (which may consume RNG draws) must happen after every
        link draw, in both paths, for seed equivalence.
        """
        reports = self._query_ground_truth(rng)
        # The per-report arrival geometry depends only on static
        # content (node position, reported positions), so warm runs
        # replay it from the path cache — same scalar math on a miss.
        geoms = get_path_cache().get_or_compute(
            (
                "finalize_geometry",
                self.node.position,
                np.array(
                    [
                        (
                            r.position.lat_deg,
                            r.position.lon_deg,
                            r.position.alt_m,
                        )
                        for r in reports
                    ],
                    dtype=np.float64,
                ),
            ),
            lambda: tuple(
                ray_geometry(self.node.position, report.position)
                for report in reports
            ),
        )
        observations: List[AircraftObservation] = []
        gt_icaos = set()
        for report, geom in zip(reports, geoms):
            gt_icaos.add(report.icao)
            tally = per_aircraft.get(report.icao)
            received = tally is not None and tally.n_messages > 0
            observations.append(
                AircraftObservation(
                    icao=report.icao,
                    callsign=report.callsign,
                    bearing_deg=geom.azimuth_deg,
                    ground_range_m=geom.ground_m,
                    elevation_deg=geom.elevation_deg,
                    position=report.position,
                    received=received,
                    n_messages=tally.n_messages if received else 0,
                    mean_rssi_dbfs=(
                        tally.mean_rssi_dbfs() if received else None
                    ),
                )
            )
        ghosts = [
            icao for icao in per_aircraft if icao not in gt_icaos
        ]
        return DirectionalScan(
            node_id=self.node.node_id,
            duration_s=self.duration_s,
            radius_m=self.radius_m,
            observations=observations,
            decoded_message_count=decoded_count,
            ghost_icaos=sorted(ghosts),
            collision_stats=collision_stats,
        )

    def _query_ground_truth(self, rng: np.random.Generator):
        """The §3.1 ground-truth snapshot, path-cached when RNG-free.

        ``FlightRadarService.query`` consumes no randomness when its
        coverage model is off (the default), making the report list a
        pure function of the traffic picture and the query — so warm
        runs replay it. Any nonzero miss rate consumes one draw per
        aircraft; those queries always execute.
        """
        if self.ground_truth.coverage_miss_rate > 0.0:
            return self.ground_truth.query(
                self.node.position,
                self.radius_m,
                self.ground_truth_query_s,
                rng,
            )
        return get_path_cache().get_or_compute(
            (
                "ground_truth_query",
                traffic_content_token(self.ground_truth.traffic),
                self.ground_truth.latency_s,
                self.node.position,
                self.radius_m,
                self.ground_truth_query_s,
            ),
            lambda: tuple(
                self.ground_truth.query(
                    self.node.position,
                    self.radius_m,
                    self.ground_truth_query_s,
                    rng,
                )
            ),
        )

    def run_repeated(
        self, n_runs: int, seed: int = 0
    ) -> List[DirectionalScan]:
        """Repeat the evaluation with independent randomness.

        The paper repeated its experiments "over 10 times ...
        obtaining similar results"; this is the hook the repeatability
        experiment uses.
        """
        if n_runs <= 0:
            raise ValueError(f"n_runs must be positive: {n_runs}")
        scans = []
        for i in range(n_runs):
            rng = np.random.default_rng(seed + i)
            scans.append(self.run(rng))
        return scans


@dataclass
class _AircraftTally:
    """Decoded-message statistics for one aircraft."""

    n_messages: int = 0
    rssi_sum_dbfs: float = 0.0

    def mean_rssi_dbfs(self) -> Optional[float]:
        if self.n_messages == 0:
            return None
        return self.rssi_sum_dbfs / self.n_messages
