"""Network-level calibration and trust.

Runs the full automatic-calibration pipeline over every node in a
crowd-sourced network ("this technique is then applied to all sensor
nodes within the network", §2) and scores each node's *trustworthiness*
— the §5 "establishing trust" direction: operators are paid, so
uploaded data must be checked for fabrication, not just quality.

Trust checks implemented:

- **ghost check** — reported ICAO addresses that do not exist in the
  independent ground truth (replayed or invented traffic);
- **too-perfect check** — a node that receives essentially *every*
  aircraft including distant, low-elevation ones in all directions is
  statistically implausible for any real installation;
- **RSSI-plausibility check** — real per-aircraft RSSI falls with
  log-distance; fabricated constant RSSI shows no such trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

from repro.airspace.flightradar import FlightRadarService
from repro.airspace.traffic import TrafficSimulator
from repro.cellular.cellmapper import TowerDatabase
from repro.core.classify import (
    IndoorOutdoorClassifier,
    classify_node,
    extract_features,
)
from repro.core.directional import DirectionalEvaluator
from repro.core.fov import KnnFovEstimator
from repro.core.frequency import FrequencyEvaluator
from repro.core.abs_power import (
    AbsolutePowerCalibration,
    AbsolutePowerCalibrator,
)
from repro.core.observations import DirectionalScan
from repro.core.position_check import PositionVerifier
from repro.core.report import CalibrationReport, ClaimViolation
from repro.fm.tower import FmTower
from repro.node.sensor import SensorNode
from repro.tv.tower import TvTower

if TYPE_CHECKING:
    # Imported lazily: repro.node.fabrication itself imports
    # repro.core.observations, and a module-level import here would
    # close that cycle during package initialization.
    from repro.node.fabrication import FabricationStrategy


@dataclass(frozen=True)
class TrustCheck:
    """One trust check's outcome."""

    name: str
    passed: bool
    score: float
    detail: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0,1]: {self.score}")


@dataclass
class TrustAssessment:
    """Aggregated trust verdict for one node's uploaded scan."""

    node_id: str
    checks: List[TrustCheck] = field(default_factory=list)

    def trust_score(self) -> float:
        """Product of check scores (any hard failure tanks it)."""
        score = 1.0
        for check in self.checks:
            score *= check.score
        return score

    def is_trustworthy(self, threshold: float = 0.5) -> bool:
        return self.trust_score() >= threshold


@dataclass
class TrustEvaluator:
    """Scores a reported scan against independent ground truth.

    Attributes:
        max_ghost_fraction: tolerated fraction of reported aircraft
            absent from ground truth. The tracker is itself
            crowd-sourced: a few-percent coverage gap makes an honest
            node's decodes of untracked aircraft look like ghosts
            (see the ground-truth-coverage ablation), so the
            tolerance must sit well above the expected gap rate while
            staying far below what replay/padding adversaries produce
            (tens of percent).
        perfect_rate_threshold: reception rate above which the
            too-perfect check engages.
        far_range_km: aircraft beyond this range count as "far" for
            the too-perfect check.
    """

    max_ghost_fraction: float = 0.10
    perfect_rate_threshold: float = 0.98
    far_range_km: float = 70.0

    def assess(self, scan: DirectionalScan) -> TrustAssessment:
        assessment = TrustAssessment(node_id=scan.node_id)
        assessment.checks.append(self._ghost_check(scan))
        assessment.checks.append(self._too_perfect_check(scan))
        assessment.checks.append(self._rssi_check(scan))
        return assessment

    def _ghost_check(self, scan: DirectionalScan) -> TrustCheck:
        reported = len(scan.received) + len(scan.ghost_icaos)
        if reported == 0:
            return TrustCheck(
                "ghost", True, 1.0, "no reported aircraft"
            )
        fraction = len(scan.ghost_icaos) / reported
        passed = fraction <= self.max_ghost_fraction
        # Smooth penalty: full credit at 0, zero by 4x the tolerance.
        slack = self.max_ghost_fraction * 4.0
        score = max(0.0, 1.0 - fraction / slack) if slack > 0 else 0.0
        if fraction == 0.0:
            score = 1.0
        return TrustCheck(
            "ghost",
            passed,
            score,
            f"{len(scan.ghost_icaos)} ghost aircraft "
            f"({fraction:.1%} of reported)",
        )

    def _too_perfect_check(self, scan: DirectionalScan) -> TrustCheck:
        far = [
            o
            for o in scan.observations
            if o.ground_range_km >= self.far_range_km
        ]
        if len(scan.observations) < 10 or len(far) < 5:
            return TrustCheck(
                "too_perfect", True, 1.0, "insufficient traffic to judge"
            )
        total_rate = scan.reception_rate
        far_rate = sum(1 for o in far if o.received) / len(far)
        suspicious = (
            total_rate >= self.perfect_rate_threshold
            and far_rate >= self.perfect_rate_threshold
        )
        score = 0.2 if suspicious else 1.0
        return TrustCheck(
            "too_perfect",
            not suspicious,
            score,
            f"reception rate {total_rate:.1%}, far-aircraft rate "
            f"{far_rate:.1%}",
        )

    def _rssi_check(self, scan: DirectionalScan) -> TrustCheck:
        """RSSI plausibility.

        Real per-aircraft RSSI spreads widely — transponder power
        alone varies 75-500 W (the paper's reason for distrusting raw
        RSSI), plus path loss over 5-100 km and obstruction losses.
        Fabricated data shows a near-constant RSSI, and a *positive*
        RSSI/log-distance trend is physically backwards.
        """
        points = [
            (math.log10(max(o.ground_range_m, 1.0)), o.mean_rssi_dbfs)
            for o in scan.received
            if o.mean_rssi_dbfs is not None
        ]
        if len(points) < 8:
            return TrustCheck(
                "rssi", True, 1.0, "too few RSSI samples to judge"
            )
        x = np.asarray([p[0] for p in points])
        y = np.asarray([p[1] for p in points])
        spread = float(np.std(y))
        if spread < 1.5:
            return TrustCheck(
                "rssi",
                False,
                0.2,
                f"implausibly uniform RSSI (std {spread:.2f} dB)",
            )
        corr = float(np.corrcoef(x, y)[0, 1])
        if corr > 0.3:
            return TrustCheck(
                "rssi",
                False,
                0.6,
                f"RSSI increases with distance (corr {corr:+.2f})",
            )
        return TrustCheck(
            "rssi",
            True,
            1.0,
            f"RSSI std {spread:.1f} dB, distance corr {corr:+.2f}",
        )


@dataclass
class NodeAssessment:
    """Everything the service concludes about one node."""

    node_id: str
    report: CalibrationReport
    trust: TrustAssessment
    claim_violations: List[ClaimViolation] = field(default_factory=list)
    abs_power: Optional[AbsolutePowerCalibration] = None

    def summary(self) -> str:
        flags = "; ".join(
            v.claim for v in self.claim_violations
        ) or "none"
        return (
            f"{self.node_id}: quality "
            f"{self.report.overall_score():.2f}, trust "
            f"{self.trust.trust_score():.2f}, claim violations: {flags}"
        )


@dataclass(frozen=True)
class AssessmentFailure:
    """A node whose assessment raised instead of completing.

    A crowd-sourced network always contains some nodes that crash
    mid-measurement (flaky hardware, malformed uploads); one of them
    must not sink the calibration run for everyone else.
    """

    node_id: str
    error: str
    exception_type: str


class NetworkAssessments(Dict[str, "NodeAssessment"]):
    """Per-node assessments, plus the nodes that failed outright.

    Behaves exactly like the plain ``{node_id: NodeAssessment}`` dict
    :meth:`CalibrationService.evaluate_network` historically returned;
    nodes whose evaluation raised are absent from the mapping and
    recorded in :attr:`failures` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failures: Dict[str, AssessmentFailure] = {}
        #: Campaign-level counters (path-cache hits, retries, ...)
        #: attached by the producer; empty for plain batch runs.
        self.metrics: Dict[str, Union[int, float]] = {}


@dataclass
class CalibrationService:
    """Runs the whole pipeline over a network of nodes.

    Attributes:
        traffic: shared traffic picture (all nodes are in one metro).
        ground_truth: the flight ground-truth service.
        cell_towers: regional tower database.
        tv_towers: regional TV transmitters.
        engine: compute-backend name threaded into both evaluators
            (``repro.engines``); ``None`` resolves through
            ``$REPRO_ENGINE`` to the registry default.
    """

    traffic: TrafficSimulator
    ground_truth: FlightRadarService
    cell_towers: TowerDatabase
    tv_towers: List[TvTower] = field(default_factory=list)
    fm_towers: List[FmTower] = field(default_factory=list)
    trust_evaluator: TrustEvaluator = field(default_factory=TrustEvaluator)
    classifier: IndoorOutdoorClassifier = field(
        default_factory=IndoorOutdoorClassifier
    )
    engine: Optional[str] = None

    def evaluate_node(
        self,
        node: SensorNode,
        seed: int = 0,
        fabrication: Optional[FabricationStrategy] = None,
    ) -> NodeAssessment:
        """Run both evaluations, trust checks, and claim verification.

        ``fabrication`` lets experiments inject an adversarial
        operator between the honest measurement and the service.
        """
        rng = np.random.default_rng(seed)
        evaluator = DirectionalEvaluator(
            node=node,
            traffic=self.traffic,
            ground_truth=self.ground_truth,
            engine=self.engine,
        )
        scan = evaluator.run(rng)
        if fabrication is not None:
            scan = fabrication.fabricate(scan, rng)

        fov = KnnFovEstimator().estimate(scan)
        freq_eval = FrequencyEvaluator(
            node=node,
            cell_towers=self.cell_towers,
            tv_towers=self.tv_towers,
            fm_towers=self.fm_towers,
            engine=self.engine,
        )
        profile = freq_eval.run(rng)
        features = extract_features(scan, fov, profile)
        classification = classify_node(
            scan, fov, profile, self.classifier
        )
        report = CalibrationReport(
            node_id=node.node_id,
            scan=scan,
            fov=fov,
            profile=profile,
            features=features,
            classification=classification,
        )
        trust = self.trust_evaluator.assess(scan)
        violations = (
            report.verify_claims(node.claims) if node.claims else []
        )
        if node.claims is not None:
            position_result = PositionVerifier().verify(
                scan, node.claims.position
            )
            if not position_result.consistent:
                violations.append(
                    ClaimViolation(
                        claim="claimed position",
                        evidence=(
                            "reception cloud centers "
                            f"{position_result.centroid_offset_km:.0f}"
                            " km from the claimed location"
                            + (
                                f"; {position_result.impossible_receptions}"
                                " receptions impossible from there"
                                if position_result.impossible_receptions
                                else ""
                            )
                        ),
                    )
                )
        abs_power = AbsolutePowerCalibrator().calibrate(
            node,
            profile,
            self.tv_towers,
            self.fm_towers,
            fov=fov,
        )
        return NodeAssessment(
            node_id=node.node_id,
            report=report,
            trust=trust,
            claim_violations=violations,
            abs_power=abs_power,
        )

    def evaluate_network(
        self,
        nodes: List[SensorNode],
        seed: int = 0,
        fabrications: Optional[Dict[str, FabricationStrategy]] = None,
    ) -> NetworkAssessments:
        """Evaluate every node; returns assessments keyed by node id.

        A node that raises during assessment is recorded in the
        result's ``failures`` map instead of aborting the whole run —
        the remaining nodes are still evaluated, with the same
        per-node seeds they would have gotten in a clean run.
        """
        fabrications = fabrications or {}
        out = NetworkAssessments()
        for i, node in enumerate(nodes):
            try:
                out[node.node_id] = self.evaluate_node(
                    node,
                    seed=seed + i,
                    fabrication=fabrications.get(node.node_id),
                )
            except Exception as exc:  # noqa: BLE001 - isolate the node
                out.failures[node.node_id] = AssessmentFailure(
                    node_id=node.node_id,
                    error=str(exc),
                    exception_type=type(exc).__name__,
                )
        return out
