"""Shared observation records produced by the directional evaluation.

Kept in a leaf module so both the calibration pipeline
(:mod:`repro.core`) and the adversary models (:mod:`repro.node.fabrication`)
can import them without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.adsb.icao import IcaoAddress
from repro.geo.coords import GeoPoint
from repro.interference.collisions import CollisionStats


@dataclass(frozen=True)
class AircraftObservation:
    """One ground-truth aircraft and whether the node received it.

    This is exactly the paper's Figure 1 data: every aircraft within
    the query radius becomes a point at (bearing, range), colored by
    whether at least one ADS-B message from it was decoded.

    Attributes:
        icao: aircraft address (the join key).
        callsign: flight identification from ground truth.
        bearing_deg: bearing from the sensor to the aircraft.
        ground_range_m: ground distance from the sensor.
        elevation_deg: elevation angle from the sensor.
        position: ground-truth reported position.
        received: True if ≥1 message was decoded (a blue point).
        n_messages: number of messages decoded from this aircraft.
        mean_rssi_dbfs: mean reported RSSI of decoded messages, or
            None when nothing was received.
    """

    icao: IcaoAddress
    callsign: str
    bearing_deg: float
    ground_range_m: float
    elevation_deg: float
    position: GeoPoint
    received: bool
    n_messages: int = 0
    mean_rssi_dbfs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ground_range_m < 0.0:
            raise ValueError(
                f"range must be >= 0: {self.ground_range_m}"
            )
        if self.received and self.n_messages <= 0:
            raise ValueError("received observations need n_messages > 0")

    @property
    def ground_range_km(self) -> float:
        return self.ground_range_m / 1000.0


@dataclass
class DirectionalScan:
    """Result of one 30-second directional evaluation run (§3.1).

    Attributes:
        node_id: which node was evaluated.
        duration_s: capture duration.
        radius_m: ground-truth query radius.
        observations: one record per ground-truth aircraft.
        decoded_message_count: total ADS-B messages decoded.
        ghost_icaos: addresses decoded locally but absent from ground
            truth — essentially zero for honest nodes, and the key
            fabrication tell for the trust checks.
        collision_stats: shared-medium outcome when the run modelled
            1090 MHz collisions (:mod:`repro.interference`); ``None``
            for interference-free runs.
    """

    node_id: str
    duration_s: float
    radius_m: float
    observations: List[AircraftObservation] = field(default_factory=list)
    decoded_message_count: int = 0
    ghost_icaos: List[IcaoAddress] = field(default_factory=list)
    collision_stats: Optional[CollisionStats] = None

    @property
    def received(self) -> List[AircraftObservation]:
        """Aircraft with at least one decoded message (blue points)."""
        return [o for o in self.observations if o.received]

    @property
    def missed(self) -> List[AircraftObservation]:
        """Aircraft never decoded (gray points)."""
        return [o for o in self.observations if not o.received]

    @property
    def reception_rate(self) -> float:
        """Fraction of ground-truth aircraft received."""
        if not self.observations:
            return 0.0
        return len(self.received) / len(self.observations)

    def max_received_range_km(self) -> float:
        """Longest range an aircraft was received from."""
        received = self.received
        if not received:
            return 0.0
        return max(o.ground_range_km for o in received)

    def received_range_percentile_km(self, q: float) -> float:
        """Percentile of received-aircraft ranges (robust reach).

        The maximum is sensitive to single lucky multipath receptions;
        classifiers use e.g. the 90th percentile instead.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        received = self.received
        if not received:
            return 0.0
        ranges = sorted(o.ground_range_km for o in received)
        idx = min(
            int(len(ranges) * q / 100.0), len(ranges) - 1
        )
        return ranges[idx]
