"""The paper's contribution: automatic calibration of spectrum sensors.

- :mod:`repro.core.directional` — §3.1: ADS-B-based directional
  reception evaluation against flight-tracker ground truth.
- :mod:`repro.core.fov` — field-of-view estimation (sector histogram,
  KNN, and linear SVM — the §5 ML direction).
- :mod:`repro.core.frequency` — §3.2: cellular + broadcast-TV
  frequency-response evaluation.
- :mod:`repro.core.classify` — indoor/outdoor and installation-class
  deduction from the combined evidence.
- :mod:`repro.core.report` — per-node calibration reports, band
  grades, and claim verification.
- :mod:`repro.core.network` — whole-network calibration and the trust
  checks that catch fabricated data.
- :mod:`repro.core.scheduler` — §5: when to measure, given diurnal
  flight-density variation.
- :mod:`repro.core.metrics` — shared counters / latency percentiles
  used by both the fleet runtime and the stream gateway.
"""

# observations must be imported first: repro.node.fabrication (pulled
# in transitively below) imports it from a partially-initialized
# repro.core package.
from repro.core.observations import AircraftObservation, DirectionalScan
from repro.core.directional import (
    ADSB_BANDWIDTH_HZ,
    DECODE_SNR_DB,
    DirectionalEvaluator,
)
from repro.core.fov import (
    MULTIPATH_FLOOR_KM,
    FieldOfViewEstimate,
    KnnFovEstimator,
    LinearSvmFovEstimator,
    SectorHistogramEstimator,
    pool_scans,
)
from repro.core.frequency import (
    BandMeasurement,
    FrequencyEvaluator,
    FrequencyProfile,
)
from repro.core.classify import (
    Classification,
    IndoorOutdoorClassifier,
    InstallationFeatures,
    classify_node,
    extract_features,
)
from repro.core.report import (
    BandGrade,
    CalibrationReport,
    ClaimViolation,
    grade_for_excess_db,
)
from repro.core.network import (
    AssessmentFailure,
    CalibrationService,
    NetworkAssessments,
    NodeAssessment,
    TrustAssessment,
    TrustCheck,
    TrustEvaluator,
)
from repro.core.abs_power import (
    AbsolutePowerCalibration,
    AbsolutePowerCalibrator,
)
from repro.core.crosscheck import (
    CrossChecker,
    CrossCheckRow,
    informative_received_set,
    jaccard,
)
from repro.core.ingest import IngestStats, parse_sbs_stream, scan_from_sbs
from repro.core.metrics import MetricsRegistry, percentile
from repro.core.position_check import (
    PositionCheckResult,
    PositionVerifier,
    plausible_range_check,
)
from repro.core.scheduler import (
    DEFAULT_DIURNAL_PROFILE,
    DayTrafficModel,
    MeasurementScheduler,
    Schedule,
    diurnal_density,
    expected_distinct_aircraft,
)
from repro.core.serialize import (
    assessment_from_dict,
    assessment_from_json,
    assessment_to_dict,
    assessment_to_json,
    report_from_json,
    report_to_json,
    scan_from_dict,
    scan_to_dict,
)

__all__ = [
    "AircraftObservation",
    "DirectionalScan",
    "ADSB_BANDWIDTH_HZ",
    "DECODE_SNR_DB",
    "DirectionalEvaluator",
    "MULTIPATH_FLOOR_KM",
    "FieldOfViewEstimate",
    "KnnFovEstimator",
    "LinearSvmFovEstimator",
    "SectorHistogramEstimator",
    "pool_scans",
    "BandMeasurement",
    "FrequencyEvaluator",
    "FrequencyProfile",
    "Classification",
    "IndoorOutdoorClassifier",
    "InstallationFeatures",
    "classify_node",
    "extract_features",
    "BandGrade",
    "CalibrationReport",
    "ClaimViolation",
    "grade_for_excess_db",
    "AssessmentFailure",
    "CalibrationService",
    "NetworkAssessments",
    "NodeAssessment",
    "TrustAssessment",
    "TrustCheck",
    "TrustEvaluator",
    "AbsolutePowerCalibration",
    "AbsolutePowerCalibrator",
    "CrossChecker",
    "CrossCheckRow",
    "informative_received_set",
    "jaccard",
    "IngestStats",
    "MetricsRegistry",
    "parse_sbs_stream",
    "percentile",
    "scan_from_sbs",
    "PositionCheckResult",
    "PositionVerifier",
    "plausible_range_check",
    "DEFAULT_DIURNAL_PROFILE",
    "DayTrafficModel",
    "MeasurementScheduler",
    "Schedule",
    "diurnal_density",
    "expected_distinct_aircraft",
    "assessment_from_dict",
    "assessment_from_json",
    "assessment_to_dict",
    "assessment_to_json",
    "report_from_json",
    "report_to_json",
    "scan_from_dict",
    "scan_to_dict",
]
