"""Installation-environment classification.

The paper (§3.2): "combining the results from multiple experiments,
including ADS-B, cellular networks, and broadcast TV, can provide
additional insights such as determining whether an installation is
indoor or outdoor ... These deductions can be used to independently
verify claims about a node installation."

Two classifiers are provided: a transparent rule-based one following
the paper's stated reasoning, and a logistic scorer over the same
features that yields a calibrated outdoor probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.fov import FieldOfViewEstimate
from repro.core.frequency import FrequencyProfile
from repro.core.observations import DirectionalScan

#: Band split used throughout: "low" is sub-1 GHz (penetrates
#: buildings), "high" is 1.5 GHz+ (does not).
LOW_BAND_HZ = 1e9
HIGH_BAND_HZ = 1.5e9


@dataclass(frozen=True)
class InstallationFeatures:
    """Signal-derived features describing an installation.

    Attributes:
        fov_open_fraction: fraction of the horizon with reception.
        max_received_range_km: farthest received ADS-B aircraft.
        reach_km: robust (90th-percentile) received range — the
            feature the classifier actually splits on, immune to a
            single lucky multipath reception.
        high_band_decode_fraction: fraction of known ≥1.5 GHz signals
            decoded.
        high_band_excess_db: mean excess attenuation ≥1.5 GHz (the
            non-decodable floor ``HIGH_EXCESS_FLOOR_DB`` when nothing
            decoded).
        low_band_excess_db: mean excess attenuation <1 GHz.
    """

    fov_open_fraction: float
    max_received_range_km: float
    reach_km: float
    high_band_decode_fraction: float
    high_band_excess_db: float
    low_band_excess_db: float

    #: Excess attenuation assigned when no high-band signal decodes.
    HIGH_EXCESS_FLOOR_DB = 45.0


def extract_features(
    scan: DirectionalScan,
    fov: FieldOfViewEstimate,
    profile: FrequencyProfile,
) -> InstallationFeatures:
    """Build classifier features from the two evaluations."""
    high = profile.mean_excess_attenuation_db(HIGH_BAND_HZ)
    if high is None:
        high = InstallationFeatures.HIGH_EXCESS_FLOOR_DB
    low = profile.mean_excess_attenuation_db(0.0, LOW_BAND_HZ)
    if low is None:
        low = InstallationFeatures.HIGH_EXCESS_FLOOR_DB
    return InstallationFeatures(
        fov_open_fraction=fov.open_fraction(),
        max_received_range_km=scan.max_received_range_km(),
        reach_km=scan.received_range_percentile_km(90.0),
        high_band_decode_fraction=profile.decode_fraction(HIGH_BAND_HZ),
        high_band_excess_db=high,
        low_band_excess_db=low,
    )


@dataclass(frozen=True)
class Classification:
    """The classifier's verdict.

    Attributes:
        installation: "rooftop", "window", or "indoor".
        outdoor: boolean verdict.
        outdoor_probability: calibrated probability from the logistic
            scorer.
    """

    installation: str
    outdoor: bool
    outdoor_probability: float


@dataclass
class IndoorOutdoorClassifier:
    """Rule-based + logistic installation classifier.

    The rules mirror the paper's reasoning:

    - receives all signal families with little excess attenuation and
      a wide ADS-B field of view → outdoor (rooftop);
    - significant degradation at high frequencies but some high-band
      signals survive, narrow field of view, medium ADS-B reach →
      behind a window;
    - high band completely dead, only sub-1 GHz signals survive, ADS-B
      limited to nearby aircraft → indoor.
    """

    rooftop_min_open_fraction: float = 0.40
    rooftop_max_high_excess_db: float = 8.0
    #: Indoor sites receive only nearby aircraft; the occasional
    #: multipath reception tops out around 35 km, while even a narrow
    #: window sees its open sector past 60 km.
    indoor_max_range_km: float = 40.0
    indoor_min_high_excess_db: float = 30.0

    def classify(
        self, features: InstallationFeatures
    ) -> Classification:
        """Apply the rules and the logistic score."""
        probability = self.outdoor_probability(features)
        if (
            features.fov_open_fraction >= self.rooftop_min_open_fraction
            and features.high_band_excess_db
            <= self.rooftop_max_high_excess_db
        ):
            return Classification("rooftop", True, probability)
        if (
            features.reach_km <= self.indoor_max_range_km
            and features.high_band_excess_db
            >= self.indoor_min_high_excess_db
        ):
            return Classification("indoor", False, probability)
        return Classification("window", False, probability)

    def outdoor_probability(
        self, features: InstallationFeatures
    ) -> float:
        """Logistic score over normalized features.

        Weights are fixed (hand-calibrated on the simulated testbed);
        a production system would fit them on labelled installs.
        """
        z = (
            4.0 * (features.fov_open_fraction - 0.35)
            + 0.04 * (features.reach_km - 50.0)
            - 0.12 * (features.high_band_excess_db - 12.0)
            + 2.0 * (features.high_band_decode_fraction - 0.5)
        )
        return 1.0 / (1.0 + math.exp(-z))


def classify_node(
    scan: DirectionalScan,
    fov: FieldOfViewEstimate,
    profile: FrequencyProfile,
    classifier: Optional[IndoorOutdoorClassifier] = None,
) -> Classification:
    """Convenience wrapper: features + classification in one call."""
    clf = classifier or IndoorOutdoorClassifier()
    return clf.classify(extract_features(scan, fov, profile))
