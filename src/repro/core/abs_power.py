"""Absolute received-power calibration (§5 "other types of calibration").

"If precise measurements of absolute received signal power are needed,
further techniques would be necessary as SDRs are not inherently
calibrated for this purpose."

The technique here is the signals-of-opportunity version: known
broadcast transmitters have public EIRPs and locations, so the
absolute power arriving at an unobstructed antenna is computable from
physics. Comparing those predictions with the node's dBFS readings
estimates the node's dBFS→dBm offset (its effective full-scale input
power). Obstructed paths only ever *reduce* the measured value, so the
offset estimate uses a low quantile of the per-signal offsets — the
least-obstructed signals anchor it (for the window node that is the
in-view 521 MHz TV tower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.fov import FieldOfViewEstimate
from repro.core.frequency import FrequencyProfile
from repro.environment.links import ray_geometry
from repro.fm.tower import FmTower
from repro.node.sensor import SensorNode
from repro.rf.pathloss import free_space_path_loss_db
from repro.sdr.antenna import WIDEBAND_700_2700, Antenna
from repro.tv.tower import TvTower


@dataclass(frozen=True)
class AbsolutePowerCalibration:
    """Estimated dBFS→dBm conversion for one node.

    Attributes:
        full_scale_dbm_estimate: estimated input power at 0 dBFS.
        spread_db: spread (90th - 10th percentile) of the per-signal
            offsets — a diagnostic of how unevenly obstructed the
            contributing signals are, *not* a reliability signal: a
            uniformly obstructed (indoor) node shows a small spread
            around a badly biased estimate.
        anchor_label: the least-obstructed contributing signal.
        anchor_bearing_deg: its arrival bearing.
        n_signals: how many known signals contributed.
        reliable: the anchor signal arrives through the node's
            estimated-open field of view, so its path is genuinely
            unobstructed and the offset is a true calibration rather
            than an upper bound.
    """

    full_scale_dbm_estimate: Optional[float]
    spread_db: float
    anchor_label: Optional[str]
    anchor_bearing_deg: Optional[float]
    n_signals: int
    reliable: bool

    def to_dbm(self, dbfs: float) -> float:
        """Convert a node reading to absolute power."""
        if self.full_scale_dbm_estimate is None:
            raise ValueError("no calibration available")
        return dbfs + self.full_scale_dbm_estimate


@dataclass
class AbsolutePowerCalibrator:
    """Estimates a node's dBFS→dBm offset from known broadcasters.

    Attributes:
        reference_antenna: nominal antenna used for the physics
            predictions (the verifier does not trust node hardware).
        quantile: which quantile of the per-signal offsets to use.
            Obstruction only ever *adds* loss, so the minimum
            (quantile 0) is the estimator — any higher quantile mixes
            obstructed paths into the estimate the moment only one or
            two signals are clear. Shadowing on the anchor path puts
            the residual error at a couple of dB; the FoV gate, not
            the quantile, supplies the trust.
        min_signals: fewest contributing signals for any estimate.
    """

    reference_antenna: Antenna = None
    quantile: float = 0.0
    min_signals: int = 3

    def __post_init__(self) -> None:
        if self.reference_antenna is None:
            self.reference_antenna = WIDEBAND_700_2700
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0,1]: {self.quantile}")

    def _predicted_dbm(
        self, node: SensorNode, position, erp_dbm: float, freq_hz: float
    ) -> float:
        geom = ray_geometry(node.position, position)
        path = free_space_path_loss_db(geom.slant_m, freq_hz)
        gain = self.reference_antenna.gain_at(
            freq_hz, geom.azimuth_deg
        )
        return erp_dbm - path + gain

    def calibrate(
        self,
        node: SensorNode,
        profile: FrequencyProfile,
        tv_towers: Sequence[TvTower] = (),
        fm_towers: Sequence[FmTower] = (),
        fov: Optional[FieldOfViewEstimate] = None,
    ) -> AbsolutePowerCalibration:
        """Estimate the node's full-scale input power.

        Uses the TV and FM rows of ``profile`` (whose measured values
        are in the node's dBFS) against physics predictions for the
        same transmitters. When a ``fov`` estimate is supplied, the
        result is marked reliable only if the anchor (least-obstructed)
        signal arrives through an open bearing — without a clear path
        the offset is only an upper bound on the true full scale.
        """
        towers = {t.callsign: t for t in tv_towers}
        towers.update({t.callsign: t for t in fm_towers})
        offsets: List[float] = []
        bearings: List[float] = []
        labels: List[str] = []
        for m in profile.measurements:
            if m.source not in ("tv", "fm") or not m.decoded:
                continue
            tower = towers.get(m.label)
            if tower is None:
                continue
            predicted = self._predicted_dbm(
                node, tower.position, tower.erp_dbm, m.freq_hz
            )
            offsets.append(predicted - m.measured)
            bearings.append(
                ray_geometry(node.position, tower.position).azimuth_deg
            )
            labels.append(m.label)
        if len(offsets) < self.min_signals:
            return AbsolutePowerCalibration(
                full_scale_dbm_estimate=None,
                spread_db=0.0,
                anchor_label=None,
                anchor_bearing_deg=None,
                n_signals=len(offsets),
                reliable=False,
            )
        arr = np.asarray(offsets)
        estimate = float(np.quantile(arr, self.quantile))
        spread = float(
            np.quantile(arr, 0.9) - np.quantile(arr, 0.1)
        )
        anchor = int(np.argmin(arr))
        reliable = False
        if fov is not None:
            reliable = fov.is_open(bearings[anchor])
        return AbsolutePowerCalibration(
            full_scale_dbm_estimate=estimate,
            spread_db=spread,
            anchor_label=labels[anchor],
            anchor_bearing_deg=bearings[anchor],
            n_signals=len(offsets),
            reliable=reliable,
        )
