"""Frequency-response evaluation (paper §3.2).

ADS-B characterizes a node at 1090 MHz only; this evaluation measures
known signals across the rest of the spectrum — cellular RSRP via the
srsUE-style scanner (Figure 3) and broadcast-TV channel power via the
GNU Radio-style meter (Figure 4) — and converts each into an
*excess attenuation* relative to what an unobstructed installation at
the same place would measure. The verifier can compute that reference
because transmitter locations and powers are public knowledge (tower
databases, station databases); the per-band excess is the quantity
that reveals how the obstructions found in §3.1 behave at other
frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cellular.cellmapper import TowerDatabase
from repro.cellular.scanner import CellMeasurement, SrsUeScanner
from repro.engines.pathcache import get_path_cache
from repro.engines.registry import resolve_engine
from repro.environment.links import ray_geometry, ray_geometry_arrays
from repro.fm.meter import FmPowerMeter
from repro.fm.tower import FmTower
from repro.interference.aggregate import (
    dbfs_to_linear,
    dbm_to_mw,
    linear_to_dbfs,
    mw_to_dbm,
)
from repro.interference.config import InterferenceConfig
from repro.interference.sources import (
    cell_cochannel_interference_mw,
    tv_adjacent_interference_mw,
)
from repro.node.sensor import SensorNode
from repro.rf.pathloss import free_space_path_loss_db
from repro.sdr.antenna import WIDEBAND_700_2700, Antenna
from repro.tv.meter import TvPowerMeter
from repro.tv.tower import TvTower
from repro.tv.waveform import VSB_OCCUPIED_HZ

#: LTE resource-element bandwidth — one OFDM subcarrier. RSRP and the
#: co-channel interference it competes with are both per-RE figures.
LTE_RE_BANDWIDTH_HZ = 15e3


@dataclass(frozen=True)
class BandMeasurement:
    """One known-signal measurement, normalized to excess attenuation.

    Attributes:
        source: "cellular" or "tv".
        label: transmitter label ("Tower 1", "K22CC", ...).
        freq_hz: carrier frequency measured.
        measured: the raw reading (RSRP dBm for cellular, dBFS for
            TV), or None when the signal could not be decoded.
        expected: the unobstructed-installation reference in the same
            unit.
        excess_attenuation_db: expected - measured; None when not
            decodable (the attenuation exceeded the measurable range).
        decoded: whether the signal was received at all.
        interference_dbm: co-channel/adjacent-channel interferer power
            at the SDR input competing with this signal, when the run
            modelled interference and any interferer was present;
            ``None`` otherwise.
    """

    source: str
    label: str
    freq_hz: float
    measured: Optional[float]
    expected: float
    excess_attenuation_db: Optional[float]
    decoded: bool
    interference_dbm: Optional[float] = None


@dataclass
class FrequencyProfile:
    """The node's reception capability across frequency bands."""

    node_id: str
    measurements: List[BandMeasurement] = field(default_factory=list)

    def by_source(self, source: str) -> List[BandMeasurement]:
        return [m for m in self.measurements if m.source == source]

    def decoded(self) -> List[BandMeasurement]:
        return [m for m in self.measurements if m.decoded]

    def band(
        self, low_hz: float, high_hz: float
    ) -> List[BandMeasurement]:
        """Measurements whose carrier lies in [low, high]."""
        return [
            m
            for m in self.measurements
            if low_hz <= m.freq_hz <= high_hz
        ]

    def mean_excess_attenuation_db(
        self, low_hz: float = 0.0, high_hz: float = float("inf")
    ) -> Optional[float]:
        """Mean excess attenuation over decoded signals in a band.

        None when no signal in the band was decoded.
        """
        values = [
            m.excess_attenuation_db
            for m in self.band(low_hz, high_hz)
            if m.excess_attenuation_db is not None
        ]
        if not values:
            return None
        return float(np.mean(values))

    def decode_fraction(
        self, low_hz: float = 0.0, high_hz: float = float("inf")
    ) -> float:
        """Fraction of known signals in a band that decoded."""
        in_band = self.band(low_hz, high_hz)
        if not in_band:
            return 0.0
        return sum(1 for m in in_band if m.decoded) / len(in_band)

    def usable_bands(
        self, max_excess_db: float = 15.0
    ) -> List[BandMeasurement]:
        """Signals received with acceptable degradation."""
        return [
            m
            for m in self.decoded()
            if m.excess_attenuation_db is not None
            and m.excess_attenuation_db <= max_excess_db
        ]


@dataclass
class FrequencyEvaluator:
    """Runs the §3.2 measurements against one node.

    The *expected* reference for each signal is what a nominal,
    healthy installation at the claimed position would measure —
    computed with ``reference_antenna``, **not** the node's actual
    hardware. Referencing the node's own antenna would let hardware
    faults cancel out of the excess-attenuation arithmetic (a damaged
    feedline lowers measured and expected alike); the verifier does
    not trust the node's hardware, that is the thing being evaluated.

    Attributes:
        node: the sensor under evaluation.
        cell_towers: known cellular towers (the cellmapper role).
        tv_towers: known TV transmitters.
        fm_towers: known FM stations (§5 "additional RF sources").
        reference_antenna: the nominal healthy antenna used for the
            expected references.
        use_batch: run the vectorized one-capture-per-band pipeline
            (:meth:`run`); ``False`` keeps the per-tower scalar path.
            :meth:`run_scalar` is always available as the equivalence
            oracle regardless of this flag.
        interference: co-channel interference model
            (:class:`repro.interference.InterferenceConfig`). ``None``
            or disabled keeps the interference-free profile
            bit-identical.
        engine: compute-backend name (``repro.engines``); ``None``
            resolves through ``$REPRO_ENGINE`` to the registry
            default. The ``scalar`` engine forces :meth:`run_scalar`.
    """

    node: SensorNode
    cell_towers: TowerDatabase
    tv_towers: Sequence[TvTower] = ()
    fm_towers: Sequence[FmTower] = ()
    reference_antenna: Optional[Antenna] = None
    use_batch: bool = True
    interference: Optional[InterferenceConfig] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.reference_antenna is None:
            self.reference_antenna = WIDEBAND_700_2700

    def interference_enabled(self) -> bool:
        """Whether the co-channel interference model is active."""
        return self.interference is not None and self.interference.enabled

    def _expected_cell_rsrp_dbm(self, tower) -> float:
        """Reference RSRP for a healthy unobstructed install here."""
        geom = ray_geometry(self.node.position, tower.position)
        path = free_space_path_loss_db(
            geom.slant_m, tower.downlink_freq_hz
        )
        gain = self.reference_antenna.gain_at(
            tower.downlink_freq_hz, geom.azimuth_deg
        )
        return tower.eirp_per_re_dbm() - path + gain

    def _expected_tv_dbfs(self, tower: TvTower) -> float:
        """Reference channel power for a healthy unobstructed install."""
        geom = ray_geometry(self.node.position, tower.position)
        path = free_space_path_loss_db(
            geom.slant_m, tower.center_freq_hz
        )
        gain = self.reference_antenna.gain_at(
            tower.center_freq_hz, geom.azimuth_deg
        )
        power_dbm = tower.erp_dbm - path + gain
        return self.node.sdr.input_dbm_to_dbfs(power_dbm)

    def run(
        self,
        rng: Optional[np.random.Generator] = None,
        tv_iq_mode: bool = False,
    ) -> FrequencyProfile:
        """Measure every known signal and build the profile.

        Dispatches to the vectorized one-capture-per-band pipeline
        when ``use_batch`` is set, else to :meth:`run_scalar`. Budget
        paths agree to float roundoff; the IQ path agrees within the
        tolerance documented in ``docs/performance.md``.

        Args:
            rng: randomness for shadowing and the IQ path; None runs
                the deterministic median-budget variant.
            tv_iq_mode: run the TV measurements through the full
                GNU Radio-style DSP chain instead of the fast budget
                path (requires ``rng``).
        """
        if tv_iq_mode and rng is None:
            raise ValueError("tv_iq_mode requires an rng")
        eng = resolve_engine(self.engine)
        if not self.use_batch or not eng.use_batch:
            return self.run_scalar(rng, tv_iq_mode)
        # The whole profile is a function of static content (site,
        # hardware, emitter layouts, interference config) plus the RNG
        # bit-stream position, so warm runs replay it from the path
        # cache; BandMeasurement is frozen, so entries are shareable.
        key_parts = (
            "frequency_profile",
            eng.kernel_token,
            self.node.environment,
            self.node.sdr,
            self.node.antenna,
            self.reference_antenna,
            tuple(self.cell_towers.towers),
            tuple(self.tv_towers),
            tuple(self.fm_towers),
            self.interference,
            tv_iq_mode,
        )
        cache = get_path_cache()
        if rng is None:
            measurements = cache.get_or_compute(
                key_parts, lambda: self._run_batch(rng, tv_iq_mode)
            )
        else:
            measurements = cache.get_or_compute_rng(
                key_parts,
                rng,
                lambda: self._run_batch(rng, tv_iq_mode),
            )
        profile = FrequencyProfile(node_id=self.node.node_id)
        profile.measurements.extend(measurements)
        return profile

    def _run_batch(
        self,
        rng: Optional[np.random.Generator],
        tv_iq_mode: bool,
    ) -> tuple:
        """One uncached pass of the vectorized pipeline."""
        cellular = self._run_cellular_batch(rng)
        tv = self._run_tv_batch(rng, tv_iq_mode)
        if self.interference_enabled():
            cellular = self._apply_cell_interference(cellular)
            tv = self._apply_tv_interference(tv)
        measurements = cellular + tv + self._run_fm_batch()
        measurements.sort(key=lambda m: m.freq_hz)
        return tuple(measurements)

    def run_scalar(
        self,
        rng: Optional[np.random.Generator] = None,
        tv_iq_mode: bool = False,
    ) -> FrequencyProfile:
        """Per-tower scalar pipeline: the equivalence oracle."""
        if tv_iq_mode and rng is None:
            raise ValueError("tv_iq_mode requires an rng")
        profile = FrequencyProfile(node_id=self.node.node_id)
        cellular = self._run_cellular(rng)
        tv = self._run_tv(rng, tv_iq_mode)
        if self.interference_enabled():
            # The interference terms are deterministic verifier-side
            # budgets; both paths call the identical vectorized
            # sources so run()/run_scalar() stay bit-equal.
            cellular = self._apply_cell_interference(cellular)
            tv = self._apply_tv_interference(tv)
        profile.measurements.extend(cellular)
        profile.measurements.extend(tv)
        profile.measurements.extend(self._run_fm())
        profile.measurements.sort(key=lambda m: m.freq_hz)
        return profile

    def _apply_tv_interference(
        self, measurements: List[BandMeasurement]
    ) -> List[BandMeasurement]:
        """Fold adjacent-channel bleed into the TV measurements.

        ``measurements`` is ordered like ``self.tv_towers`` (both
        pipelines produce one entry per tower, in tower order). A
        victim with bleed sees its channel power biased up by the
        leaked energy — the power meter integrates everything in the
        band — and only counts as decoded if the wanted signal clears
        noise *plus* bleed by ``tv_min_sinr_db``.
        """
        assert self.interference is not None
        towers = list(self.tv_towers)
        interference_mw = tv_adjacent_interference_mw(
            self.node.environment,
            self.node.antenna,
            towers,
            self.interference.tv_adjacent_rejection_db,
        )
        noise_dbfs = self.node.sdr.input_dbm_to_dbfs(
            self.node.sdr.noise_floor_dbm(VSB_OCCUPIED_HZ)
        )
        noise_linear = dbfs_to_linear(noise_dbfs)
        out: List[BandMeasurement] = []
        for m, int_mw in zip(measurements, interference_mw):
            if int_mw <= 0.0:
                out.append(m)
                continue
            int_dbm = mw_to_dbm(float(int_mw))
            if not m.decoded:
                out.append(replace(m, interference_dbm=int_dbm))
                continue
            # TV powers are reported in dBFS; dBm -> dBFS is an
            # affine offset so full-scale fractions preserve every
            # power ratio the SINR needs.
            int_linear = dbfs_to_linear(
                self.node.sdr.input_dbm_to_dbfs(int_dbm)
            )
            signal_linear = dbfs_to_linear(m.measured)
            sinr_db = 10.0 * np.log10(
                signal_linear / (noise_linear + int_linear)
            )
            if sinr_db <= self.interference.tv_min_sinr_db:
                out.append(
                    replace(
                        m,
                        measured=None,
                        excess_attenuation_db=None,
                        decoded=False,
                        interference_dbm=int_dbm,
                    )
                )
                continue
            measured = linear_to_dbfs(signal_linear + int_linear)
            out.append(
                replace(
                    m,
                    measured=measured,
                    excess_attenuation_db=m.expected - measured,
                    interference_dbm=int_dbm,
                )
            )
        return out

    def _apply_cell_interference(
        self, measurements: List[BandMeasurement]
    ) -> List[BandMeasurement]:
        """Fold same-EARFCN neighbour power into the cellular scans.

        ``measurements`` is ordered like ``self.cell_towers.towers``.
        RSRP itself stays unbiased (reference-signal sequences are
        near-orthogonal across PCIs); what co-channel power destroys
        is synchronization, so a cell whose per-RE SINR falls below
        ``cell_min_sinr_db`` drops out of the scan entirely.
        """
        assert self.interference is not None
        interference_mw = cell_cochannel_interference_mw(
            self.node.environment,
            self.node.antenna,
            self.cell_towers.towers,
        )
        noise_mw = dbm_to_mw(
            self.node.sdr.noise_floor_dbm(LTE_RE_BANDWIDTH_HZ)
        )
        out: List[BandMeasurement] = []
        for m, int_mw in zip(measurements, interference_mw):
            if int_mw <= 0.0:
                out.append(m)
                continue
            int_dbm = mw_to_dbm(float(int_mw))
            if not m.decoded:
                out.append(replace(m, interference_dbm=int_dbm))
                continue
            sinr_db = 10.0 * np.log10(
                dbm_to_mw(m.measured) / (noise_mw + float(int_mw))
            )
            if sinr_db < self.interference.cell_min_sinr_db:
                out.append(
                    replace(
                        m,
                        measured=None,
                        excess_attenuation_db=None,
                        decoded=False,
                        interference_dbm=int_dbm,
                    )
                )
                continue
            out.append(replace(m, interference_dbm=int_dbm))
        return out

    def _run_cellular(
        self, rng: Optional[np.random.Generator]
    ) -> List[BandMeasurement]:
        scanner = SrsUeScanner(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        # Each distinct EARFCN is scanned once; towers sharing a
        # channel are joined by PCI out of the same scan, like a real
        # srsUE pass over the channel list.
        scans: Dict[int, List[CellMeasurement]] = {}
        out: List[BandMeasurement] = []
        for tower in self.cell_towers.towers:
            expected = self._expected_cell_rsrp_dbm(tower)
            if tower.earfcn not in scans:
                scans[tower.earfcn] = scanner.scan_earfcn(
                    tower.earfcn, self.cell_towers, rng
                )
            results = scans[tower.earfcn]
            match = next(
                (r for r in results if r.pci == tower.pci), None
            )
            if match is not None and match.decoded:
                out.append(
                    BandMeasurement(
                        source="cellular",
                        label=tower.tower_id,
                        freq_hz=tower.downlink_freq_hz,
                        measured=match.rsrp_dbm,
                        expected=expected,
                        excess_attenuation_db=expected - match.rsrp_dbm,
                        decoded=True,
                    )
                )
            else:
                out.append(
                    BandMeasurement(
                        source="cellular",
                        label=tower.tower_id,
                        freq_hz=tower.downlink_freq_hz,
                        measured=None,
                        expected=expected,
                        excess_attenuation_db=None,
                        decoded=False,
                    )
                )
        return out

    def _expected_cell_rsrp_dbm_batch(
        self, towers: Sequence
    ) -> np.ndarray:
        """Batch :meth:`_expected_cell_rsrp_dbm` (same budget terms)."""
        geom = ray_geometry_arrays(
            self.node.position, [t.position for t in towers]
        )
        freq = np.array(
            [t.downlink_freq_hz for t in towers], dtype=np.float64
        )
        kernels = resolve_engine(self.engine).kernels
        path = kernels.fspl_db_multifreq(geom.slant_m, freq)
        gain = self.reference_antenna.gain_at_multifreq(
            freq, geom.azimuth_deg
        )
        eirp = np.array(
            [t.eirp_per_re_dbm() for t in towers], dtype=np.float64
        )
        return eirp - path + gain

    def _expected_dbfs_batch(
        self, positions, erp_dbm: np.ndarray, freq_hz: np.ndarray
    ) -> np.ndarray:
        """Unobstructed-reference dBFS for broadcast transmitters."""
        geom = ray_geometry_arrays(self.node.position, positions)
        kernels = resolve_engine(self.engine).kernels
        path = kernels.fspl_db_multifreq(geom.slant_m, freq_hz)
        gain = self.reference_antenna.gain_at_multifreq(
            freq_hz, geom.azimuth_deg
        )
        return self.node.sdr.input_dbm_to_dbfs_array(
            erp_dbm - path + gain
        )

    def _run_cellular_batch(
        self, rng: Optional[np.random.Generator]
    ) -> List[BandMeasurement]:
        if not self.cell_towers.towers:
            return []
        scanner = SrsUeScanner(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        # One array scan covering every distinct EARFCN, channels in
        # first-encounter order and towers within a channel in
        # database order — the scalar path's shadow-draw order.
        ordered: List = []
        seen_earfcns = set()
        for tower in self.cell_towers.towers:
            if tower.earfcn not in seen_earfcns:
                seen_earfcns.add(tower.earfcn)
                ordered.extend(
                    self.cell_towers.by_earfcn(tower.earfcn)
                )
        results = scanner.scan_towers_batch(ordered, rng)
        by_earfcn: Dict[int, List[CellMeasurement]] = {}
        for tower, result in zip(ordered, results):
            by_earfcn.setdefault(tower.earfcn, []).append(result)
        expected = self._expected_cell_rsrp_dbm_batch(
            self.cell_towers.towers
        )
        out: List[BandMeasurement] = []
        for tower, exp in zip(self.cell_towers.towers, expected):
            match = next(
                (
                    r
                    for r in by_earfcn.get(tower.earfcn, [])
                    if r.pci == tower.pci
                ),
                None,
            )
            decoded = match is not None and match.decoded
            out.append(
                BandMeasurement(
                    source="cellular",
                    label=tower.tower_id,
                    freq_hz=tower.downlink_freq_hz,
                    measured=match.rsrp_dbm if decoded else None,
                    expected=float(exp),
                    excess_attenuation_db=(
                        float(exp) - match.rsrp_dbm
                        if decoded
                        else None
                    ),
                    decoded=decoded,
                )
            )
        return out

    def _run_tv_batch(
        self,
        rng: Optional[np.random.Generator],
        iq_mode: bool,
    ) -> List[BandMeasurement]:
        if not self.tv_towers:
            return []
        meter = TvPowerMeter(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        towers = list(self.tv_towers)
        expected = self._expected_dbfs_batch(
            [t.position for t in towers],
            np.array([t.erp_dbm for t in towers], dtype=np.float64),
            np.array(
                [t.center_freq_hz for t in towers], dtype=np.float64
            ),
        )
        tunable = [
            t
            for t in towers
            if self.node.sdr.can_tune(t.center_freq_hz)
        ]
        if iq_mode:
            measured = meter.measure_iq_batch(tunable, rng)
        else:
            measured = meter.measure_budget_batch(tunable)
        by_callsign = {m.callsign: m for m in measured}
        out: List[BandMeasurement] = []
        for tower, exp in zip(towers, expected):
            measurement = by_callsign.get(tower.callsign)
            decoded = (
                measurement is not None
                and measurement.above_noise_db > 3.0
            )
            out.append(
                BandMeasurement(
                    source="tv",
                    label=tower.callsign,
                    freq_hz=tower.center_freq_hz,
                    measured=(
                        measurement.power_dbfs if decoded else None
                    ),
                    expected=float(exp),
                    excess_attenuation_db=(
                        float(exp) - measurement.power_dbfs
                        if decoded
                        else None
                    ),
                    decoded=decoded,
                )
            )
        return out

    def _run_fm_batch(self) -> List[BandMeasurement]:
        if not self.fm_towers:
            return []
        meter = FmPowerMeter(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        towers = list(self.fm_towers)
        expected = self._expected_dbfs_batch(
            [t.position for t in towers],
            np.array([t.erp_dbm for t in towers], dtype=np.float64),
            np.array(
                [t.center_freq_hz for t in towers], dtype=np.float64
            ),
        )
        tunable = [
            t
            for t in towers
            if self.node.sdr.can_tune(t.center_freq_hz)
        ]
        measured = meter.measure_budget_batch(tunable)
        by_callsign = {m.callsign: m for m in measured}
        out: List[BandMeasurement] = []
        for tower, exp in zip(towers, expected):
            measurement = by_callsign.get(tower.callsign)
            decoded = (
                measurement is not None
                and measurement.above_noise_db > 3.0
            )
            out.append(
                BandMeasurement(
                    source="fm",
                    label=tower.callsign,
                    freq_hz=tower.center_freq_hz,
                    measured=(
                        measurement.power_dbfs if decoded else None
                    ),
                    expected=float(exp),
                    excess_attenuation_db=(
                        float(exp) - measurement.power_dbfs
                        if decoded
                        else None
                    ),
                    decoded=decoded,
                )
            )
        return out

    def _expected_fm_dbfs(self, tower: FmTower) -> float:
        """Reference FM channel power for a healthy install."""
        geom = ray_geometry(self.node.position, tower.position)
        path = free_space_path_loss_db(
            geom.slant_m, tower.center_freq_hz
        )
        gain = self.reference_antenna.gain_at(
            tower.center_freq_hz, geom.azimuth_deg
        )
        power_dbm = tower.erp_dbm - path + gain
        return self.node.sdr.input_dbm_to_dbfs(power_dbm)

    def _run_fm(self) -> List[BandMeasurement]:
        meter = FmPowerMeter(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        out: List[BandMeasurement] = []
        for tower in self.fm_towers:
            expected = self._expected_fm_dbfs(tower)
            if not self.node.sdr.can_tune(tower.center_freq_hz):
                out.append(
                    BandMeasurement(
                        source="fm",
                        label=tower.callsign,
                        freq_hz=tower.center_freq_hz,
                        measured=None,
                        expected=expected,
                        excess_attenuation_db=None,
                        decoded=False,
                    )
                )
                continue
            measurement = meter.measure_budget(tower)
            decoded = measurement.above_noise_db > 3.0
            out.append(
                BandMeasurement(
                    source="fm",
                    label=tower.callsign,
                    freq_hz=tower.center_freq_hz,
                    measured=measurement.power_dbfs if decoded else None,
                    expected=expected,
                    excess_attenuation_db=(
                        expected - measurement.power_dbfs
                        if decoded
                        else None
                    ),
                    decoded=decoded,
                )
            )
        return out

    def _run_tv(
        self,
        rng: Optional[np.random.Generator],
        iq_mode: bool,
    ) -> List[BandMeasurement]:
        meter = TvPowerMeter(
            env=self.node.environment,
            sdr=self.node.sdr,
            antenna=self.node.antenna,
        )
        out: List[BandMeasurement] = []
        for tower in self.tv_towers:
            if not self.node.sdr.can_tune(tower.center_freq_hz):
                out.append(
                    BandMeasurement(
                        source="tv",
                        label=tower.callsign,
                        freq_hz=tower.center_freq_hz,
                        measured=None,
                        expected=self._expected_tv_dbfs(tower),
                        excess_attenuation_db=None,
                        decoded=False,
                    )
                )
                continue
            if iq_mode:
                measurement = meter.measure_iq(tower, rng)
            else:
                measurement = meter.measure_budget(tower)
            expected = self._expected_tv_dbfs(tower)
            # A TV channel indistinguishable from receiver noise is a
            # failed measurement, like srsUE's failed decode.
            decoded = measurement.above_noise_db > 3.0
            out.append(
                BandMeasurement(
                    source="tv",
                    label=tower.callsign,
                    freq_hz=tower.center_freq_hz,
                    measured=measurement.power_dbfs if decoded else None,
                    expected=expected,
                    excess_attenuation_db=(
                        expected - measurement.power_dbfs
                        if decoded
                        else None
                    ),
                    decoded=decoded,
                )
            )
        return out
