"""Cross-validation between co-located sensor nodes.

The paper's techniques are deliberately "self-sufficient on a single
node" (§4), but a dense crowd-sourced network gets an extra check for
free: nodes in the same metro watch the *same sky*, so their sets of
received aircraft must overlap heavily. A node whose reception set
diverges from the local consensus is either broken or lying — without
any reference to FlightRadar24 at all, which matters when the external
ground truth itself is in doubt.

The consensus metric is the Jaccard similarity of received-ICAO sets,
restricted to informative (beyond-multipath-floor) aircraft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.adsb.icao import IcaoAddress
from repro.core.observations import DirectionalScan

#: Aircraft closer than this carry little cross-check information
#: (everyone hears them via multipath).
MIN_RANGE_KM = 20.0


def informative_received_set(
    scan: DirectionalScan, min_range_km: float = MIN_RANGE_KM
) -> Set[IcaoAddress]:
    """Received ICAOs beyond the multipath floor, plus reported ghosts.

    Ghost ICAOs are included deliberately: a replaying node's invented
    aircraft exist in nobody else's set, which is exactly the
    disagreement this check is designed to surface.
    """
    received = {
        o.icao
        for o in scan.received
        if o.ground_range_km >= min_range_km
    }
    return received | set(scan.ghost_icaos)


def jaccard(a: Set[IcaoAddress], b: Set[IcaoAddress]) -> float:
    """Jaccard similarity of two ICAO sets (1.0 for two empties)."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


@dataclass(frozen=True)
class CrossCheckRow:
    """One node's agreement with its peers.

    Attributes:
        node_id: the node scored.
        mean_similarity: mean pairwise Jaccard against the peers.
        unique_fraction: share of the node's reported aircraft that
            *no* peer heard. Fading and field-of-view differences give
            honest nodes a modest unique share; invented traffic is
            unique by construction.
        flagged: diverges from the consensus (likely broken/lying).
        abstained: too little informative evidence to judge — a
            heavily obstructed but honest node hears almost nothing
            beyond the multipath floor; silence is not a lie.
    """

    node_id: str
    mean_similarity: float
    unique_fraction: float
    flagged: bool
    abstained: bool = False


@dataclass
class CrossChecker:
    """Flags nodes whose reception sets diverge from the consensus.

    Attributes:
        min_similarity: a node whose mean pairwise Jaccard similarity
            to its peers falls below this is flagged. Honest
            co-located nodes with *different fields of view* still
            overlap substantially (close-in traffic, shared open
            sectors), while replayed or invented data overlaps almost
            not at all.
        max_unique_fraction: a node whose reported set is mostly
            unknown to every peer is inventing traffic, even when the
            real receptions it mixes in keep the Jaccard similarity
            respectable (the padding attack). Assumes the peer group
            collectively covers the sky; with few, heavily obstructed
            peers, relax this bound.
        min_range_km: informative-aircraft floor.
        min_evidence: nodes reporting fewer informative aircraft than
            this abstain rather than being judged.
    """

    min_similarity: float = 0.25
    max_unique_fraction: float = 0.35
    min_range_km: float = MIN_RANGE_KM
    min_evidence: int = 3

    def assess(
        self, scans: Sequence[DirectionalScan]
    ) -> List[CrossCheckRow]:
        """Score every node against the others."""
        if len(scans) < 2:
            raise ValueError(
                "cross-checking needs at least two nodes"
            )
        node_ids = [s.node_id for s in scans]
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("duplicate node ids in cross-check")
        sets: Dict[str, Set[IcaoAddress]] = {
            s.node_id: informative_received_set(
                s, self.min_range_km
            )
            for s in scans
        }
        rows: List[CrossCheckRow] = []
        for node_id in node_ids:
            own = sets[node_id]
            if len(own) < self.min_evidence:
                rows.append(
                    CrossCheckRow(
                        node_id=node_id,
                        mean_similarity=0.0,
                        unique_fraction=0.0,
                        flagged=False,
                        abstained=True,
                    )
                )
                continue
            similarities = [
                jaccard(own, sets[other])
                for other in node_ids
                if other != node_id
            ]
            mean = sum(similarities) / len(similarities)
            peers_union: Set[IcaoAddress] = set()
            for other in node_ids:
                if other != node_id:
                    peers_union |= sets[other]
            unique = len(own - peers_union) / len(own)
            rows.append(
                CrossCheckRow(
                    node_id=node_id,
                    mean_similarity=mean,
                    unique_fraction=unique,
                    flagged=(
                        mean < self.min_similarity
                        or unique > self.max_unique_fraction
                    ),
                )
            )
        return rows
