"""Minimal HTTP/1.1 plumbing over asyncio streams.

Just enough of the protocol for a read-only JSON API — request-line +
header parsing with hard size limits, keep-alive, ``Content-Length``
framing, strong ETags and ``304`` handling — with zero dependencies
beyond the stdlib. The application layer only ever sees the
:class:`Request`/:class:`Response` dataclasses, so the load-generator
benchmark and the unit tests can drive it without a socket.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote

#: Hard limits: a crowd-sourced fleet's public API sees garbage.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request (the only shape handlers consume)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_close(self) -> bool:
        return self.header("connection").lower() == "close"

    @property
    def if_none_match(self) -> Optional[str]:
        value = self.header("if-none-match")
        return value or None


@dataclass
class Response:
    """One response; the server layer adds framing headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    etag: Optional[str] = None
    cache_control: Optional[str] = None

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")


class BadRequest(ValueError):
    """Raised by the parser for malformed/oversized requests."""


def parse_request(
    request_line: bytes, header_lines: List[bytes]
) -> Request:
    """Parse a request line + header lines into a :class:`Request`."""
    try:
        text = request_line.decode("ascii").strip()
    except UnicodeDecodeError as exc:
        raise BadRequest("non-ascii request line") from exc
    parts = text.split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line: {text!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol: {version}")
    path, _, raw_query = target.partition("?")
    query = dict(parse_qsl(raw_query, keep_blank_values=True))
    headers: Dict[str, str] = {}
    for raw in header_lines:
        try:
            line = raw.decode("ascii").rstrip("\r\n")
        except UnicodeDecodeError as exc:
            raise BadRequest("non-ascii header") from exc
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return Request(
        method=method.upper(),
        path=unquote(path),
        query=query,
        headers=headers,
    )


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Request]:
    """Read one request off an asyncio stream (None on clean EOF)."""
    request_line = await reader.readline()
    if not request_line:
        return None
    if len(request_line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    header_lines: List[bytes] = []
    while True:
        line = await reader.readline()
        if not line:
            return None  # peer vanished mid-headers
        if line in (b"\r\n", b"\n"):
            break
        if len(header_lines) >= MAX_HEADER_LINES:
            raise BadRequest("too many headers")
        if len(line) > MAX_REQUEST_LINE:
            raise BadRequest("header line too long")
        header_lines.append(line)
    return parse_request(request_line, header_lines)


def encode_response(
    response: Response, keep_alive: bool = True
) -> bytes:
    """Serialize a :class:`Response` with framing headers."""
    head = [
        f"HTTP/1.1 {response.status} {response.reason}",
        f"Content-Length: {len(response.body)}",
    ]
    if response.body or response.status not in (204, 304):
        head.append(f"Content-Type: {response.content_type}")
    if response.etag is not None:
        head.append(f"ETag: {response.etag}")
    if response.cache_control is not None:
        head.append(f"Cache-Control: {response.cache_control}")
    head.append(
        "Connection: " + ("keep-alive" if keep_alive else "close")
    )
    return (
        ("\r\n".join(head) + "\r\n\r\n").encode("ascii")
        + response.body
    )


def json_error(status: int, message: str) -> Response:
    """A small JSON error body with the right status."""
    body = (
        '{"error": "' + message.replace('"', "'") + '"}'
    ).encode()
    return Response(status=status, body=body)


def split_path(path: str) -> Tuple[str, ...]:
    """Path -> non-empty segments (``/v1/nodes/`` -> ``("v1","nodes")``)."""
    return tuple(seg for seg in path.split("/") if seg)
