"""The asyncio front door: sockets in, :class:`SpectrumApp` out.

One `asyncio.start_server` accept loop; each connection is a
keep-alive request loop with a read timeout, and actual request
handling is gated by a semaphore so a burst of clients degrades to
queueing instead of unbounded concurrency. The app itself is
synchronous CPU work over in-memory columns (microseconds), so
running it on the loop thread is the fast path, not a compromise.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.core.metrics import MetricsRegistry
from repro.serve.app import SpectrumApp
from repro.serve.http import (
    BadRequest,
    encode_response,
    json_error,
    read_request,
)


class SpectrumServer:
    """Serves a :class:`SpectrumApp` over HTTP/1.1 on asyncio."""

    def __init__(
        self,
        app: SpectrumApp,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 64,
        request_timeout_s: float = 30.0,
        max_requests: Optional[int] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1: {max_concurrency}"
            )
        self.app = app
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.request_timeout_s = request_timeout_s
        #: Stop after this many requests (None = run until stopped);
        #: lets the CLI and tests run a bounded serve loop.
        self.max_requests = max_requests
        self.metrics: MetricsRegistry = app.metrics
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopped: Optional[asyncio.Event] = None
        self._served = 0

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._stopped = asyncio.Event()
        self._served = 0
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_stopped(self) -> int:
        """Block until :meth:`stop` (or the request budget runs out)."""
        if self._stopped is None:
            raise RuntimeError("server not started")
        await self._stopped.wait()
        await self._close()
        return self._served

    def stop(self) -> None:
        """Ask the serve loop to shut down (idempotent)."""
        if self._stopped is not None:
            self._stopped.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._semaphore is not None and self._stopped is not None
        self.metrics.incr("serve_connections")
        try:
            while not self._stopped.is_set():
                try:
                    request = await asyncio.wait_for(
                        read_request(reader),
                        timeout=self.request_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break
                except BadRequest as exc:
                    writer.write(
                        encode_response(
                            json_error(400, str(exc)), keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                async with self._semaphore:
                    response = self.app.handle(request)
                keep_alive = not request.wants_close
                writer.write(encode_response(response, keep_alive))
                await writer.drain()
                self._served += 1
                if (
                    self.max_requests is not None
                    and self._served >= self.max_requests
                ):
                    self._stopped.set()
                    break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            self.metrics.incr("serve_connection_resets")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_server(
    server: SpectrumServer,
    ready: Optional["asyncio.Future[Tuple[str, int]]"] = None,
) -> int:
    """Start, announce readiness, and serve until stopped.

    Returns the number of requests served; ``ready`` (if given)
    receives the bound address as soon as the socket listens.
    """
    address = await server.start()
    if ready is not None and not ready.done():
        ready.set_result(address)
    return await server.serve_until_stopped()
