"""Synthetic fleets at serve scale.

The load benchmark (and any capacity test) needs a 10 000-node fleet
snapshot *now*, not after ten thousand full calibration runs. This
generator fabricates statistically plausible
:class:`~repro.core.network.NodeAssessment` records directly —
mixed rooftop/window/indoor population, per-band excess attenuation
that worsens indoors, a few untrustworthy and drifting nodes, a
fraction of outright assessment failures — all from one seeded RNG,
so a given ``(n_nodes, seed)`` pair always builds the identical
fleet (and therefore the identical snapshot ETag).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.adsb.icao import IcaoAddress
from repro.core.classify import Classification, extract_features
from repro.core.fov import FieldOfViewEstimate
from repro.core.frequency import BandMeasurement, FrequencyProfile
from repro.core.network import (
    AssessmentFailure,
    NetworkAssessments,
    NodeAssessment,
    TrustAssessment,
    TrustCheck,
)
from repro.core.observations import AircraftObservation, DirectionalScan
from repro.core.report import CalibrationReport
from repro.geo.coords import GeoPoint
from repro.serve.store import DriftStatus

#: (label, freq_hz, clear-sky expected dBm) for the synthetic sweep.
BANDS: Tuple[Tuple[str, float, float], ...] = (
    ("fm-98.5", 98.5e6, -37.0),
    ("tv-566", 566.0e6, -51.0),
    ("adsb-1090", 1090.0e6, -62.0),
    ("lte-1850", 1850.0e6, -74.0),
)

_INSTALLATIONS = ("rooftop", "window", "indoor")
_N_BINS = 36
_BIN_DEG = 360.0 / _N_BINS


def synthetic_fleet(
    n_nodes: int,
    seed: int = 0,
    n_observations: int = 6,
    failure_fraction: float = 0.005,
    cheater_fraction: float = 0.02,
    drift_fraction: float = 0.01,
) -> Tuple[NetworkAssessments, Dict[str, DriftStatus]]:
    """Fabricate a fleet: assessments (with failures) + drift states."""
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be >= 0: {n_nodes}")
    rng = np.random.default_rng(seed)
    out = NetworkAssessments()
    drift: Dict[str, DriftStatus] = {}
    width = len(str(max(n_nodes - 1, 0)))

    # One vectorized draw per quantity, consumed row by row: building
    # 10k python objects dominates; the RNG should not add to it.
    kinds = rng.integers(0, 3, size=n_nodes)
    open_starts = rng.integers(0, _N_BINS, size=n_nodes)
    kind_centers = np.asarray([30, 18, 8])
    open_counts = np.clip(
        (
            kind_centers[kinds]
            + rng.normal(0.0, 3.0, size=n_nodes)
        ).astype(int),
        2,
        _N_BINS,
    )
    excess_base = np.asarray([1.0, 7.0, 18.0])[kinds] + rng.normal(
        0.0, 1.5, size=(len(BANDS), n_nodes)
    )
    failures = rng.random(n_nodes) < failure_fraction
    cheaters = rng.random(n_nodes) < cheater_fraction
    drifting = rng.random(n_nodes) < drift_fraction
    bearings = rng.uniform(0.0, 360.0, size=(n_nodes, n_observations))
    ranges_m = rng.uniform(
        5e3, 120e3, size=(n_nodes, n_observations)
    )
    rssi = rng.uniform(-32.0, -8.0, size=(n_nodes, n_observations))
    icaos = rng.integers(
        0, 1 << 24, size=(n_nodes, n_observations)
    )
    abs_powered = rng.random(n_nodes) < 0.3

    for i in range(n_nodes):
        node_id = f"sn-{i:0{width}d}"
        if failures[i]:
            out.failures[node_id] = AssessmentFailure(
                node_id=node_id,
                error="sensor crashed mid-measurement",
                exception_type="RuntimeError",
            )
            continue
        start, count = int(open_starts[i]), int(open_counts[i])
        open_flags = [
            (j - start) % _N_BINS < count for j in range(_N_BINS)
        ]
        fov = FieldOfViewEstimate(
            bin_deg=_BIN_DEG,
            open_flags=open_flags,
            max_range_km=[
                90.0 if flag else 15.0 for flag in open_flags
            ],
        )
        observations = []
        for k in range(n_observations):
            bearing = float(bearings[i, k])
            received = open_flags[int(bearing / _BIN_DEG) % _N_BINS]
            observations.append(
                AircraftObservation(
                    icao=IcaoAddress(int(icaos[i, k])),
                    callsign=f"SYN{k:03d}",
                    bearing_deg=bearing,
                    ground_range_m=float(ranges_m[i, k]),
                    elevation_deg=2.0,
                    position=GeoPoint(46.0, 7.0, 10000.0),
                    received=received,
                    n_messages=12 if received else 0,
                    mean_rssi_dbfs=(
                        float(rssi[i, k]) if received else None
                    ),
                )
            )
        n_received = sum(1 for o in observations if o.received)
        scan = DirectionalScan(
            node_id=node_id,
            duration_s=30.0,
            radius_m=150e3,
            observations=observations,
            decoded_message_count=n_received * 12,
            ghost_icaos=(
                [IcaoAddress(0xFAB000 + (i & 0xFFF))]
                if cheaters[i]
                else []
            ),
        )
        measurements = []
        for b, (label, freq_hz, expected) in enumerate(BANDS):
            excess = max(0.0, float(excess_base[b, i]))
            decoded = excess < 25.0
            measurements.append(
                BandMeasurement(
                    source="synthetic",
                    label=label,
                    freq_hz=freq_hz,
                    measured=expected - excess,
                    expected=expected,
                    excess_attenuation_db=(
                        excess if decoded else None
                    ),
                    decoded=decoded,
                )
            )
        profile = FrequencyProfile(
            node_id=node_id, measurements=measurements
        )
        kind = _INSTALLATIONS[int(kinds[i])]
        classification = Classification(
            installation=kind,
            outdoor=kind == "rooftop",
            outdoor_probability=(0.95, 0.55, 0.05)[int(kinds[i])],
        )
        report = CalibrationReport(
            node_id=node_id,
            scan=scan,
            fov=fov,
            profile=profile,
            features=extract_features(scan, fov, profile),
            classification=classification,
        )
        trust = TrustAssessment(
            node_id=node_id,
            checks=[
                TrustCheck(
                    "ghost",
                    not cheaters[i],
                    0.1 if cheaters[i] else 1.0,
                    "ghost fraction "
                    + ("0.14" if cheaters[i] else "0.00"),
                ),
                TrustCheck("too_perfect", True, 1.0, "plausible"),
                TrustCheck("rssi", True, 1.0, "log-distance trend ok"),
            ],
        )
        out[node_id] = NodeAssessment(
            node_id=node_id, report=report, trust=trust
        )
        if drifting[i]:
            drift[node_id] = DriftStatus(
                node_id=node_id,
                events=1 + (i % 3),
                last_detected_at_s=120.0 + float(i % 7) * 30.0,
                last_divergence=0.35 + (i % 5) * 0.05,
                recalibration_hours=(9.0, 13.0, 17.0),
            )
    return out, drift
