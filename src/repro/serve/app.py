"""The query API: routes, parameter parsing, caching, metrics.

`SpectrumApp` is a pure request->response function over a
:class:`~repro.serve.store.FleetStore` — no sockets, no event loop —
which is what makes the service testable and benchmarkable at memory
speed. :mod:`repro.serve.server` mounts it on asyncio; the load
generator calls it directly.

Endpoints (all GET, all JSON):

- ``/v1/fleet`` — fleet overview (counts, trust/quality stats).
- ``/v1/nodes`` — paginated node assessments; filters
  ``min_trust``/``max_trust``/``min_overall``/``installation``/
  ``outdoor``, ordering ``sort``/``order``, cursor pagination
  ``cursor``/``limit``.
- ``/v1/nodes/{id}`` — one node's full serialized assessment.
- ``/v1/nodes/{id}/fov`` — one node's field-of-view sector map.
- ``/v1/trust`` — trust scores with per-check detail, worst first
  (``untrustworthy=true`` filters to the rejects).
- ``/v1/drift`` — per-node drift status from the stream engine.
- ``/v1/bands`` — fleet-wide per-band statistics.
- ``/v1/bands/{label}`` — per-node power in one band, strongest
  first (``min_dbm``, ``decoded=true`` filters).
- ``/v1/metrics`` — service counters and latency percentiles
  (never cached).
- ``/v1/healthz`` — liveness + current snapshot generation.

Every cacheable response carries a strong ETag; ``If-None-Match``
revalidation returns 304 without a body. Cached entries live for the
cache TTL or until a snapshot swap, whichever ends first.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.metrics import MetricsRegistry
from repro.serve.cache import ResponseCache
from repro.serve.http import Request, Response, json_error, split_path
from repro.serve.store import FleetSnapshot, FleetStore, Page

#: Columns the node listing may sort on.
SORTABLE = (
    "node_id",
    "trust",
    "overall",
    "directional",
    "frequency",
    "open_fraction",
    "decoded_messages",
)


class ParamError(ValueError):
    """A query parameter failed validation (-> 400)."""


def _json_body(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


class SpectrumApp:
    """Routes requests over the fleet store; owns cache + metrics."""

    def __init__(
        self,
        store: FleetStore,
        cache: Optional[ResponseCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_limit: int = 100,
        max_limit: int = 1000,
    ) -> None:
        self.store = store
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.cache = (
            cache
            if cache is not None
            else ResponseCache(metrics=self.metrics)
        )
        # One registry per app: cache hit/miss counters must land in
        # the same summary the /v1/metrics endpoint reports.
        self.cache.metrics = self.metrics
        self.default_limit = default_limit
        self.max_limit = max_limit
        # (name, pattern, handler, cacheable); "*" matches one segment.
        self._routes: List[
            Tuple[
                str,
                Tuple[str, ...],
                Callable[[Request, FleetSnapshot, Tuple[str, ...]], Response],
                bool,
            ]
        ] = [
            ("fleet", ("v1", "fleet"), self._get_fleet, True),
            ("nodes", ("v1", "nodes"), self._get_nodes, True),
            ("node", ("v1", "nodes", "*"), self._get_node, True),
            ("fov", ("v1", "nodes", "*", "fov"), self._get_fov, True),
            ("trust", ("v1", "trust"), self._get_trust, True),
            ("drift", ("v1", "drift"), self._get_drift, True),
            ("bands", ("v1", "bands"), self._get_bands, True),
            ("band", ("v1", "bands", "*"), self._get_band, True),
            ("metrics", ("v1", "metrics"), self._get_metrics, False),
            ("healthz", ("v1", "healthz"), self._get_healthz, False),
        ]

    # ------------------------------------------------------------------
    # dispatch

    def handle(self, request: Request) -> Response:
        """One request in, one response out; never raises."""
        started = time.perf_counter()
        name = "unrouted"
        try:
            name, response = self._dispatch(request)
        except ParamError as exc:
            response = json_error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - API must not die
            self.metrics.incr("serve_errors")
            response = json_error(500, f"internal error: {exc}")
        self.metrics.incr("serve_requests")
        self.metrics.incr(f"serve_status_{response.status // 100}xx")
        self.metrics.observe(
            f"serve_{name}_s", time.perf_counter() - started
        )
        return response

    def _dispatch(self, request: Request) -> Tuple[str, Response]:
        if request.method != "GET":
            return "unrouted", json_error(
                405, f"method not allowed: {request.method}"
            )
        segments = split_path(request.path)
        for name, pattern, handler, cacheable in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            if cacheable:
                return name, self._cached(request, handler, params)
            return name, handler(
                request, self.store.current(), params
            )
        return "unrouted", json_error(
            404, f"no such endpoint: {request.path}"
        )

    def _cached(
        self,
        request: Request,
        handler: Callable[
            [Request, FleetSnapshot, Tuple[str, ...]], Response
        ],
        params: Tuple[str, ...],
    ) -> Response:
        snapshot = self.store.current()
        key = _cache_key(request)
        entry = self.cache.lookup(key, snapshot.generation)
        if entry is None:
            response = handler(request, snapshot, params)
            if response.status != 200:
                return response
            entry = self.cache.store(
                key,
                response.body,
                response.content_type,
                snapshot.generation,
            )
        max_age = f"max-age={self.cache.ttl_s:g}"
        if request.if_none_match == entry.etag:
            self.metrics.incr("serve_not_modified")
            return Response(
                status=304, etag=entry.etag, cache_control=max_age
            )
        return Response(
            status=200,
            body=entry.body,
            content_type=entry.content_type,
            etag=entry.etag,
            cache_control=max_age,
        )

    # ------------------------------------------------------------------
    # handlers

    def _get_fleet(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        return Response(body=_json_body(snapshot.fleet_summary()))

    def _get_nodes(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        q = request.query
        sort = q.get("sort", "node_id")
        if sort not in SORTABLE:
            raise ParamError(
                f"sort must be one of {', '.join(SORTABLE)}: {sort}"
            )
        order = q.get("order", "asc")
        if order not in ("asc", "desc"):
            raise ParamError(f"order must be asc or desc: {order}")
        page = snapshot.page_nodes(
            cursor=self._cursor(q),
            limit=self._limit(q),
            min_trust=_opt_float(q, "min_trust"),
            max_trust=_opt_float(q, "max_trust"),
            min_overall=_opt_float(q, "min_overall"),
            installation=q.get("installation"),
            outdoor=_opt_bool(q, "outdoor"),
            sort=sort,
            descending=order == "desc",
        )
        return Response(body=_page_body(snapshot, page))

    def _get_node(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        detail = snapshot.node_detail(params[0])
        if detail is None:
            return json_error(404, f"no such node: {params[0]}")
        return Response(body=_json_body(detail))

    def _get_fov(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        fov = snapshot.fov_map(params[0])
        if fov is None:
            return json_error(404, f"no such node: {params[0]}")
        return Response(body=_json_body(fov))

    def _get_trust(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        q = request.query
        threshold = _opt_float(q, "threshold")
        page = snapshot.page_trust(
            cursor=self._cursor(q),
            limit=self._limit(q),
            untrustworthy_only=_opt_bool(q, "untrustworthy") or False,
            threshold=0.5 if threshold is None else threshold,
        )
        return Response(body=_page_body(snapshot, page))

    def _get_drift(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        return Response(
            body=_json_body(
                {
                    "generation": snapshot.generation,
                    "items": snapshot.drift_rows(),
                }
            )
        )

    def _get_bands(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        return Response(
            body=_json_body(
                {
                    "generation": snapshot.generation,
                    "items": snapshot.band_summary(),
                }
            )
        )

    def _get_band(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        q = request.query
        page = snapshot.page_band_power(
            params[0],
            cursor=self._cursor(q),
            limit=self._limit(q),
            min_dbm=_opt_float(q, "min_dbm"),
            decoded_only=_opt_bool(q, "decoded") or False,
        )
        if page is None:
            return json_error(404, f"no such band: {params[0]}")
        return Response(body=_page_body(snapshot, page))

    def _get_metrics(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        return Response(
            body=_json_body(
                {
                    "generation": snapshot.generation,
                    "metrics": self.metrics.summary(),
                }
            )
        )

    def _get_healthz(
        self,
        request: Request,
        snapshot: FleetSnapshot,
        params: Tuple[str, ...],
    ) -> Response:
        return Response(
            body=_json_body(
                {
                    "status": "ok",
                    "generation": snapshot.generation,
                    "nodes": snapshot.n_nodes,
                }
            )
        )

    # ------------------------------------------------------------------
    # parameter helpers

    def _cursor(self, q: Dict[str, str]) -> int:
        cursor = _opt_int(q, "cursor")
        if cursor is None:
            return 0
        if cursor < 0:
            raise ParamError(f"cursor must be >= 0: {cursor}")
        return cursor

    def _limit(self, q: Dict[str, str]) -> int:
        limit = _opt_int(q, "limit")
        if limit is None:
            return self.default_limit
        if not 1 <= limit <= self.max_limit:
            raise ParamError(
                f"limit must be in [1, {self.max_limit}]: {limit}"
            )
        return limit


# ----------------------------------------------------------------------
# module helpers


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Tuple[str, ...]]:
    """Wildcard captures when ``segments`` fits ``pattern``, else None."""
    if len(pattern) != len(segments):
        return None
    params: List[str] = []
    for want, got in zip(pattern, segments):
        if want == "*":
            params.append(got)
        elif want != got:
            return None
    return tuple(params)


def _cache_key(request: Request) -> str:
    query = "&".join(
        f"{k}={v}" for k, v in sorted(request.query.items())
    )
    return request.path + "?" + query


def _page_body(snapshot: FleetSnapshot, page: Page) -> bytes:
    payload = page.to_dict()
    payload["generation"] = snapshot.generation
    return _json_body(payload)


def _opt_int(q: Dict[str, str], name: str) -> Optional[int]:
    raw = q.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ParamError(f"{name} must be an integer: {raw!r}") from None


def _opt_float(q: Dict[str, str], name: str) -> Optional[float]:
    raw = q.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ParamError(f"{name} must be a number: {raw!r}") from None


def _opt_bool(q: Dict[str, str], name: str) -> Optional[bool]:
    raw = q.get(name)
    if raw is None:
        return None
    if raw.lower() in ("1", "true", "yes"):
        return True
    if raw.lower() in ("0", "false", "no"):
        return False
    raise ParamError(f"{name} must be true or false: {raw!r}")
