"""Feeding the serve store from every producer the repo has.

Three pipelines end in assessments, and all three land here:

- **Batch** (`repro.core.network.evaluate_network`): a
  :class:`~repro.core.network.NetworkAssessments` (or its JSON dump
  via ``repro fleet --json``) becomes one snapshot, failures and all.
- **Runtime** (`repro.runtime.campaign`): a finished
  :class:`~repro.runtime.campaign.CampaignResult` maps its ledger's
  failed jobs to assessment failures.
- **Stream** (`repro.stream.gateway`): either a one-shot snapshot of
  the live sessions, or a standing export hook so every
  ``gateway.export_snapshots()`` publishes a fresh store generation
  with drift statuses attached.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.core.network import (
    AssessmentFailure,
    NetworkAssessments,
    NodeAssessment,
)
from repro.core.serialize import network_from_json
from repro.runtime.campaign import CampaignResult
from repro.serve.store import DriftStatus, FleetSnapshot, FleetStore
from repro.stream.drift import DriftEvent
from repro.stream.gateway import StreamGateway


def snapshot_from_network(
    network: NetworkAssessments,
    drift: Optional[Mapping[str, DriftStatus]] = None,
    generation: int = 1,
) -> FleetSnapshot:
    """One snapshot from a batch network evaluation.

    Campaign counters attached to the network (``network.metrics`` —
    path-cache effectiveness, retries) carry over to the snapshot, so
    a served `repro fleet --json` dump keeps its observability.
    """
    return FleetSnapshot(
        network,
        failures=network.failures,
        drift=drift,
        generation=generation,
        metrics=getattr(network, "metrics", None),
    )


def store_from_network(network: NetworkAssessments) -> FleetStore:
    """A ready-to-serve store over a batch network evaluation."""
    return FleetStore(snapshot=snapshot_from_network(network))


def store_from_json(path: Union[str, Path]) -> FleetStore:
    """A store over a ``repro fleet --json`` campaign dump."""
    text = Path(path).read_text()
    return store_from_network(network_from_json(text))


def store_from_campaign(result: CampaignResult) -> FleetStore:
    """A store over a finished runtime campaign.

    Ledger entries that ended FAILED become
    :class:`~repro.core.network.AssessmentFailure` records (job ids
    are node ids in calibration campaigns), so partial campaigns
    serve exactly what they computed and admit what they didn't.
    """
    failures: Dict[str, AssessmentFailure] = {}
    for entry in result.failed():
        failures[entry.job_id] = AssessmentFailure(
            node_id=entry.job_id,
            error=entry.errors[-1] if entry.errors else "failed",
            exception_type="JobFailed",
        )
    snapshot = FleetSnapshot(
        result.assessments,
        failures=failures,
        generation=1,
        metrics=result.metrics,
    )
    return FleetStore(snapshot=snapshot)


def drift_statuses(
    events: Iterable[DriftEvent],
) -> Dict[str, DriftStatus]:
    """Condense per-event drift history into per-node status rows."""
    by_node: Dict[str, list] = {}
    for event in events:
        by_node.setdefault(event.node_id, []).append(event)
    out: Dict[str, DriftStatus] = {}
    for node_id, node_events in by_node.items():
        last = max(node_events, key=lambda e: e.detected_at_s)
        out[node_id] = DriftStatus(
            node_id=node_id,
            events=len(node_events),
            last_detected_at_s=last.detected_at_s,
            last_divergence=last.divergence,
            recalibration_hours=tuple(last.request.schedule.hours),
        )
    return out


def store_from_gateway(gateway: StreamGateway) -> FleetStore:
    """A store over the stream gateway's current live sessions."""
    store = FleetStore()
    publish_gateway(store, gateway)
    return store


def publish_gateway(
    store: FleetStore, gateway: StreamGateway
) -> FleetSnapshot:
    """Publish the gateway's current state as a new generation."""
    batch = gateway.export_snapshots()
    return store.publish(
        batch, drift=drift_statuses(gateway.drift_events())
    )


def attach_gateway(
    store: FleetStore, gateway: StreamGateway
) -> None:
    """Wire the gateway's export hook to publish into ``store``.

    After this, every ``gateway.export_snapshots()`` swaps a fresh
    snapshot (with up-to-date drift statuses) into the store.
    """

    def _publish(batch: Dict[str, NodeAssessment]) -> None:
        store.publish(
            batch, drift=drift_statuses(gateway.drift_events())
        )

    gateway.add_export_hook(_publish)
