"""Read-optimized columnar projection of a fleet's assessments.

The query service answers "rank 10 000 nodes by trust", "which nodes
hear 600 MHz above −60 dBm", and "page 37 of the marketplace" far
more often than it renders any single node. :class:`FleetColumns`
therefore projects every :class:`~repro.core.network.NodeAssessment`
scalar the list endpoints sort and filter on into one numpy record
array (plus per-band matrices for the spectrum queries), built once
per snapshot and never mutated afterwards — the store swaps whole
snapshots instead of editing them in place.

Full per-node detail (the complete serialized assessment) stays on
the snapshot as objects; only the hot list/filter path is columnar.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.network import NodeAssessment

#: One row per node: everything the list endpoints filter or sort on.
SUMMARY_DTYPE = np.dtype(
    [
        ("trust", np.float64),
        ("overall", np.float64),
        ("directional", np.float64),
        ("frequency", np.float64),
        ("open_fraction", np.float64),
        ("outdoor", np.bool_),
        ("outdoor_probability", np.float64),
        ("n_violations", np.int32),
        ("n_ghosts", np.int32),
        ("n_observations", np.int32),
        ("n_received", np.int32),
        ("decoded_messages", np.int64),
        ("abs_power_dbm", np.float64),  # NaN when uncalibrated
    ]
)


@dataclass(frozen=True)
class FleetColumns:
    """Immutable columnar view over one fleet snapshot.

    Attributes:
        node_ids: node ids in ascending order; every array below is
            row-aligned with this tuple.
        index: node id -> row position.
        summary: :data:`SUMMARY_DTYPE` record array, one row per node.
        installations: per-node installation class label.
        band_labels: measured-band labels, ascending by frequency
            (the union over the fleet; nodes missing a band hold NaN).
        band_freq_hz: per-band center frequency.
        band_measured_dbm: (n_nodes, n_bands) measured power.
        band_expected_dbm: (n_nodes, n_bands) link-budget expectation.
        band_excess_db: (n_nodes, n_bands) excess attenuation.
        band_decoded: (n_nodes, n_bands) decode success flags.
    """

    node_ids: Tuple[str, ...]
    index: Dict[str, int]
    summary: np.ndarray
    installations: np.ndarray
    band_labels: Tuple[str, ...]
    band_freq_hz: np.ndarray
    band_measured_dbm: np.ndarray
    band_expected_dbm: np.ndarray
    band_excess_db: np.ndarray
    band_decoded: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def n_bands(self) -> int:
        return len(self.band_labels)

    @classmethod
    def build(
        cls, assessments: Mapping[str, NodeAssessment]
    ) -> "FleetColumns":
        """Project a ``{node_id: NodeAssessment}`` map into columns."""
        node_ids = tuple(sorted(assessments))
        n = len(node_ids)
        summary = np.zeros(n, dtype=SUMMARY_DTYPE)
        installations: List[str] = []

        band_keys = _band_union(assessments)
        band_labels = tuple(label for label, _ in band_keys)
        band_index = {label: j for j, (label, _) in enumerate(band_keys)}
        b = len(band_keys)
        measured = np.full((n, b), np.nan)
        expected = np.full((n, b), np.nan)
        excess = np.full((n, b), np.nan)
        decoded = np.zeros((n, b), dtype=bool)

        for i, node_id in enumerate(node_ids):
            a = assessments[node_id]
            report = a.report
            scan = report.scan
            row = summary[i]
            row["trust"] = a.trust.trust_score()
            row["overall"] = report.overall_score()
            row["directional"] = report.directional_score()
            row["frequency"] = report.frequency_score()
            row["open_fraction"] = report.fov.open_fraction()
            row["outdoor"] = report.classification.outdoor
            row["outdoor_probability"] = (
                report.classification.outdoor_probability
            )
            row["n_violations"] = len(a.claim_violations)
            row["n_ghosts"] = len(scan.ghost_icaos)
            row["n_observations"] = len(scan.observations)
            row["n_received"] = sum(
                1 for o in scan.observations if o.received
            )
            row["decoded_messages"] = scan.decoded_message_count
            row["abs_power_dbm"] = (
                a.abs_power.full_scale_dbm_estimate
                if a.abs_power is not None
                else np.nan
            )
            installations.append(report.classification.installation)
            for m in report.profile.measurements:
                j = band_index[m.label]
                measured[i, j] = m.measured
                expected[i, j] = m.expected
                if m.excess_attenuation_db is not None:
                    excess[i, j] = m.excess_attenuation_db
                decoded[i, j] = m.decoded

        return cls(
            node_ids=node_ids,
            index={node_id: i for i, node_id in enumerate(node_ids)},
            summary=summary,
            installations=np.asarray(installations, dtype=str),
            band_labels=band_labels,
            band_freq_hz=np.asarray(
                [freq for _, freq in band_keys], dtype=np.float64
            ),
            band_measured_dbm=measured,
            band_expected_dbm=expected,
            band_excess_db=excess,
            band_decoded=decoded,
        )

    def content_hash(self) -> str:
        """Stable digest of every column (the snapshot ETag seed)."""
        h = hashlib.blake2b(digest_size=16)
        h.update("\x00".join(self.node_ids).encode())
        h.update("\x00".join(self.band_labels).encode())
        for arr in (
            self.summary,
            self.installations,
            self.band_freq_hz,
            self.band_measured_dbm,
            self.band_expected_dbm,
            self.band_excess_db,
            self.band_decoded,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()


def _band_union(
    assessments: Mapping[str, NodeAssessment],
) -> List[Tuple[str, float]]:
    """Distinct (label, freq) bands across the fleet, by frequency.

    A label measured at two frequencies keeps the first frequency
    seen — labels are the query key, so they must be unique columns.
    """
    seen: Dict[str, float] = {}
    for a in assessments.values():
        for m in a.report.profile.measurements:
            seen.setdefault(m.label, m.freq_hz)
    return sorted(seen.items(), key=lambda kv: (kv[1], kv[0]))
