"""`repro.serve` — the spectrum-data query service over the fleet.

The crowd-sourced network only pays off when its assessments are
queryable at scale: this package is the "sensors → ingest → storage
→ public API" backend over everything the repo can produce. The
pieces, bottom up:

- :mod:`repro.serve.columns` — the read-optimized columnar
  projection (numpy record arrays) of a fleet's assessments.
- :mod:`repro.serve.store` — immutable :class:`FleetSnapshot` +
  atomically swapped :class:`FleetStore`; all query logic.
- :mod:`repro.serve.cache` — ETag/TTL response caching.
- :mod:`repro.serve.app` — the HTTP-agnostic request router
  (:class:`SpectrumApp`), also the benchmark's entry point.
- :mod:`repro.serve.server` — the asyncio HTTP/1.1 front end with
  bounded concurrency.
- :mod:`repro.serve.loader` — feeds stores from batch network
  evaluations, runtime campaigns, and the live stream gateway.
- :mod:`repro.serve.synthetic` — fleet fabrication at 10k-node
  scale for load tests.
"""

from repro.serve.app import SpectrumApp
from repro.serve.cache import CacheEntry, ResponseCache, body_etag
from repro.serve.columns import FleetColumns
from repro.serve.http import Request, Response
from repro.serve.loader import (
    attach_gateway,
    drift_statuses,
    publish_gateway,
    snapshot_from_network,
    store_from_campaign,
    store_from_gateway,
    store_from_json,
    store_from_network,
)
from repro.serve.server import SpectrumServer, run_server
from repro.serve.store import (
    DriftStatus,
    FleetSnapshot,
    FleetStore,
    Page,
)
from repro.serve.synthetic import synthetic_fleet

__all__ = [
    "CacheEntry",
    "DriftStatus",
    "FleetColumns",
    "FleetSnapshot",
    "FleetStore",
    "Page",
    "Request",
    "Response",
    "ResponseCache",
    "SpectrumApp",
    "SpectrumServer",
    "attach_gateway",
    "body_etag",
    "drift_statuses",
    "publish_gateway",
    "run_server",
    "snapshot_from_network",
    "store_from_campaign",
    "store_from_gateway",
    "store_from_json",
    "store_from_network",
    "synthetic_fleet",
]
