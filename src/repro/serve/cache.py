"""ETag/TTL response caching for the query service.

Fleet data changes only when a snapshot swap lands, yet list queries
repeat constantly — the perfect shape for a small response cache:

- **ETag revalidation**: every cached body carries a strong ETag
  (a digest of the body itself). A client replaying the tag via
  ``If-None-Match`` gets a body-less ``304 Not Modified``; after a
  TTL expiry the entry is recomputed, and if the body is unchanged
  the *same* tag falls out, so the stale-ETag revalidation still
  collapses to a 304.
- **TTL + generation freshness**: an entry is served only while its
  TTL holds *and* the snapshot generation it was computed from is
  still current — a swap invalidates the whole cache at once without
  walking it.
- **Bounded LRU**: at most ``max_entries`` distinct (path, query)
  keys are retained.

The clock is injected (defaults to ``time.monotonic``) so tests can
drive TTL expiry without sleeping.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.metrics import MetricsRegistry


def body_etag(body: bytes) -> str:
    """Strong ETag for a response body (quoted, per RFC 9110)."""
    return '"' + hashlib.blake2b(body, digest_size=10).hexdigest() + '"'


@dataclass(frozen=True)
class CacheEntry:
    """One cached response body and its identity/freshness data."""

    key: str
    etag: str
    body: bytes
    content_type: str
    generation: int
    expires_at: float


class ResponseCache:
    """Thread-safe LRU of rendered responses keyed by path + query."""

    def __init__(
        self,
        ttl_s: float = 5.0,
        max_entries: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if ttl_s <= 0.0:
            raise ValueError(f"ttl must be positive: {ttl_s}")
        if max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive: {max_entries}"
            )
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self.clock = clock
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def lookup(
        self, key: str, generation: int
    ) -> Optional[CacheEntry]:
        """The fresh entry for ``key``, or None (miss/expired/stale)."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if (
                    entry.generation == generation
                    and now < entry.expires_at
                ):
                    self._entries.move_to_end(key)
                else:
                    del self._entries[key]
                    entry = None
        if entry is None:
            self.metrics.incr("serve_cache_misses")
        else:
            self.metrics.incr("serve_cache_hits")
        return entry

    def store(
        self,
        key: str,
        body: bytes,
        content_type: str,
        generation: int,
    ) -> CacheEntry:
        """Cache a rendered body; returns the entry (with its ETag)."""
        entry = CacheEntry(
            key=key,
            etag=body_etag(body),
            body=body,
            content_type=content_type,
            generation=generation,
            expires_at=self.clock() + self.ttl_s,
        )
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.metrics.incr("serve_cache_evictions", evicted)
        return entry

    def clear(self) -> None:
        """Drop every entry (tests and forced refreshes)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
