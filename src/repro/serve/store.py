"""The serve-side fleet store: append-only snapshots, atomic swap.

Writers (the stream gateway's export hook, a finished campaign, a
batch loader) build a complete :class:`FleetSnapshot` off to the side
and :meth:`FleetStore.swap` it in; readers take a reference to the
current snapshot once per request and keep querying it even while a
swap lands — a snapshot is never mutated after construction, so an
in-flight paginated read stays internally consistent and simply sees
the older generation. This is the classic read-optimized
big-spectrum-data shape (Electrosense's sensors → ingest → storage →
API pipeline): ingestion appends snapshots, queries never block.

Every query helper here returns plain JSON-ready dicts; HTTP concerns
(caching, ETags, status codes) live in :mod:`repro.serve.app`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.metrics import MetricsRegistry
from repro.core.network import AssessmentFailure, NodeAssessment
from repro.core.serialize import assessment_to_dict
from repro.serve.columns import FleetColumns


@dataclass(frozen=True)
class DriftStatus:
    """Condensed drift state for one node (from the stream engine)."""

    node_id: str
    events: int
    last_detected_at_s: Optional[float] = None
    last_divergence: Optional[float] = None
    recalibration_hours: Tuple[float, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "events": self.events,
            "last_detected_at_s": self.last_detected_at_s,
            "last_divergence": self.last_divergence,
            "recalibration_hours": list(self.recalibration_hours),
        }


@dataclass(frozen=True)
class Page:
    """One page of a cursor-paginated query."""

    items: List[Dict[str, Any]]
    next_cursor: Optional[int]
    total: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "items": self.items,
            "next_cursor": self.next_cursor,
            "total": self.total,
        }


class FleetSnapshot:
    """One immutable, queryable picture of the whole fleet."""

    def __init__(
        self,
        assessments: Mapping[str, NodeAssessment],
        failures: Optional[Mapping[str, AssessmentFailure]] = None,
        drift: Optional[Mapping[str, DriftStatus]] = None,
        generation: int = 0,
        metrics: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.assessments: Dict[str, NodeAssessment] = dict(assessments)
        self.failures: Dict[str, AssessmentFailure] = dict(
            failures or {}
        )
        self.drift: Dict[str, DriftStatus] = dict(drift or {})
        self.generation = generation
        #: Counters from the campaign that produced this snapshot
        #: (path-cache hits/misses, retries, latencies); empty when
        #: the producer was not a campaign.
        self.metrics: Dict[str, Any] = dict(metrics or {})
        self.columns = FleetColumns.build(self.assessments)
        #: Content identity: same fleet data -> same etag, regardless
        #: of generation counter, so unchanged re-publishes revalidate.
        self.etag = self.columns.content_hash()

    @property
    def n_nodes(self) -> int:
        return self.columns.n_nodes

    # ------------------------------------------------------------------
    # row shaping

    def node_row(self, i: int) -> Dict[str, Any]:
        """The list-endpoint summary row for node at column row ``i``."""
        cols = self.columns
        row = cols.summary[i]
        node_id = cols.node_ids[i]
        abs_power = float(row["abs_power_dbm"])
        drift = self.drift.get(node_id)
        return {
            "node_id": node_id,
            "trust": float(row["trust"]),
            "scores": {
                "overall": float(row["overall"]),
                "directional": float(row["directional"]),
                "frequency": float(row["frequency"]),
            },
            "open_fraction": float(row["open_fraction"]),
            "installation": str(cols.installations[i]),
            "outdoor": bool(row["outdoor"]),
            "outdoor_probability": float(row["outdoor_probability"]),
            "violations": int(row["n_violations"]),
            "ghosts": int(row["n_ghosts"]),
            "observations": int(row["n_observations"]),
            "received": int(row["n_received"]),
            "decoded_messages": int(row["decoded_messages"]),
            "abs_power_dbm": (
                abs_power if not np.isnan(abs_power) else None
            ),
            "drift_events": drift.events if drift is not None else 0,
        }

    # ------------------------------------------------------------------
    # queries

    def page_nodes(
        self,
        cursor: int = 0,
        limit: int = 100,
        min_trust: Optional[float] = None,
        max_trust: Optional[float] = None,
        min_overall: Optional[float] = None,
        installation: Optional[str] = None,
        outdoor: Optional[bool] = None,
        sort: str = "node_id",
        descending: bool = False,
    ) -> Page:
        """Filter + order + cursor-paginate the summary columns.

        The cursor is a position into the *filtered, ordered* row
        sequence of this snapshot; a cursor past the end yields an
        empty page with ``next_cursor = None`` (cursors are finite,
        not an error).
        """
        cols = self.columns
        s = cols.summary
        mask = np.ones(cols.n_nodes, dtype=bool)
        if min_trust is not None:
            mask &= s["trust"] >= min_trust
        if max_trust is not None:
            mask &= s["trust"] <= max_trust
        if min_overall is not None:
            mask &= s["overall"] >= min_overall
        if installation is not None:
            mask &= cols.installations == installation
        if outdoor is not None:
            mask &= s["outdoor"] == outdoor
        selected = np.nonzero(mask)[0]
        if sort != "node_id":
            order = np.argsort(s[sort][selected], kind="stable")
            selected = selected[order]
        if descending:
            selected = selected[::-1]
        return self._paginate(selected, cursor, limit, self.node_row)

    def node_detail(self, node_id: str) -> Optional[Dict[str, Any]]:
        """Full serialized assessment for one node (None if unknown)."""
        assessment = self.assessments.get(node_id)
        if assessment is None:
            return None
        detail = assessment_to_dict(assessment)
        drift = self.drift.get(node_id)
        detail["drift"] = drift.to_dict() if drift is not None else None
        return detail

    def fov_map(self, node_id: str) -> Optional[Dict[str, Any]]:
        """One node's field-of-view sector map (None if unknown)."""
        assessment = self.assessments.get(node_id)
        if assessment is None:
            return None
        fov = assessment.report.fov
        return {
            "node_id": node_id,
            "bin_deg": fov.bin_deg,
            "open_flags": [bool(f) for f in fov.open_flags],
            "max_range_km": [float(r) for r in fov.max_range_km],
            "open_fraction": fov.open_fraction(),
            "open_sectors": [
                {"start_deg": s.start_deg, "end_deg": s.end_deg}
                for s in fov.open_sectors()
            ],
        }

    def page_trust(
        self,
        cursor: int = 0,
        limit: int = 100,
        untrustworthy_only: bool = False,
        threshold: float = 0.5,
    ) -> Page:
        """Trust scores with per-check detail, worst node first."""
        cols = self.columns
        order = np.argsort(cols.summary["trust"], kind="stable")
        if untrustworthy_only:
            order = order[
                cols.summary["trust"][order] < threshold
            ]

        def row(i: int) -> Dict[str, Any]:
            node_id = cols.node_ids[i]
            trust = self.assessments[node_id].trust
            return {
                "node_id": node_id,
                "trust": trust.trust_score(),
                "trustworthy": trust.is_trustworthy(threshold),
                "checks": [
                    {
                        "name": c.name,
                        "passed": c.passed,
                        "score": c.score,
                        "detail": c.detail,
                    }
                    for c in trust.checks
                ],
            }

        return self._paginate(order, cursor, limit, row)

    def drift_rows(self) -> List[Dict[str, Any]]:
        """Every node with drift state, most recent event first."""
        rows = sorted(
            self.drift.values(),
            key=lambda d: (
                d.last_detected_at_s is not None,
                d.last_detected_at_s or 0.0,
            ),
            reverse=True,
        )
        return [d.to_dict() for d in rows]

    def band_summary(self) -> List[Dict[str, Any]]:
        """Fleet-wide per-band statistics (the spectrum overview)."""
        cols = self.columns
        out: List[Dict[str, Any]] = []
        for j, label in enumerate(cols.band_labels):
            measured = cols.band_measured_dbm[:, j]
            present = ~np.isnan(measured)
            n_present = int(present.sum())
            entry: Dict[str, Any] = {
                "label": label,
                "freq_hz": float(cols.band_freq_hz[j]),
                "nodes_measured": n_present,
                "nodes_decoded": int(cols.band_decoded[:, j].sum()),
                "decode_fraction": (
                    float(cols.band_decoded[:, j].sum() / n_present)
                    if n_present
                    else 0.0
                ),
            }
            if n_present:
                values = measured[present]
                entry["measured_dbm"] = {
                    "mean": float(values.mean()),
                    "min": float(values.min()),
                    "max": float(values.max()),
                    "p50": float(np.percentile(values, 50.0)),
                }
            else:
                entry["measured_dbm"] = None
            out.append(entry)
        return out

    def page_band_power(
        self,
        label: str,
        cursor: int = 0,
        limit: int = 100,
        min_dbm: Optional[float] = None,
        decoded_only: bool = False,
    ) -> Optional[Page]:
        """Per-node power in one band, strongest first.

        Returns None for an unknown band label. Nodes that never
        measured the band are excluded.
        """
        cols = self.columns
        try:
            j = cols.band_labels.index(label)
        except ValueError:
            return None
        measured = cols.band_measured_dbm[:, j]
        mask = ~np.isnan(measured)
        if min_dbm is not None:
            mask &= measured >= min_dbm
        if decoded_only:
            mask &= cols.band_decoded[:, j]
        selected = np.nonzero(mask)[0]
        order = np.argsort(measured[selected], kind="stable")[::-1]
        selected = selected[order]

        def row(i: int) -> Dict[str, Any]:
            excess = float(cols.band_excess_db[i, j])
            return {
                "node_id": cols.node_ids[i],
                "measured_dbm": float(measured[i]),
                "expected_dbm": float(cols.band_expected_dbm[i, j]),
                "excess_db": (
                    excess if not np.isnan(excess) else None
                ),
                "decoded": bool(cols.band_decoded[i, j]),
            }

        return self._paginate(selected, cursor, limit, row)

    def fleet_summary(self) -> Dict[str, Any]:
        """The one-look fleet overview (the `/v1/fleet` body)."""
        cols = self.columns
        s = cols.summary
        summary: Dict[str, Any] = {
            "generation": self.generation,
            "etag": self.etag,
            "nodes": cols.n_nodes,
            "failures": len(self.failures),
            "failed_nodes": sorted(self.failures),
            "bands": list(cols.band_labels),
            "drifting_nodes": sum(
                1 for d in self.drift.values() if d.events > 0
            ),
        }
        if self.metrics:
            summary["campaign_metrics"] = dict(self.metrics)
        if cols.n_nodes:
            summary["trust"] = {
                "mean": float(s["trust"].mean()),
                "min": float(s["trust"].min()),
                "trustworthy": int((s["trust"] >= 0.5).sum()),
            }
            summary["quality"] = {
                "mean": float(s["overall"].mean()),
                "p50": float(np.percentile(s["overall"], 50.0)),
                "outdoor": int(s["outdoor"].sum()),
            }
        else:
            summary["trust"] = None
            summary["quality"] = None
        return summary

    # ------------------------------------------------------------------

    @staticmethod
    def _paginate(
        selected: Sequence[int],
        cursor: int,
        limit: int,
        row: Any,
    ) -> Page:
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0: {cursor}")
        if limit <= 0:
            raise ValueError(f"limit must be positive: {limit}")
        total = len(selected)
        window = selected[cursor : cursor + limit]
        next_cursor = cursor + limit
        return Page(
            items=[row(int(i)) for i in window],
            next_cursor=next_cursor if next_cursor < total else None,
            total=total,
        )


class FleetStore:
    """Holds the current snapshot; swaps are atomic, reads lock-free.

    The store starts at an empty generation-0 snapshot so a gateway
    brought up before its first ingest answers every query with empty
    pages instead of errors. Swapped-out snapshots are kept on a
    bounded history deque — in-flight readers hold their own
    references anyway; the history exists for diffing/debugging.
    """

    def __init__(
        self,
        snapshot: Optional[FleetSnapshot] = None,
        metrics: Optional[MetricsRegistry] = None,
        history: int = 4,
    ) -> None:
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._lock = threading.Lock()
        self._history: Deque[FleetSnapshot] = deque(maxlen=history)
        self._current = (
            snapshot
            if snapshot is not None
            else FleetSnapshot({}, generation=0)
        )
        self._history.append(self._current)

    def current(self) -> FleetSnapshot:
        """The live snapshot (grab once per request, then query it)."""
        with self._lock:
            return self._current

    def swap(self, snapshot: FleetSnapshot) -> FleetSnapshot:
        """Atomically replace the current snapshot; returns the old."""
        with self._lock:
            old = self._current
            self._current = snapshot
            self._history.append(snapshot)
        self.metrics.incr("store_swaps")
        return old

    def publish(
        self,
        assessments: Mapping[str, NodeAssessment],
        failures: Optional[Mapping[str, AssessmentFailure]] = None,
        drift: Optional[Mapping[str, DriftStatus]] = None,
    ) -> FleetSnapshot:
        """Build the next-generation snapshot and swap it in."""
        snapshot = FleetSnapshot(
            assessments,
            failures=failures,
            drift=drift,
            generation=self.current().generation + 1,
        )
        self.swap(snapshot)
        return snapshot

    def history(self) -> List[FleetSnapshot]:
        """Retained snapshots, oldest first (current snapshot last)."""
        with self._lock:
            return list(self._history)
