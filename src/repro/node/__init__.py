"""Sensor-node substrate: the thing being calibrated.

A :class:`SensorNode` is one crowd-sourced station — SDR + antenna +
host at an installation site — together with the *claims* its operator
makes about it (location, coverage, indoor/outdoor). Since operators
are paid, some lie: :mod:`repro.node.fabrication` provides adversary
models that fabricate observations, which the network-level trust
checks in :mod:`repro.core.network` must catch.
"""

from repro.node.sensor import SensorNode
from repro.node.claims import NodeClaims
from repro.node.fabrication import (
    FabricationStrategy,
    HonestReporter,
    OmniscientFabricator,
    ReplayFabricator,
    GhostTrafficFabricator,
    apply_fabrication,
)

__all__ = [
    "SensorNode",
    "NodeClaims",
    "FabricationStrategy",
    "HonestReporter",
    "OmniscientFabricator",
    "ReplayFabricator",
    "GhostTrafficFabricator",
    "apply_fabrication",
]
