"""The sensor node: SDR + antenna + host at an installation site."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.environment.site import SiteEnvironment
from repro.geo.coords import GeoPoint
from repro.node.claims import NodeClaims
from repro.sdr.antenna import WIDEBAND_700_2700, Antenna
from repro.sdr.frontend import BLADERF_XA9, SdrFrontEnd


@dataclass
class SensorNode:
    """One spectrum-sensor station in the crowd-sourced network.

    Attributes:
        node_id: unique identifier within the network.
        environment: ground-truth installation site (the simulation
            propagates signals through this; the calibration pipeline
            treats it as unknown).
        sdr: receiver front end.
        antenna: receive antenna.
        claims: what the operator *says* about this node; defaults to
            honest claims derived from the ground truth.
    """

    node_id: str
    environment: SiteEnvironment
    sdr: SdrFrontEnd = field(default_factory=lambda: BLADERF_XA9)
    antenna: Antenna = field(default_factory=lambda: WIDEBAND_700_2700)
    claims: Optional[NodeClaims] = None

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        if self.claims is None:
            self.claims = NodeClaims.honest(self)

    @property
    def position(self) -> GeoPoint:
        """The node's true position."""
        return self.environment.position

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.node_id}: {self.sdr.name} + antenna "
            f"{self.antenna.low_hz / 1e6:.0f}-"
            f"{self.antenna.high_hz / 1e6:.0f} MHz at "
            f"{self.environment.name}"
        )
