"""Adversary models: operators who fabricate sensor data.

Node operators are paid for sensing services, so there is "a potential
incentive to provide fabricated or incorrect data in order to receive
reimbursement" (§1). These strategies transform an honest node's
directional scan into what a cheating operator would upload; the trust
checks in :mod:`repro.core.network` are scored against them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol

import numpy as np

from repro.adsb.icao import random_icao
from repro.core.observations import DirectionalScan


class FabricationStrategy(Protocol):
    """Transforms an honest scan into the reported (possibly fake) one."""

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        """Return the scan as the operator would report it."""
        ...


@dataclass
class HonestReporter:
    """Reports the scan unchanged."""

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        return honest


@dataclass
class OmniscientFabricator:
    """Claims every ground-truth aircraft was received.

    Models an operator who scrapes the same public flight tracker the
    verifier uses and replays it as "decoded" data. They cannot know
    true per-message RSSI, so they report a constant plausible value —
    which is what the RSSI-vs-distance plausibility check catches.

    Attributes:
        fake_rssi_dbfs: the constant RSSI reported for every aircraft.
    """

    fake_rssi_dbfs: float = -32.0

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        faked = [
            replace(
                obs,
                received=True,
                n_messages=max(obs.n_messages, 40),
                mean_rssi_dbfs=self.fake_rssi_dbfs
                + float(rng.normal(0.0, 0.5)),
            )
            for obs in honest.observations
        ]
        return DirectionalScan(
            node_id=honest.node_id,
            duration_s=honest.duration_s,
            radius_m=honest.radius_m,
            observations=faked,
            decoded_message_count=sum(o.n_messages for o in faked),
            ghost_icaos=[],
        )


@dataclass
class ReplayFabricator:
    """Replays a scan recorded elsewhere (or at another time).

    The replayed aircraft do not match the current ground truth, so
    they surface as ghosts; the current traffic goes unreported.

    Attributes:
        donor: the previously recorded scan being replayed.
    """

    donor: DirectionalScan

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        current_icaos = {o.icao for o in honest.observations}
        ghosts = [
            o.icao
            for o in self.donor.observations
            if o.received and o.icao not in current_icaos
        ]
        # Aircraft that appear in both pictures (rare) stay received.
        donor_received = {
            o.icao for o in self.donor.observations if o.received
        }
        observations = [
            replace(
                obs,
                received=obs.icao in donor_received,
                n_messages=40 if obs.icao in donor_received else 0,
                mean_rssi_dbfs=(
                    -35.0 if obs.icao in donor_received else None
                ),
            )
            for obs in honest.observations
        ]
        return DirectionalScan(
            node_id=honest.node_id,
            duration_s=honest.duration_s,
            radius_m=honest.radius_m,
            observations=observations,
            decoded_message_count=40 * len(donor_received),
            ghost_icaos=ghosts,
        )


@dataclass
class GhostTrafficFabricator:
    """Pads the honest scan with invented aircraft.

    A lazier adversary who reports real decodes plus made-up traffic
    to look more sensitive than they are.

    Attributes:
        n_ghosts: how many fake aircraft to invent.
    """

    n_ghosts: int = 20

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        if self.n_ghosts < 0:
            raise ValueError(f"n_ghosts must be >= 0: {self.n_ghosts}")
        ghosts = [random_icao(rng) for _ in range(self.n_ghosts)]
        return DirectionalScan(
            node_id=honest.node_id,
            duration_s=honest.duration_s,
            radius_m=honest.radius_m,
            observations=list(honest.observations),
            decoded_message_count=honest.decoded_message_count
            + 40 * self.n_ghosts,
            ghost_icaos=list(honest.ghost_icaos) + ghosts,
        )


def apply_fabrication(
    strategy: FabricationStrategy,
    honest: DirectionalScan,
    rng: np.random.Generator,
) -> DirectionalScan:
    """Run a strategy; exists so call sites read uniformly."""
    return strategy.fabricate(honest, rng)
