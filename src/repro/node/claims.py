"""Operator claims about a node.

In the rentable-sensor model (and in CBRS self-reporting, §3.3) the
operator declares the node's location, frequency coverage, and
installation situation. The calibration pipeline's job is to verify
these claims from signals alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.geo.coords import GeoPoint

if TYPE_CHECKING:
    from repro.node.sensor import SensorNode


@dataclass(frozen=True)
class NodeClaims:
    """What an operator declares about a node.

    Attributes:
        position: claimed installation location.
        min_freq_hz / max_freq_hz: claimed usable frequency range.
        outdoor: claimed outdoor installation.
        unobstructed: claimed full-sky field of view.
    """

    position: GeoPoint
    min_freq_hz: float
    max_freq_hz: float
    outdoor: bool
    unobstructed: bool

    def __post_init__(self) -> None:
        if not 0.0 < self.min_freq_hz < self.max_freq_hz:
            raise ValueError(
                f"bad claimed range [{self.min_freq_hz}, {self.max_freq_hz}]"
            )

    @classmethod
    def honest(cls, node: "SensorNode") -> "NodeClaims":
        """Claims that match the node's ground truth."""
        env = node.environment
        open_width = sum(
            s.width_deg
            for s in env.obstruction_map.clear_sectors(elevation_deg=5.0)
        )
        min_freq = max(node.sdr.min_freq_hz, node.antenna.low_hz)
        max_freq = min(node.sdr.max_freq_hz, node.antenna.high_hz)
        if min_freq >= max_freq:
            # Mismatched hardware (antenna band disjoint from the SDR's
            # tuning range): the operator can only state the SDR range;
            # claim verification will then flag the dead bands.
            min_freq = node.sdr.min_freq_hz
            max_freq = node.sdr.max_freq_hz
        return cls(
            position=env.position,
            min_freq_hz=min_freq,
            max_freq_hz=max_freq,
            outdoor=env.is_outdoor,
            unobstructed=open_width >= 355.0,
        )

    @classmethod
    def inflated(cls, node: "SensorNode") -> "NodeClaims":
        """The claims a profit-motivated operator might make: a
        perfect outdoor, unobstructed, full-SDR-range installation."""
        return cls(
            position=node.environment.position,
            min_freq_hz=node.sdr.min_freq_hz,
            max_freq_hz=node.sdr.max_freq_hz,
            outdoor=True,
            unobstructed=True,
        )
