"""The rented service: spectrum monitoring from a sensor node.

This is what users pay node operators for (§2): tune a band, capture
IQ, compute the PSD, and report which channels are occupied. It is
also why calibration matters — an indoor node simply cannot see the
high-band emissions a renter cares about, and the calibration report
predicts exactly that.

:class:`SpectrumMonitor` runs the full physical path: every known
transmitter whose signal lands in the tuned band is synthesized at its
propagated receive power (through the node's obstruction map), the
capture is digitized by the SDR model, and detection happens on the
Welch PSD alone — the monitor never peeks at the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

import math

from repro.cellular.tower import RE_PER_RB, CellTower
from repro.dsp.filters import design_lowpass_fir, fir_filter
from repro.dsp.psd import OccupiedBand, detect_occupied_bands, welch_psd
from repro.environment.links import direct_received_power_dbm
from repro.fm.tower import FmTower
from repro.fm.waveform import fm_waveform
from repro.node.sensor import SensorNode
from repro.sdr.capture import CaptureSession
from repro.tv.tower import TvTower
from repro.tv.waveform import atsc_waveform

#: LTE resource-block bandwidth (12 x 15 kHz subcarriers).
_RB_BANDWIDTH_HZ = 180e3


def lte_like_waveform(
    rng: np.random.Generator,
    n_samples: int,
    sample_rate_hz: float,
    occupied_hz: float,
    channel_offset_hz: float = 0.0,
) -> np.ndarray:
    """Unit-power OFDM-like downlink: band-limited Gaussian noise.

    For energy detection an LTE carrier is spectrally flat noise over
    its occupied bandwidth; no subcarrier structure is needed.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive: {n_samples}")
    half = occupied_hz / 2.0
    if abs(channel_offset_hz) + half >= sample_rate_hz / 2.0:
        raise ValueError("LTE carrier does not fit in the capture")
    noise = (
        rng.standard_normal(n_samples)
        + 1j * rng.standard_normal(n_samples)
    ) / np.sqrt(2.0)
    taps = design_lowpass_fir(half, sample_rate_hz, 129)
    shaped = fir_filter(taps, noise)
    power = float(np.mean(np.abs(shaped) ** 2))
    if power <= 0.0:
        raise RuntimeError("degenerate shaped-noise power")
    shaped = shaped / np.sqrt(power)
    if channel_offset_hz != 0.0:
        from repro.dsp.iq import frequency_shift

        shaped = frequency_shift(
            shaped, channel_offset_hz, sample_rate_hz
        )
    return shaped


@dataclass(frozen=True)
class MonitoredEmitter:
    """One known transmitter, for scoring detections (ground truth)."""

    label: str
    freq_hz: float
    kind: str  # "tv" or "fm"


@dataclass
class SpectrumReport:
    """One monitoring capture's result.

    Attributes:
        center_freq_hz: tuned center.
        sample_rate_hz: capture bandwidth.
        detections: occupied bands found in the PSD (baseband-relative
            edges).
        truth: transmitters actually present in the band.
    """

    center_freq_hz: float
    sample_rate_hz: float
    detections: List[OccupiedBand] = field(default_factory=list)
    truth: List[MonitoredEmitter] = field(default_factory=list)

    def detected_labels(self, tolerance_hz: float = 150e3) -> List[str]:
        """Truth emitters matched by at least one detection."""
        out = []
        for emitter in self.truth:
            offset = emitter.freq_hz - self.center_freq_hz
            for band in self.detections:
                if (
                    band.low_hz - tolerance_hz
                    <= offset
                    <= band.high_hz + tolerance_hz
                ):
                    out.append(emitter.label)
                    break
        return out

    def detection_rate(self) -> float:
        """Fraction of in-band transmitters actually detected."""
        if not self.truth:
            return 0.0
        return len(self.detected_labels()) / len(self.truth)


@dataclass
class SpectrumMonitor:
    """Runs monitoring captures from one node.

    Attributes:
        node: the sensor providing the service.
        tv_towers / fm_towers / cell_towers: known transmitters (used
            to synthesize the physical world in the band and to score
            detections).
    """

    node: SensorNode
    tv_towers: Sequence[TvTower] = ()
    fm_towers: Sequence[FmTower] = ()
    cell_towers: Sequence[CellTower] = ()

    def _emitters_in_band(
        self, center_hz: float, sample_rate_hz: float
    ) -> List[Tuple[MonitoredEmitter, object]]:
        half = sample_rate_hz / 2.0
        out = []
        for tower in self.tv_towers:
            if abs(tower.center_freq_hz - center_hz) < half * 0.85:
                out.append(
                    (
                        MonitoredEmitter(
                            tower.callsign, tower.center_freq_hz, "tv"
                        ),
                        tower,
                    )
                )
        for tower in self.fm_towers:
            if abs(tower.center_freq_hz - center_hz) < half * 0.95:
                out.append(
                    (
                        MonitoredEmitter(
                            tower.callsign, tower.center_freq_hz, "fm"
                        ),
                        tower,
                    )
                )
        for tower in self.cell_towers:
            occupied = tower.bandwidth_rb * _RB_BANDWIDTH_HZ
            if (
                abs(tower.downlink_freq_hz - center_hz)
                < half - occupied / 2.0
            ):
                out.append(
                    (
                        MonitoredEmitter(
                            tower.tower_id,
                            tower.downlink_freq_hz,
                            "lte",
                        ),
                        tower,
                    )
                )
        return out

    def capture_and_detect(
        self,
        center_freq_hz: float,
        sample_rate_hz: float,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
        threshold_db: float = 6.0,
    ) -> SpectrumReport:
        """One monitoring capture: synthesize, digitize, detect."""
        self.node.sdr.check_tune(center_freq_hz)
        session = CaptureSession(
            sdr=self.node.sdr,
            antenna=self.node.antenna,
            center_freq_hz=center_freq_hz,
            sample_rate_hz=sample_rate_hz,
        )
        emitters = self._emitters_in_band(
            center_freq_hz, sample_rate_hz
        )
        signals = []
        truth = []
        for emitter, tower in emitters:
            truth.append(emitter)
            offset = emitter.freq_hz - center_freq_hz
            if emitter.kind == "lte":
                # Total carrier EIRP: per-RE EIRP plus the RE count.
                n_re = tower.bandwidth_rb * RE_PER_RB
                eirp = tower.eirp_per_re_dbm() + 10.0 * math.log10(
                    n_re
                )
            else:
                eirp = tower.erp_dbm
            power_dbm = direct_received_power_dbm(
                self.node.environment,
                tower.position,
                eirp,
                emitter.freq_hz,
                self.node.antenna,
            )
            if emitter.kind == "tv":
                waveform = atsc_waveform(
                    rng, n_samples, sample_rate_hz, offset
                )
            elif emitter.kind == "fm":
                waveform = fm_waveform(
                    rng, n_samples, sample_rate_hz, offset
                )
            else:
                waveform = lte_like_waveform(
                    rng,
                    n_samples,
                    sample_rate_hz,
                    tower.bandwidth_rb * _RB_BANDWIDTH_HZ,
                    offset,
                )
            signals.append((waveform, power_dbm))
        capture = session.capture(signals, rng, n_samples)
        freqs, psd = welch_psd(
            capture.samples, sample_rate_hz, nperseg=1024
        )
        detections = detect_occupied_bands(
            freqs, psd, threshold_db=threshold_db
        )
        return SpectrumReport(
            center_freq_hz=center_freq_hz,
            sample_rate_hz=sample_rate_hz,
            detections=detections,
            truth=truth,
        )

    def survey(
        self,
        centers_hz: Sequence[float],
        sample_rate_hz: float,
        rng: np.random.Generator,
        n_samples: int = 1 << 16,
    ) -> List[SpectrumReport]:
        """Monitoring captures over several tuned centers."""
        reports: List[SpectrumReport] = []
        for center in centers_hz:
            if not self.node.sdr.can_tune(center):
                continue
            reports.append(
                self.capture_and_detect(
                    center, sample_rate_hz, rng, n_samples
                )
            )
        return reports
