"""Backward-compatible re-export of :mod:`repro.core.metrics`.

The counters/percentiles implementation was promoted to
:mod:`repro.core.metrics` so the fleet runtime and the streaming
gateway share one copy; this module keeps the historical import path
(`from repro.runtime.metrics import MetricsRegistry`) working.
"""

from __future__ import annotations

from repro.core.metrics import MetricsRegistry, percentile

__all__ = ["MetricsRegistry", "percentile"]
