"""Calibration job specs: what to run, described by value.

A job must be (a) picklable, so process-pool workers can receive it,
(b) tiny, so queues and checkpoints stay cheap, and (c) fully
deterministic, so two runs of the same job produce bit-identical
assessments. Jobs therefore carry *specifications* — the world seed
and the node's configuration — rather than live objects; workers
rebuild the heavy simulation state on their side (and cache it per
process, see :mod:`repro.runtime.workers`).

The :meth:`CalibrationJob.content_key` hash over (node config, world
seed, pipeline version) is the identity the result cache and campaign
checkpoints are addressed by: change any input that could change the
assessment and the key changes with it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.observations import DirectionalScan
from repro.node.fabrication import (
    FabricationStrategy,
    GhostTrafficFabricator,
    OmniscientFabricator,
)
from repro.node.sensor import SensorNode

if TYPE_CHECKING:
    # repro.experiments imports the runtime (experiments/fleet.py runs
    # through campaigns), so the runtime must not import experiments at
    # module scope — worlds are built lazily inside WorldSpec/NodeSpec.
    from repro.experiments.common import World

#: Version of the calibration pipeline baked into every content key.
#: Bump whenever a change anywhere in the pipeline can alter
#: assessment results, so stale cache entries and checkpoints are
#: invalidated instead of silently reused.
PIPELINE_VERSION = "1.0.0"


class InjectedFault(RuntimeError):
    """Raised by the ``crash`` fabrication: a deliberately failing node."""


@dataclass
class CrashingFabricator:
    """Fault injection: the node dies while reporting its scan.

    Used to exercise the runtime's partial-failure path (retries,
    FAILED jobs, campaigns that survive a crashing node) through the
    exact code path a real mid-measurement crash would take.
    """

    message: str = "injected node fault"

    def fabricate(
        self, honest: DirectionalScan, rng: np.random.Generator
    ) -> DirectionalScan:
        raise InjectedFault(self.message)


@dataclass(frozen=True)
class WorldSpec:
    """Everything needed to rebuild the shared simulation world.

    Defaults mirror :func:`repro.experiments.common.build_world`, so
    ``WorldSpec()`` describes the standard experiment world.
    """

    traffic_seed: int = 42
    n_aircraft: int = 80  # experiments.common.DEFAULT_N_AIRCRAFT
    fr24_latency_s: float = 10.0

    def build(self) -> World:
        from repro.experiments.common import build_world

        return build_world(
            traffic_seed=self.traffic_seed,
            n_aircraft=self.n_aircraft,
            fr24_latency_s=self.fr24_latency_s,
        )

    @classmethod
    def from_world(cls, world: World) -> "WorldSpec":
        """Recover the spec an existing world was built from."""
        return cls(
            traffic_seed=world.traffic.rng_seed,
            n_aircraft=world.traffic.config.n_aircraft,
            fr24_latency_s=world.ground_truth.latency_s,
        )


#: Antenna variants a node spec may name. ``standard`` is the
#: SensorNode default wideband antenna; ``damaged_cable`` is the
#: hardware-faults experiment's water-damaged feedline.
ANTENNA_VARIANTS = ("standard", "damaged_cable")


def _antenna_for(variant: str):
    if variant == "standard":
        return None  # SensorNode's default wideband antenna
    if variant == "damaged_cable":
        from repro.experiments.hardware_faults import (
            DAMAGED_CABLE_ANTENNA,
        )

        return DAMAGED_CABLE_ANTENNA
    raise ValueError(f"unknown antenna variant: {variant!r}")


def build_fabrication(
    spec: Optional[str],
) -> Optional[FabricationStrategy]:
    """Instantiate a fabrication strategy from its spec string.

    ``None`` means an honest node. ``"omniscient"`` and ``"ghost:N"``
    name the adversary models; ``"crash"`` injects a node fault.
    """
    if spec is None:
        return None
    name, _, arg = spec.partition(":")
    if name == "omniscient":
        return OmniscientFabricator()
    if name == "ghost":
        return GhostTrafficFabricator(n_ghosts=int(arg or 30))
    if name == "crash":
        return CrashingFabricator(message=arg or "injected node fault")
    raise ValueError(f"unknown fabrication spec: {spec!r}")


@dataclass(frozen=True)
class NodeSpec:
    """One node's configuration, by value.

    Attributes:
        node_id: unique id within the campaign.
        location: testbed site name (``rooftop``/``window``/``indoor``).
        antenna: key into :data:`ANTENNAS`.
        fabrication: optional fabrication spec string (see
            :func:`build_fabrication`).
    """

    node_id: str
    location: str
    antenna: str = "standard"
    fabrication: Optional[str] = None

    def __post_init__(self) -> None:
        if self.antenna not in ANTENNA_VARIANTS:
            raise ValueError(f"unknown antenna variant: {self.antenna!r}")
        build_fabrication(self.fabrication)  # validate eagerly

    def build(self, world: World) -> SensorNode:
        """Instantiate the node against a concrete world."""
        site = world.testbed.site(self.location)
        antenna = _antenna_for(self.antenna)
        if antenna is None:
            return SensorNode(self.node_id, site)
        return SensorNode(self.node_id, site, antenna=antenna)


@dataclass(frozen=True)
class CalibrationJob:
    """One schedulable unit of work: calibrate one node.

    ``priority``, ``max_attempts``, and ``timeout_s`` are execution
    policy and deliberately excluded from the content key — they
    change *how* the job runs, never what it computes.
    """

    node: NodeSpec
    world: WorldSpec = field(default_factory=WorldSpec)
    seed: int = 0
    priority: int = 0
    max_attempts: int = 3
    timeout_s: Optional[float] = None
    pipeline_version: str = PIPELINE_VERSION

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )

    @property
    def job_id(self) -> str:
        return self.node.node_id

    def content_key(self) -> str:
        """Deterministic hash of everything that shapes the result."""
        payload = {
            "node": asdict(self.node),
            "world": asdict(self.world),
            "seed": self.seed,
            "pipeline_version": self.pipeline_version,
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
