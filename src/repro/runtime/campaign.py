"""Fleet campaigns: calibrate a whole network as one resumable run.

A campaign takes a list of :class:`CalibrationJob` specs and drives
them to terminal states through the cache, the queue, and the worker
pool, in that order:

1. jobs whose content key is already in the result cache are
   restored without recomputation;
2. on ``--resume``, jobs recorded DONE in the checkpoint manifest
   (with a matching content key) are restored from it;
3. everything else is enqueued and executed with retries; a job that
   exhausts its attempts ends FAILED without sinking the campaign.

After every terminal job the full manifest — per-job ledger plus the
serialized assessments — is atomically rewritten to the checkpoint
path, so a killed campaign resumes from its last completed job. The
summary ledger and metrics (jobs run, retries, cache hits, latency
percentiles) make partial runs auditable.
"""

from __future__ import annotations

import functools
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.network import NodeAssessment
from repro.core.serialize import (
    assessment_from_dict,
    assessment_to_dict,
)
from repro.engines import (
    get_path_cache,
    path_cache_stats,
    record_path_cache_metrics,
    resolve_engine,
)
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import (
    CalibrationJob,
    NodeSpec,
    WorldSpec,
)
from repro.core.metrics import MetricsRegistry
from repro.runtime.queue import JobQueue, JobState
from repro.runtime.workers import (
    Clock,
    JobOutcome,
    RetryPolicy,
    execute_job,
    seed_world_cache,
)
from repro.runtime.workers import run_queue as _run_queue

if TYPE_CHECKING:
    from repro.experiments.common import World

#: Checkpoint manifest schema version.
MANIFEST_FORMAT = 1

#: The paper-standard 12-node fleet: 4 rooftop, 4 window, 4 indoor;
#: one damaged feedline, two cheating operators.
_FLEET_FABRICATIONS = {
    "window-3": "omniscient",
    "indoor-3": "ghost:30",
}


def standard_fleet_specs() -> Tuple[NodeSpec, ...]:
    """Node specs for the standard 12-node fleet, in seed order."""
    specs: List[NodeSpec] = []
    for cls in ("rooftop", "window", "indoor"):
        for i in range(4):
            node_id = f"{cls}-{i}"
            specs.append(
                NodeSpec(
                    node_id=node_id,
                    location=cls,
                    antenna=(
                        "damaged_cable"
                        if node_id == "rooftop-3"
                        else "standard"
                    ),
                    fabrication=_FLEET_FABRICATIONS.get(node_id),
                )
            )
    return tuple(specs)


def fleet_jobs(
    seed: int = 95,
    world: Optional[WorldSpec] = None,
    specs: Optional[Sequence[NodeSpec]] = None,
    max_attempts: int = 3,
    timeout_s: Optional[float] = None,
    fail_node: Optional[str] = None,
) -> List[CalibrationJob]:
    """Jobs for a fleet campaign, seeded exactly like the serial path.

    Per-node seeds are ``seed + index`` in spec order — the same
    assignment ``CalibrationService.evaluate_network`` makes, so the
    runtime's results are bit-identical to the historical loop.
    ``fail_node`` swaps that node's fabrication for the ``crash``
    fault injector.
    """
    world = world or WorldSpec()
    specs = list(specs if specs is not None else standard_fleet_specs())
    jobs: List[CalibrationJob] = []
    for i, spec in enumerate(specs):
        if fail_node is not None and spec.node_id == fail_node:
            spec = replace(spec, fabrication="crash")
        jobs.append(
            CalibrationJob(
                node=spec,
                world=world,
                seed=seed + i,
                max_attempts=max_attempts,
                timeout_s=timeout_s,
            )
        )
    return jobs


@dataclass
class CampaignConfig:
    """Execution policy for one campaign run.

    ``engine``, ``path_cache``, and ``path_cache_dir`` are execution
    policy like ``workers``: they choose *how* assessments are
    computed (compute backend, stage-result reuse) and deliberately
    never join :meth:`CalibrationJob.content_key` — a cached result
    is valid under any backend.
    """

    workers: int = 1
    executor: str = "thread"
    cache_dir: Optional[str] = None
    checkpoint_path: Optional[str] = None
    resume: bool = False
    stop_after: Optional[int] = None  # run at most N jobs, then stop
    engine: Optional[str] = None  # compute backend (repro.engines)
    path_cache: bool = True
    path_cache_dir: Optional[str] = None  # persist entries on disk

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.resume and self.checkpoint_path is None:
            raise ValueError("resume requires a checkpoint path")
        resolve_engine(self.engine)  # validate the name eagerly


@dataclass
class JobLedgerEntry:
    """How one job reached its current state, and from where."""

    job_id: str
    key: str
    state: str  # "done" | "failed" | "pending"
    source: str  # "run" | "cache" | "checkpoint" | "deferred"
    attempts: int = 0
    errors: List[str] = field(default_factory=list)
    duration_s: float = 0.0


@dataclass
class CampaignResult:
    """Everything a finished (possibly partial) campaign produced."""

    assessments: Dict[str, NodeAssessment]
    ledger: Dict[str, JobLedgerEntry]
    metrics: Dict[str, Union[int, float]]

    def state_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.ledger.values():
            out[entry.state] = out.get(entry.state, 0) + 1
        return out

    def source_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.ledger.values():
            out[entry.source] = out.get(entry.source, 0) + 1
        return out

    def failed(self) -> List[JobLedgerEntry]:
        return [
            e for e in self.ledger.values() if e.state == "failed"
        ]

    def summary_text(self) -> str:
        """Human-readable one-paragraph campaign summary."""
        states = self.state_counts()
        sources = self.source_counts()
        lines = [
            "Campaign summary: "
            + ", ".join(
                f"{states.get(s, 0)} {s}"
                for s in ("done", "failed", "pending")
            ),
            "  sources: "
            + ", ".join(
                f"{n} from {src}" for src, n in sorted(sources.items())
            ),
            f"  jobs run: {self.metrics.get('jobs_done', 0)}"
            f" (+{self.metrics.get('jobs_failed', 0)} failed),"
            f" retries: {self.metrics.get('retries', 0)},"
            f" cache hits: {self.metrics.get('cache_hits', 0)}",
        ]
        p50 = self.metrics.get("job_latency_p50_s")
        p95 = self.metrics.get("job_latency_p95_s")
        if p50 is not None:
            lines.append(
                f"  job latency: p50 {p50:.2f}s, p95 {p95:.2f}s"
            )
        for entry in self.failed():
            last = entry.errors[-1] if entry.errors else "?"
            lines.append(
                f"  FAILED {entry.job_id} after {entry.attempts} "
                f"attempts: {last}"
            )
        return "\n".join(lines)


class FleetCampaign:
    """Orchestrates one fleet calibration campaign end to end."""

    def __init__(
        self,
        jobs: Sequence[CalibrationJob],
        config: Optional[CampaignConfig] = None,
        world: Optional[World] = None,
        cache: Optional[ResultCache] = None,
        runner: Optional[
            Callable[[CalibrationJob], NodeAssessment]
        ] = None,
        clock: Optional[Clock] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.jobs = list(jobs)
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in campaign")
        self.config = config or CampaignConfig()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(self.config.cache_dir)
        )
        if runner is not None:
            self.runner = runner
        elif self.config.engine is not None:
            # partial of a module-level function stays picklable, so
            # process-pool workers receive the backend choice too.
            self.runner = functools.partial(
                execute_job, engine=self.config.engine
            )
        else:
            self.runner = execute_job
        self.clock = clock
        self.retry_policy = retry_policy
        if world is not None:
            # Share the caller's already-built world with thread and
            # serial workers instead of rebuilding it from its spec.
            seed_world_cache(WorldSpec.from_world(world), world)

    # -- checkpointing ----------------------------------------------------

    def _load_manifest(self) -> Dict:
        path = self.config.checkpoint_path
        if path is None or not Path(path).exists():
            return {}
        try:
            manifest = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return {}
        if manifest.get("format") != MANIFEST_FORMAT:
            return {}
        return manifest

    def _write_manifest(
        self,
        ledger: Dict[str, JobLedgerEntry],
        assessments: Dict[str, NodeAssessment],
    ) -> None:
        path = self.config.checkpoint_path
        if path is None:
            return
        manifest = {
            "format": MANIFEST_FORMAT,
            "jobs": {
                e.job_id: {
                    "key": e.key,
                    "state": e.state,
                    "source": e.source,
                    "attempts": e.attempts,
                    "errors": e.errors,
                }
                for e in ledger.values()
            },
            "results": {
                job_id: assessment_to_dict(a)
                for job_id, a in assessments.items()
            },
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(manifest))
        os.replace(tmp, target)

    def _restore_from_manifest(
        self, manifest: Dict, job: CalibrationJob, key: str
    ) -> Optional[NodeAssessment]:
        """A DONE assessment from the checkpoint, if keys still match."""
        entry = manifest.get("jobs", {}).get(job.job_id)
        if not entry or entry.get("state") != "done":
            return None
        if entry.get("key") != key:
            return None  # config changed since the checkpoint
        stored = manifest.get("results", {}).get(job.job_id)
        if stored is None:
            return None
        try:
            return assessment_from_dict(stored)
        except (KeyError, TypeError, ValueError):
            return None

    # -- the run ----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Drive every job to a terminal state; see the module doc.

        The campaign scopes the process-global path cache for its
        duration: enabled/persist settings follow the config, and the
        stats delta over the run lands in the result metrics — so
        each campaign reports its own cache effectiveness even though
        entries survive across campaigns (the warm-run win).
        """
        path_cache = get_path_cache()
        prev_enabled = path_cache.enabled
        prev_persist = path_cache.persist_dir
        path_cache.enabled = self.config.path_cache
        if self.config.path_cache_dir is not None:
            path_cache.persist_dir = self.config.path_cache_dir
        before = path_cache_stats()
        try:
            return self._run(before)
        finally:
            path_cache.enabled = prev_enabled
            path_cache.persist_dir = prev_persist

    def _run(self, path_cache_before: Dict[str, int]) -> CampaignResult:
        config = self.config
        metrics = MetricsRegistry()
        ledger: Dict[str, JobLedgerEntry] = {}
        assessments: Dict[str, NodeAssessment] = {}
        keys = {job.job_id: job.content_key() for job in self.jobs}
        manifest = self._load_manifest() if config.resume else {}

        to_run: List[CalibrationJob] = []
        for job in self.jobs:
            key = keys[job.job_id]
            restored = (
                self._restore_from_manifest(manifest, job, key)
                if manifest
                else None
            )
            if restored is not None:
                assessments[job.job_id] = restored
                ledger[job.job_id] = JobLedgerEntry(
                    job_id=job.job_id,
                    key=key,
                    state="done",
                    source="checkpoint",
                )
                metrics.incr("restored_from_checkpoint")
                continue
            cached = self.cache.get(key)
            if cached is not None:
                assessments[job.job_id] = cached
                ledger[job.job_id] = JobLedgerEntry(
                    job_id=job.job_id,
                    key=key,
                    state="done",
                    source="cache",
                )
                continue
            to_run.append(job)

        if config.stop_after is not None:
            for job in to_run[config.stop_after:]:
                ledger[job.job_id] = JobLedgerEntry(
                    job_id=job.job_id,
                    key=keys[job.job_id],
                    state="pending",
                    source="deferred",
                )
            to_run = to_run[: config.stop_after]

        queue = JobQueue()
        for job in to_run:
            queue.put(job)

        def on_outcome(outcome: JobOutcome) -> None:
            key = keys[outcome.job_id]
            if outcome.state is JobState.DONE:
                assert outcome.assessment is not None
                assessments[outcome.job_id] = outcome.assessment
                self.cache.put(key, outcome.assessment)
            ledger[outcome.job_id] = JobLedgerEntry(
                job_id=outcome.job_id,
                key=key,
                state=(
                    "done"
                    if outcome.state is JobState.DONE
                    else "failed"
                ),
                source="run",
                attempts=outcome.attempts,
                errors=list(outcome.errors),
                duration_s=outcome.duration_s,
            )
            # Checkpoint after every terminal job: a kill at any
            # point loses at most the jobs still in flight.
            self._write_manifest(ledger, assessments)

        if to_run:
            _run_queue(
                queue,
                workers=config.workers,
                executor=config.executor,
                runner=self.runner,
                retry_policy=self.retry_policy,
                clock=self.clock,
                metrics=metrics,
                on_outcome=on_outcome,
            )
        self._write_manifest(ledger, assessments)

        record_path_cache_metrics(metrics, path_cache_before)
        summary = metrics.summary()
        summary["cache_hits"] = self.cache.hits
        summary["cache_misses"] = self.cache.misses
        # Re-key into job order: with workers > 1 the dicts fill in
        # completion order, and downstream stable sorts (marketplace
        # ranking) must not depend on scheduling.
        return CampaignResult(
            assessments={
                j.job_id: assessments[j.job_id]
                for j in self.jobs
                if j.job_id in assessments
            },
            ledger={
                j.job_id: ledger[j.job_id]
                for j in self.jobs
                if j.job_id in ledger
            },
            metrics=summary,
        )


def run_fleet_campaign(
    seed: int = 95,
    config: Optional[CampaignConfig] = None,
    world: Optional[World] = None,
    world_spec: Optional[WorldSpec] = None,
    max_attempts: int = 3,
    timeout_s: Optional[float] = None,
    fail_node: Optional[str] = None,
) -> CampaignResult:
    """Build and run the standard 12-node fleet campaign."""
    if world is not None and world_spec is None:
        world_spec = WorldSpec.from_world(world)
    jobs = fleet_jobs(
        seed=seed,
        world=world_spec,
        max_attempts=max_attempts,
        timeout_s=timeout_s,
        fail_node=fail_node,
    )
    campaign = FleetCampaign(jobs, config=config, world=world)
    return campaign.run()
