"""Worker pools: execute calibration jobs with retries and timeouts.

Two execution backends, both behind :func:`run_queue`:

- ``workers=1`` runs jobs inline in the calling thread — the
  degenerate serial case, bit-identical to the historical
  ``CalibrationService.evaluate_network`` loop;
- ``workers>1`` drives a ``concurrent.futures`` thread or process
  pool. Threads share the in-process world cache (the simulation
  objects are read-only after construction and every evaluation gets
  its own RNG, so results are identical regardless of interleaving);
  processes rebuild the world from its spec once per worker.

Failures are retried with exponential backoff and deterministic
jitter (seeded from the job key, so schedules are reproducible), up
to the job's ``max_attempts``; the final failure parks the job in
FAILED without sinking the rest of the queue. Per-job timeouts are
enforced on pooled runs; a timed-out future is abandoned (Python
cannot kill a running worker thread) and its late result ignored.

All waiting goes through a :class:`Clock`, so tests drive retry
scheduling with a fake clock instead of sleeping.
"""

from __future__ import annotations

import concurrent.futures
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol

from repro.core.network import CalibrationService, NodeAssessment
from repro.runtime.jobs import (
    CalibrationJob,
    WorldSpec,
    build_fabrication,
)
from repro.core.metrics import MetricsRegistry
from repro.runtime.queue import JobQueue, JobRecord, JobState

if TYPE_CHECKING:
    from repro.experiments.common import World

#: Poll interval for pooled runs while futures are in flight.
_POLL_S = 0.05


class Clock(Protocol):
    """Injectable time source: monotonic now + sleep."""

    def now(self) -> float: ...

    def sleep(self, seconds: float) -> None: ...


class SystemClock:
    """The real monotonic clock."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, bounded jitter.

    ``delay_s`` for attempt *n* (1-based count of attempts already
    made) is ``base * factor**(n-1)`` capped at ``max_delay_s``, then
    scaled by ``1 ± jitter`` drawn from a PRNG seeded with the job
    key and attempt number — reproducible, but de-synchronized across
    jobs so a burst of failures does not retry in lockstep.
    """

    base_delay_s: float = 0.5
    factor: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1

    def delay_s(self, job_key: str, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        raw = min(
            self.max_delay_s,
            self.base_delay_s * self.factor ** (attempt - 1),
        )
        rng = random.Random(f"{job_key}:{attempt}")
        return raw * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))


@dataclass
class JobOutcome:
    """Terminal result of one job: the assessment, or why it failed."""

    job_id: str
    state: JobState
    attempts: int
    duration_s: float
    assessment: Optional[NodeAssessment] = None
    errors: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Job execution: rebuild heavy state per process, cached by spec.

_WORLD_CACHE: Dict[WorldSpec, World] = {}
_WORLD_CACHE_LOCK = threading.Lock()


def world_for(spec: WorldSpec) -> World:
    """The (deterministic) world for a spec, built at most once here."""
    with _WORLD_CACHE_LOCK:
        world = _WORLD_CACHE.get(spec)
        if world is None:
            world = spec.build()
            _WORLD_CACHE[spec] = world
        return world


def seed_world_cache(spec: WorldSpec, world: World) -> None:
    """Pre-populate the cache with an already-built world."""
    with _WORLD_CACHE_LOCK:
        _WORLD_CACHE[spec] = world


def execute_job(
    job: CalibrationJob, engine: Optional[str] = None
) -> NodeAssessment:
    """Run one calibration job to completion (module-level: picklable).

    ``engine`` names the compute backend (:mod:`repro.engines`) and is
    execution policy: it never joins the job's content key, because a
    backend switch never changes assessment results beyond documented
    kernel tolerances. Campaigns thread it here via ``functools.partial``
    so process-pool workers receive it through pickling.
    """
    world = world_for(job.world)
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
        fm_towers=world.testbed.fm_towers,
        engine=engine,
    )
    node = job.node.build(world)
    fabrication = build_fabrication(job.node.fabrication)
    return service.evaluate_node(
        node, seed=job.seed, fabrication=fabrication
    )


def make_executor(
    kind: str, workers: int
) -> concurrent.futures.Executor:
    """A thread or process pool executor."""
    if kind == "thread":
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-runtime"
        )
    if kind == "process":
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        )
    raise ValueError(f"unknown executor kind: {kind!r}")


# ---------------------------------------------------------------------------
# The scheduling loop.


def _finish_success(
    queue: JobQueue,
    record: JobRecord,
    assessment: NodeAssessment,
    duration_s: float,
    metrics: MetricsRegistry,
) -> JobOutcome:
    queue.complete(record.job_id)
    metrics.incr("jobs_done")
    metrics.observe("job_latency", duration_s)
    return JobOutcome(
        job_id=record.job_id,
        state=JobState.DONE,
        attempts=record.attempts,
        duration_s=duration_s,
        assessment=assessment,
        errors=list(record.errors),
    )


def _finish_failure(
    queue: JobQueue,
    record: JobRecord,
    error: str,
    duration_s: float,
    retry_policy: RetryPolicy,
    clock: Clock,
    metrics: MetricsRegistry,
) -> Optional[JobOutcome]:
    """Retry if attempts remain, else park the job in FAILED.

    Returns the terminal outcome, or ``None`` when a retry was
    scheduled.
    """
    if record.attempts < record.job.max_attempts:
        delay = retry_policy.delay_s(
            record.job.content_key(), record.attempts
        )
        queue.retry(record.job_id, error, clock.now() + delay)
        metrics.incr("retries")
        return None
    queue.fail(record.job_id, error)
    metrics.incr("jobs_failed")
    return JobOutcome(
        job_id=record.job_id,
        state=JobState.FAILED,
        attempts=record.attempts,
        duration_s=duration_s,
        errors=list(record.errors),
    )


def run_queue(
    queue: JobQueue,
    workers: int = 1,
    executor: str = "thread",
    runner: Callable[[CalibrationJob], NodeAssessment] = execute_job,
    retry_policy: Optional[RetryPolicy] = None,
    clock: Optional[Clock] = None,
    metrics: Optional[MetricsRegistry] = None,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
) -> Dict[str, JobOutcome]:
    """Drain the queue; return terminal outcomes keyed by job id.

    ``on_outcome`` fires after every job reaches a terminal state —
    the campaign's checkpoint hook. ``runner`` is injectable so tests
    can exercise retry scheduling without running real calibrations.
    """
    retry_policy = retry_policy or RetryPolicy()
    clock = clock or SystemClock()
    metrics = metrics if metrics is not None else MetricsRegistry()
    outcomes: Dict[str, JobOutcome] = {}

    def settle(outcome: Optional[JobOutcome]) -> None:
        if outcome is None:
            return
        outcomes[outcome.job_id] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    if workers <= 1:
        _run_serial(
            queue, runner, retry_policy, clock, metrics, settle
        )
    else:
        _run_pooled(
            queue,
            workers,
            executor,
            runner,
            retry_policy,
            clock,
            metrics,
            settle,
        )
    return outcomes


def _wait_for_ready(queue: JobQueue, clock: Clock) -> bool:
    """Sleep until the earliest backoff expires; False when drained."""
    ready_at = queue.next_ready_at()
    if ready_at is None:
        return False
    clock.sleep(max(ready_at - clock.now(), 0.0) + 1e-6)
    return True


def _run_serial(
    queue: JobQueue,
    runner: Callable[[CalibrationJob], NodeAssessment],
    retry_policy: RetryPolicy,
    clock: Clock,
    metrics: MetricsRegistry,
    settle: Callable[[Optional[JobOutcome]], None],
) -> None:
    """Inline execution: one job at a time, in the calling thread.

    Per-job timeouts are not enforced here — there is no second
    thread to bound the first; pooled runs enforce them.
    """
    while True:
        record = queue.claim(clock.now())
        if record is None:
            if not _wait_for_ready(queue, clock):
                return
            continue
        started = clock.now()
        try:
            assessment = runner(record.job)
        except Exception as exc:  # noqa: BLE001 - job isolation
            settle(
                _finish_failure(
                    queue,
                    record,
                    f"{type(exc).__name__}: {exc}",
                    clock.now() - started,
                    retry_policy,
                    clock,
                    metrics,
                )
            )
            continue
        settle(
            _finish_success(
                queue,
                record,
                assessment,
                clock.now() - started,
                metrics,
            )
        )


def _run_pooled(
    queue: JobQueue,
    workers: int,
    executor: str,
    runner: Callable[[CalibrationJob], NodeAssessment],
    retry_policy: RetryPolicy,
    clock: Clock,
    metrics: MetricsRegistry,
    settle: Callable[[Optional[JobOutcome]], None],
) -> None:
    """Pool execution: up to ``workers`` jobs in flight at once."""
    in_flight: Dict[
        concurrent.futures.Future, tuple  # (record, started_at)
    ] = {}
    with make_executor(executor, workers) as pool:
        while True:
            # Keep the pool saturated with every claimable job.
            while len(in_flight) < workers:
                record = queue.claim(clock.now())
                if record is None:
                    break
                in_flight[pool.submit(runner, record.job)] = (
                    record,
                    clock.now(),
                )
            if not in_flight:
                if not _wait_for_ready(queue, clock):
                    return
                continue

            done, _ = concurrent.futures.wait(
                in_flight,
                timeout=_POLL_S,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in done:
                record, started = in_flight.pop(future)
                duration = clock.now() - started
                error = (
                    future.exception()
                )  # never raises: future is done
                if error is None:
                    settle(
                        _finish_success(
                            queue,
                            record,
                            future.result(),
                            duration,
                            metrics,
                        )
                    )
                else:
                    settle(
                        _finish_failure(
                            queue,
                            record,
                            f"{type(error).__name__}: {error}",
                            duration,
                            retry_policy,
                            clock,
                            metrics,
                        )
                    )

            # Enforce per-job timeouts on whatever is still running.
            for future, (record, started) in list(in_flight.items()):
                timeout_s = record.job.timeout_s
                if timeout_s is None:
                    continue
                elapsed = clock.now() - started
                if elapsed <= timeout_s:
                    continue
                future.cancel()  # abandon; a late result is ignored
                del in_flight[future]
                metrics.incr("timeouts")
                settle(
                    _finish_failure(
                        queue,
                        record,
                        f"timeout: exceeded {timeout_s:.1f}s "
                        f"(ran {elapsed:.1f}s)",
                        elapsed,
                        retry_policy,
                        clock,
                        metrics,
                    )
                )
