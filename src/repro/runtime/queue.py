"""In-memory priority job queue with a per-job state machine.

Every job moves through an explicit lifecycle::

    PENDING ──claim──▶ RUNNING ──complete──▶ DONE
       ▲                  │
       │                  ├──fail────▶ FAILED
       └──────────────────┘
            retry (RUNNING ▶ RETRYING, ready again at ``ready_at``)

Transitions outside this graph raise :class:`InvalidTransition` — a
scheduler bug should be loud, not a silently wedged campaign. The
queue is thread-safe; the executor loop in
:mod:`repro.runtime.workers` claims from many threads at once.

Claiming order: among jobs whose ``ready_at`` has passed, lowest
``priority`` value first (ties broken by insertion order). The scan
is O(n) per claim — campaigns are thousands of jobs at most, and
correctness under retries beats heap bookkeeping here.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.jobs import CalibrationJob


class JobState(enum.Enum):
    """Lifecycle states of a queued calibration job."""

    PENDING = "pending"
    RUNNING = "running"
    RETRYING = "retrying"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


#: Legal state transitions; anything else is a scheduler bug.
_TRANSITIONS = {
    JobState.PENDING: {JobState.RUNNING},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.RETRYING},
    JobState.RETRYING: {JobState.RUNNING},
    JobState.DONE: set(),
    JobState.FAILED: set(),
}


class InvalidTransition(RuntimeError):
    """An illegal job state transition was attempted."""


@dataclass
class JobRecord:
    """One job's scheduling state inside the queue."""

    job: CalibrationJob
    state: JobState = JobState.PENDING
    attempts: int = 0
    ready_at: float = 0.0
    errors: List[str] = field(default_factory=list)
    seq: int = 0

    @property
    def job_id(self) -> str:
        return self.job.job_id


class JobQueue:
    """Thread-safe priority queue of calibration jobs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._seq = 0

    def put(self, job: CalibrationJob, ready_at: float = 0.0) -> JobRecord:
        """Enqueue a job; job ids must be unique within the queue."""
        with self._lock:
            if job.job_id in self._records:
                raise ValueError(f"duplicate job id: {job.job_id!r}")
            record = JobRecord(job=job, ready_at=ready_at, seq=self._seq)
            self._seq += 1
            self._records[job.job_id] = record
            return record

    def _transition(self, record: JobRecord, new: JobState) -> None:
        if new not in _TRANSITIONS[record.state]:
            raise InvalidTransition(
                f"job {record.job_id!r}: {record.state.value} -> "
                f"{new.value} is not a legal transition"
            )
        record.state = new

    def claim(self, now: float) -> Optional[JobRecord]:
        """Claim the best ready job, moving it to RUNNING.

        Returns ``None`` when nothing is claimable right now (either
        the queue is drained or every waiting job is backing off).
        """
        with self._lock:
            best: Optional[JobRecord] = None
            for record in self._records.values():
                if record.state not in (
                    JobState.PENDING,
                    JobState.RETRYING,
                ):
                    continue
                if record.ready_at > now:
                    continue
                if best is None or (
                    record.job.priority,
                    record.seq,
                ) < (best.job.priority, best.seq):
                    best = record
            if best is None:
                return None
            self._transition(best, JobState.RUNNING)
            best.attempts += 1
            return best

    def complete(self, job_id: str) -> JobRecord:
        """RUNNING → DONE."""
        with self._lock:
            record = self._records[job_id]
            self._transition(record, JobState.DONE)
            return record

    def fail(self, job_id: str, error: str) -> JobRecord:
        """RUNNING → FAILED (retries exhausted or non-retryable)."""
        with self._lock:
            record = self._records[job_id]
            self._transition(record, JobState.FAILED)
            record.errors.append(error)
            return record

    def retry(
        self, job_id: str, error: str, ready_at: float
    ) -> JobRecord:
        """RUNNING → RETRYING, claimable again once ``ready_at`` passes."""
        with self._lock:
            record = self._records[job_id]
            self._transition(record, JobState.RETRYING)
            record.errors.append(error)
            record.ready_at = ready_at
            return record

    def next_ready_at(self) -> Optional[float]:
        """Earliest ``ready_at`` among claimable jobs, if any."""
        with self._lock:
            times = [
                r.ready_at
                for r in self._records.values()
                if r.state in (JobState.PENDING, JobState.RETRYING)
            ]
            return min(times) if times else None

    def unfinished(self) -> int:
        """Jobs not yet in a terminal state (including RUNNING ones)."""
        with self._lock:
            return sum(
                1
                for r in self._records.values()
                if not r.state.terminal
            )

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state name."""
        with self._lock:
            out = {state.value: 0 for state in JobState}
            for record in self._records.values():
                out[record.state.value] += 1
            return out

    def records(self) -> Dict[str, JobRecord]:
        """Snapshot of all records keyed by job id."""
        with self._lock:
            return dict(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
