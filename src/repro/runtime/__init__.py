"""repro.runtime — the parallel fleet-calibration runtime.

The paper's §2 vision is a *network* of crowd-sourced sensors
calibrated continuously; this package is the execution layer that
scales the per-node pipeline in :mod:`repro.core` from "a dozen nodes
in a for-loop" toward that fleet:

- :mod:`repro.runtime.jobs` — value-typed job specs with a
  deterministic content hash of (node config, world seed, pipeline
  version);
- :mod:`repro.runtime.queue` — in-memory priority queue with an
  explicit per-job state machine (PENDING → RUNNING →
  DONE/FAILED/RETRYING);
- :mod:`repro.runtime.workers` — thread/process pools with per-job
  timeouts and exponential-backoff retries; ``workers=1`` is the
  serial degenerate case, bit-identical to the historical loop;
- :mod:`repro.runtime.cache` — content-addressed result cache
  (memory + JSON-on-disk) so unchanged nodes skip recomputation;
- :mod:`repro.runtime.campaign` — whole-fleet orchestration with
  checkpoint/resume, partial-failure tolerance, and a summary ledger.

Counters and latency percentiles come from
:mod:`repro.core.metrics`, shared with the stream and serve layers.

Entry points: ``python -m repro fleet --workers 4`` on the command
line, or :func:`repro.runtime.campaign.run_fleet_campaign` from code.
"""

from repro.runtime.cache import ResultCache
from repro.runtime.campaign import (
    CampaignConfig,
    CampaignResult,
    FleetCampaign,
    JobLedgerEntry,
    fleet_jobs,
    run_fleet_campaign,
    standard_fleet_specs,
)
from repro.runtime.jobs import (
    PIPELINE_VERSION,
    CalibrationJob,
    CrashingFabricator,
    InjectedFault,
    NodeSpec,
    WorldSpec,
    build_fabrication,
)
from repro.core.metrics import MetricsRegistry, percentile
from repro.runtime.queue import (
    InvalidTransition,
    JobQueue,
    JobRecord,
    JobState,
)
from repro.runtime.workers import (
    JobOutcome,
    RetryPolicy,
    SystemClock,
    execute_job,
    run_queue,
)

__all__ = [
    "PIPELINE_VERSION",
    "CalibrationJob",
    "CampaignConfig",
    "CampaignResult",
    "CrashingFabricator",
    "FleetCampaign",
    "InjectedFault",
    "InvalidTransition",
    "JobLedgerEntry",
    "JobOutcome",
    "JobQueue",
    "JobRecord",
    "JobState",
    "MetricsRegistry",
    "NodeSpec",
    "ResultCache",
    "RetryPolicy",
    "SystemClock",
    "WorldSpec",
    "build_fabrication",
    "execute_job",
    "fleet_jobs",
    "percentile",
    "run_fleet_campaign",
    "run_queue",
    "standard_fleet_specs",
]
