"""Content-addressed result cache for calibration jobs.

Keys are :meth:`CalibrationJob.content_key` hashes — a function of
the node config, the world seed, the per-job seed, and the pipeline
version — so a hit is *definitionally* the same result the job would
recompute, and any config change misses naturally (no explicit
invalidation protocol needed).

Two tiers: an in-memory dict, and optionally a directory of
``<key>.json`` envelopes (via :mod:`repro.core.serialize`) so warm
results survive across processes and campaign runs. Disk writes are
atomic (temp file + rename); a corrupt or unreadable entry is treated
as a miss, never an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.network import NodeAssessment
from repro.core.serialize import (
    assessment_from_dict,
    assessment_to_dict,
)

#: Envelope schema version for on-disk entries.
CACHE_FORMAT = 1


class ResultCache:
    """Memory + optional JSON-on-disk cache of node assessments."""

    def __init__(
        self, cache_dir: Optional[Union[str, Path]] = None
    ) -> None:
        self._memory: Dict[str, NodeAssessment] = {}
        self._dir = Path(cache_dir) if cache_dir is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.json"

    def get(self, key: str) -> Optional[NodeAssessment]:
        """The cached assessment for a content key, or ``None``."""
        cached = self._memory.get(key)
        if cached is None and self._dir is not None:
            cached = self._read_disk(key)
            if cached is not None:
                self._memory[key] = cached
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def put(self, key: str, assessment: NodeAssessment) -> None:
        """Store an assessment under its content key."""
        self._memory[key] = assessment
        if self._dir is not None:
            self._write_disk(key, assessment)

    def _read_disk(self, key: str) -> Optional[NodeAssessment]:
        path = self._path(key)
        try:
            envelope = json.loads(path.read_text())
            if envelope.get("format") != CACHE_FORMAT:
                return None
            if envelope.get("key") != key:
                return None
            return assessment_from_dict(envelope["assessment"])
        except (OSError, ValueError, KeyError, TypeError):
            return None  # unreadable/corrupt entry == miss

    def _write_disk(self, key: str, assessment: NodeAssessment) -> None:
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "node_id": assessment.node_id,
            "assessment": assessment_to_dict(assessment),
        }
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(envelope))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return len(self._memory)
