"""FM broadcast as an additional signal of opportunity (§5).

Extends the Figure 4-style frequency survey below 108 MHz with three
FM stations, at each of the three locations. The expected shape: FM
penetrates buildings even better than the low TV channels, so every
location keeps usable FM reception, with the indoor/window excess
attenuation ordering preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.frequency import FrequencyEvaluator
from repro.experiments.common import (
    LOCATIONS,
    World,
    build_world,
    format_table,
)


@dataclass
class FmExtensionResult:
    """dBFS per (location, station); None = buried in noise."""

    power_dbfs: Dict[str, Dict[str, Optional[float]]]
    excess_db: Dict[str, Dict[str, Optional[float]]]


def run_fm_extension(world: Optional[World] = None) -> FmExtensionResult:
    """Measure the three FM stations from each location."""
    world = world or build_world()
    power: Dict[str, Dict[str, Optional[float]]] = {}
    excess: Dict[str, Dict[str, Optional[float]]] = {}
    for location in LOCATIONS:
        node = world.node_at(location)
        profile = FrequencyEvaluator(
            node=node,
            cell_towers=world.testbed.cell_towers,
            fm_towers=world.testbed.fm_towers,
        ).run()
        power[location] = {
            m.label: m.measured for m in profile.by_source("fm")
        }
        excess[location] = {
            m.label: m.excess_attenuation_db
            for m in profile.by_source("fm")
        }
    return FmExtensionResult(power_dbfs=power, excess_db=excess)


def format_bars(result: FmExtensionResult) -> str:
    stations = sorted(next(iter(result.power_dbfs.values())))
    rows = []
    for station in stations:
        row = [station]
        for location in LOCATIONS:
            value = result.power_dbfs[location][station]
            row.append("--" if value is None else f"{value:.1f}")
        rows.append(row)
    return format_table(
        ["station"] + [f"{loc} (dBFS)" for loc in LOCATIONS], rows
    )
