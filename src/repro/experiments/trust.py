"""Trust: detecting fabricated sensor data (§2, §5).

Evaluates the trust checks against an honest node and three adversary
models on the same rooftop installation: an omniscient fabricator
(replays the public flight tracker as "decoded"), a replay fabricator
(uploads a recording from another time), and a ghost-traffic padder.
The series reported: trust score per operator type, and which check
caught each adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.directional import DirectionalEvaluator
from repro.core.network import TrustEvaluator
from repro.experiments.common import World, build_world, format_table
from repro.node.fabrication import (
    GhostTrafficFabricator,
    HonestReporter,
    OmniscientFabricator,
    ReplayFabricator,
)


@dataclass
class TrustRow:
    """One operator type's trust outcome."""

    operator: str
    trust_score: float
    trustworthy: bool
    failed_checks: List[str]


def _donor_scan(world: World, seed: int):
    """A scan from a different traffic picture, for the replayer."""
    from repro.airspace.flightradar import FlightRadarService
    from repro.airspace.traffic import TrafficConfig, TrafficSimulator

    other_traffic = TrafficSimulator(
        center=world.testbed.center,
        config=TrafficConfig(n_aircraft=80),
        rng_seed=seed + 999,
    )
    other_gt = FlightRadarService(traffic=other_traffic)
    node = world.node_at("rooftop")
    evaluator = DirectionalEvaluator(
        node=node, traffic=other_traffic, ground_truth=other_gt
    )
    return evaluator.run(np.random.default_rng(seed + 999))


def run_trust_experiment(
    world: Optional[World] = None, seed: int = 30
) -> List[TrustRow]:
    """Honest + three adversaries on the rooftop node."""
    world = world or build_world()
    node = world.node_at("rooftop")
    evaluator = DirectionalEvaluator(
        node=node,
        traffic=world.traffic,
        ground_truth=world.ground_truth,
    )
    honest_scan = evaluator.run(np.random.default_rng(seed))
    trust = TrustEvaluator()

    operators: List[tuple] = [
        ("honest", HonestReporter()),
        ("omniscient", OmniscientFabricator()),
        ("replay", ReplayFabricator(donor=_donor_scan(world, seed))),
        ("ghost", GhostTrafficFabricator(n_ghosts=25)),
    ]
    rows: List[TrustRow] = []
    rng = np.random.default_rng(seed + 1)
    for name, strategy in operators:
        reported = strategy.fabricate(honest_scan, rng)
        assessment = trust.assess(reported)
        rows.append(
            TrustRow(
                operator=name,
                trust_score=assessment.trust_score(),
                trustworthy=assessment.is_trustworthy(),
                failed_checks=[
                    c.name for c in assessment.checks if not c.passed
                ],
            )
        )
    return rows


def format_rows(rows: List[TrustRow]) -> str:
    return format_table(
        ["operator", "trust score", "trustworthy", "failed checks"],
        [
            [
                r.operator,
                f"{r.trust_score:.2f}",
                "yes" if r.trustworthy else "NO",
                ", ".join(r.failed_checks) or "-",
            ]
            for r in rows
        ],
    )
