"""Figure 2: the mobile-network experiment testbed.

The paper's Figure 2 is a map of the experiment site with the five
cellular towers used in Figure 3. The reproducible content is the
layout table: tower id, bearing and distance from the site, downlink
frequency, band, and the coverage class the caption quotes (low band
up to 40 km; mid band 1.6-19 km).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.environment.scenarios import Testbed, standard_testbed
from repro.geo.distance import haversine_m, initial_bearing_deg
from repro.experiments.common import format_table


@dataclass(frozen=True)
class TowerLayoutRow:
    """One tower's geometry/channel entry."""

    tower_id: str
    bearing_deg: float
    distance_m: float
    downlink_mhz: float
    band: str
    nominal_range_km: float


def run_figure2(testbed: Optional[Testbed] = None) -> List[TowerLayoutRow]:
    """Build the testbed layout table."""
    testbed = testbed or standard_testbed()
    site = testbed.center
    rows = []
    for tower in testbed.cell_towers.towers:
        rows.append(
            TowerLayoutRow(
                tower_id=tower.tower_id,
                bearing_deg=initial_bearing_deg(site, tower.position),
                distance_m=haversine_m(site, tower.position),
                downlink_mhz=tower.downlink_freq_hz / 1e6,
                band=tower.band_name,
                nominal_range_km=tower.nominal_range_km(),
            )
        )
    rows.sort(key=lambda r: r.tower_id)
    return rows


@dataclass(frozen=True)
class ScanPlanRow:
    """One srsUE channel-scan entry: a distinct EARFCN and its cells."""

    earfcn: int
    downlink_mhz: float
    tower_ids: List[str]


def run_scan_plan(testbed: Optional[Testbed] = None) -> List[ScanPlanRow]:
    """The channel list a §3.2 scan actually tunes.

    Each distinct EARFCN appears once no matter how many towers share
    it — the evaluator scans per channel and joins towers by PCI, so
    the scan cost is per EARFCN, not per tower.
    """
    testbed = testbed or standard_testbed()
    rows = []
    for earfcn in testbed.cell_towers.earfcns():
        towers = testbed.cell_towers.by_earfcn(earfcn)
        rows.append(
            ScanPlanRow(
                earfcn=earfcn,
                downlink_mhz=towers[0].downlink_freq_hz / 1e6,
                tower_ids=[t.tower_id for t in towers],
            )
        )
    return rows


def format_scan_plan(rows: List[ScanPlanRow]) -> str:
    """Render the scan-plan table."""
    return format_table(
        ["earfcn", "downlink (MHz)", "cells"],
        [
            [
                str(r.earfcn),
                f"{r.downlink_mhz:.1f}",
                ", ".join(r.tower_ids),
            ]
            for r in rows
        ],
    )


def format_layout(rows: List[TowerLayoutRow]) -> str:
    """Render the layout table."""
    return format_table(
        [
            "tower",
            "bearing (deg)",
            "distance (m)",
            "downlink (MHz)",
            "band",
            "coverage (km)",
        ],
        [
            [
                r.tower_id,
                f"{r.bearing_deg:.0f}",
                f"{r.distance_m:.0f}",
                f"{r.downlink_mhz:.0f}",
                r.band,
                f"{r.nominal_range_km:.0f}",
            ]
            for r in rows
        ],
    )
