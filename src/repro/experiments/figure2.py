"""Figure 2: the mobile-network experiment testbed.

The paper's Figure 2 is a map of the experiment site with the five
cellular towers used in Figure 3. The reproducible content is the
layout table: tower id, bearing and distance from the site, downlink
frequency, band, and the coverage class the caption quotes (low band
up to 40 km; mid band 1.6-19 km).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.environment.scenarios import Testbed, standard_testbed
from repro.geo.distance import haversine_m, initial_bearing_deg
from repro.experiments.common import format_table


@dataclass(frozen=True)
class TowerLayoutRow:
    """One tower's geometry/channel entry."""

    tower_id: str
    bearing_deg: float
    distance_m: float
    downlink_mhz: float
    band: str
    nominal_range_km: float


def run_figure2(testbed: Optional[Testbed] = None) -> List[TowerLayoutRow]:
    """Build the testbed layout table."""
    testbed = testbed or standard_testbed()
    site = testbed.center
    rows = []
    for tower in testbed.cell_towers.towers:
        rows.append(
            TowerLayoutRow(
                tower_id=tower.tower_id,
                bearing_deg=initial_bearing_deg(site, tower.position),
                distance_m=haversine_m(site, tower.position),
                downlink_mhz=tower.downlink_freq_hz / 1e6,
                band=tower.band_name,
                nominal_range_km=tower.nominal_range_km(),
            )
        )
    rows.sort(key=lambda r: r.tower_id)
    return rows


def format_layout(rows: List[TowerLayoutRow]) -> str:
    """Render the layout table."""
    return format_table(
        [
            "tower",
            "bearing (deg)",
            "distance (m)",
            "downlink (MHz)",
            "band",
            "coverage (km)",
        ],
        [
            [
                r.tower_id,
                f"{r.bearing_deg:.0f}",
                f"{r.distance_m:.0f}",
                f"{r.downlink_mhz:.0f}",
                r.band,
                f"{r.nominal_range_km:.0f}",
            ]
            for r in rows
        ],
    )
