"""CBRS-style installation-claim verification (§3.3).

"Every CBRS modem is required to self-report its location,
indoor/outdoor status, installation situation ... The methodologies
proposed in this paper ... can aid in the development of an automatic
verification system to validate the reported information."

This experiment puts honest and inflated claims on nodes at each
location, runs the full calibration pipeline, and reports which claims
the automatic verification flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.network import CalibrationService
from repro.experiments.common import (
    LOCATIONS,
    World,
    build_world,
    format_table,
)
from repro.node.claims import NodeClaims
from repro.node.sensor import SensorNode


@dataclass
class CbrsRow:
    """Verification outcome for one (location, claim-style) pair."""

    location: str
    claim_style: str
    should_be_flagged: bool
    violations: List[str]

    @property
    def flagged(self) -> bool:
        return bool(self.violations)

    @property
    def correct(self) -> bool:
        return self.flagged == self.should_be_flagged


def run_cbrs_verification(
    world: Optional[World] = None, seed: int = 40
) -> List[CbrsRow]:
    """Honest and inflated claims at each location."""
    world = world or build_world()
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
    )
    rows: List[CbrsRow] = []
    for i, location in enumerate(LOCATIONS):
        for style in ("honest", "inflated"):
            node = SensorNode(
                node_id=f"{location}-{style}",
                environment=world.testbed.site(location),
            )
            if style == "honest":
                node.claims = NodeClaims.honest(node)
            else:
                node.claims = NodeClaims.inflated(node)
            assessment = service.evaluate_node(node, seed=seed + i)
            # CBRS self-reports concern the *installation* (location,
            # indoor/outdoor, situation), so correctness is judged on
            # installation claims only. Frequency-coverage violations
            # on honest nodes are the calibration correctly finding
            # site limits, not a caught lie; they are still reported.
            installation_violations = [
                v.claim
                for v in assessment.claim_violations
                if "coverage" not in v.claim
            ]
            should_flag = style == "inflated"
            rows.append(
                CbrsRow(
                    location=location,
                    claim_style=style,
                    should_be_flagged=should_flag,
                    violations=installation_violations,
                )
            )
    return rows


def format_rows(rows: List[CbrsRow]) -> str:
    return format_table(
        ["location", "claims", "flagged", "expected", "violations"],
        [
            [
                r.location,
                r.claim_style,
                "yes" if r.flagged else "no",
                "flag" if r.should_be_flagged else "pass",
                "; ".join(r.violations) or "-",
            ]
            for r in rows
        ],
    )


def detection_accuracy(rows: List[CbrsRow]) -> float:
    """Fraction of (location, style) cases verified correctly."""
    if not rows:
        return 0.0
    return sum(1 for r in rows if r.correct) / len(rows)
