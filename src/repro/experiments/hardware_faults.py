"""Hardware-fault detection: the paper's §1 failure inventory.

"There are numerous problems that affect the quality of data such as
the efficiency of the antenna and the sensitivity of the SDR in the
desired spectrum bands ... and installation issues such as damaged
antenna cables."

Four nodes share the same rooftop; three are broken in one of those
ways. The calibration pipeline must grade the healthy node highest
and surface the faults as degraded band grades / claim violations —
all without anyone climbing to the roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.network import CalibrationService
from repro.experiments.common import World, build_world, format_table
from repro.node.claims import NodeClaims
from repro.node.sensor import SensorNode
from repro.sdr.antenna import WIDEBAND_700_2700, Antenna
from repro.sdr.frontend import BLADERF_XA9, SdrFrontEnd

#: A water-damaged feedline: ~18 dB of extra loss across the band.
DAMAGED_CABLE_ANTENNA = Antenna(
    low_hz=700e6,
    high_hz=2700e6,
    gain_dbi=2.0 - 18.0,
)

#: The wrong antenna for the job: a 2.4 GHz ISM whip with steep
#: rolloff below its band.
WRONG_BAND_ANTENNA = Antenna(
    low_hz=2.4e9,
    high_hz=2.5e9,
    gain_dbi=2.0,
    rolloff_db_per_octave=20.0,
)

#: A cheap SDR that only tunes to 1.7 GHz and is 10 dB noisier.
DEAF_SDR = SdrFrontEnd(
    name="RTL-ish dongle",
    min_freq_hz=60e6,
    max_freq_hz=1.7e9,
    max_sample_rate_hz=2.4e6,
    noise_figure_db=17.0,
    gain_db=40.0,
    full_scale_dbm=-20.0,
    adc_bits=8,
)


@dataclass
class FaultRow:
    """One node's calibration outcome."""

    fault: str
    overall_score: float
    adsb_reception_rate: float
    dead_bands: int
    violations: List[str]


def run_hardware_faults(
    world: Optional[World] = None, seed: int = 80
) -> List[FaultRow]:
    """Calibrate the healthy node and the three broken ones."""
    world = world or build_world()
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
        fm_towers=world.testbed.fm_towers,
    )
    site = world.testbed.site("rooftop")
    nodes = [
        ("healthy", SensorNode("healthy", site)),
        (
            "damaged cable",
            SensorNode(
                "damaged-cable", site, antenna=DAMAGED_CABLE_ANTENNA
            ),
        ),
        (
            "wrong-band antenna",
            SensorNode(
                "wrong-antenna", site, antenna=WRONG_BAND_ANTENNA
            ),
        ),
        (
            "deaf SDR (<=1.7 GHz, NF 17)",
            SensorNode(
                "deaf-sdr",
                site,
                sdr=DEAF_SDR,
                antenna=WIDEBAND_700_2700,
            ),
        ),
    ]
    rows: List[FaultRow] = []
    for i, (fault, node) in enumerate(nodes):
        # Every operator claims a healthy full-range install.
        node.claims = NodeClaims(
            position=site.position,
            min_freq_hz=88e6,
            max_freq_hz=2.7e9,
            outdoor=True,
            unobstructed=False,
        )
        assessment = service.evaluate_node(node, seed=seed + i)
        profile = assessment.report.profile
        rows.append(
            FaultRow(
                fault=fault,
                overall_score=assessment.report.overall_score(),
                adsb_reception_rate=(
                    assessment.report.scan.reception_rate
                ),
                dead_bands=sum(
                    1
                    for m in profile.measurements
                    if not m.decoded
                ),
                violations=[
                    v.claim for v in assessment.claim_violations
                ],
            )
        )
    return rows


def format_rows(rows: List[FaultRow]) -> str:
    return format_table(
        [
            "hardware",
            "score",
            "ADS-B reception",
            "dead bands",
            "violations",
        ],
        [
            [
                r.fault,
                f"{r.overall_score:.2f}",
                f"{r.adsb_reception_rate:.0%}",
                r.dead_bands,
                "; ".join(r.violations) or "-",
            ]
            for r in rows
        ],
    )
