"""A full crowd-sourced fleet: the paper's §2 vision, end to end.

Twelve nodes across the metro — rooftops, windows, indoor installs,
one with damaged hardware, two with cheating operators — are all
calibrated automatically. The output is the marketplace view a renter
would see: nodes ranked by measured quality, with untrustworthy
uploads rejected outright. No human visited any site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.network import CalibrationService, NodeAssessment
from repro.experiments.common import World, build_world, format_table
from repro.experiments.hardware_faults import DAMAGED_CABLE_ANTENNA
from repro.node.fabrication import (
    GhostTrafficFabricator,
    OmniscientFabricator,
)
from repro.node.sensor import SensorNode


@dataclass
class FleetResult:
    """The calibrated fleet."""

    assessments: Dict[str, NodeAssessment]
    cheaters: List[str]
    degraded: List[str]

    def marketplace(self) -> List[NodeAssessment]:
        """Trustworthy nodes, best quality first."""
        listed = [
            a
            for a in self.assessments.values()
            if a.trust.is_trustworthy()
        ]
        return sorted(
            listed,
            key=lambda a: a.report.overall_score(),
            reverse=True,
        )

    def rejected(self) -> List[str]:
        return sorted(
            node_id
            for node_id, a in self.assessments.items()
            if not a.trust.is_trustworthy()
        )


def build_fleet(world: World) -> List[SensorNode]:
    """Twelve nodes: 4 rooftop, 4 window, 4 indoor; one damaged."""
    nodes: List[SensorNode] = []
    for cls in ("rooftop", "window", "indoor"):
        for i in range(4):
            node_id = f"{cls}-{i}"
            if cls == "rooftop" and i == 3:
                nodes.append(
                    SensorNode(
                        node_id,
                        world.testbed.site(cls),
                        antenna=DAMAGED_CABLE_ANTENNA,
                    )
                )
            else:
                nodes.append(
                    SensorNode(node_id, world.testbed.site(cls))
                )
    return nodes


def run_fleet(world: Optional[World] = None, seed: int = 95) -> FleetResult:
    """Calibrate the whole fleet, adversaries included."""
    world = world or build_world()
    service = CalibrationService(
        traffic=world.traffic,
        ground_truth=world.ground_truth,
        cell_towers=world.testbed.cell_towers,
        tv_towers=world.testbed.tv_towers,
        fm_towers=world.testbed.fm_towers,
    )
    nodes = build_fleet(world)
    fabrications = {
        "window-3": OmniscientFabricator(),
        "indoor-3": GhostTrafficFabricator(n_ghosts=30),
    }
    assessments = service.evaluate_network(
        nodes, seed=seed, fabrications=fabrications
    )
    return FleetResult(
        assessments=assessments,
        cheaters=sorted(fabrications),
        degraded=["rooftop-3"],
    )


def format_marketplace(result: FleetResult) -> str:
    rows = []
    for rank, assessment in enumerate(result.marketplace(), start=1):
        note = ""
        if assessment.node_id in result.degraded:
            note = "degraded hardware"
        rows.append(
            [
                rank,
                assessment.node_id,
                f"{assessment.report.overall_score():.2f}",
                assessment.report.classification.installation,
                f"{assessment.trust.trust_score():.2f}",
                note or "-",
            ]
        )
    table = format_table(
        ["rank", "node", "quality", "class", "trust", "notes"], rows
    )
    rejected = ", ".join(result.rejected()) or "none"
    return f"{table}\n\nRejected (untrusted uploads): {rejected}"
