"""A full crowd-sourced fleet: the paper's §2 vision, end to end.

Twelve nodes across the metro — rooftops, windows, indoor installs,
one with damaged hardware, two with cheating operators — are all
calibrated automatically. The output is the marketplace view a renter
would see: nodes ranked by measured quality, with untrustworthy
uploads rejected outright. No human visited any site.

Since the runtime PR the calibration itself goes through
:mod:`repro.runtime`: every node becomes a :class:`CalibrationJob`
executed by a worker pool with retries, a content-addressed result
cache, and campaign checkpoints. ``workers=1`` (the default) is the
serial degenerate case — per-node seeds are assigned exactly as the
historical ``evaluate_network`` loop did, so results are
bit-identical to the pre-runtime path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.network import NodeAssessment
from repro.experiments.common import World, build_world, format_table
from repro.node.sensor import SensorNode
from repro.runtime.campaign import (
    CampaignConfig,
    CampaignResult,
    fleet_jobs,
    run_fleet_campaign,
    standard_fleet_specs,
)

#: Node ids whose operators fabricate data in the standard fleet.
CHEATERS = ("indoor-3", "window-3")

#: Node ids with degraded hardware in the standard fleet.
DEGRADED = ("rooftop-3",)


@dataclass
class FleetResult:
    """The calibrated fleet."""

    assessments: Dict[str, NodeAssessment]
    cheaters: List[str]
    degraded: List[str]
    campaign: Optional[CampaignResult] = field(default=None, repr=False)

    def marketplace(self) -> List[NodeAssessment]:
        """Trustworthy nodes, best quality first."""
        listed = [
            a
            for a in self.assessments.values()
            if a.trust.is_trustworthy()
        ]
        return sorted(
            listed,
            key=lambda a: a.report.overall_score(),
            reverse=True,
        )

    def rejected(self) -> List[str]:
        return sorted(
            node_id
            for node_id, a in self.assessments.items()
            if not a.trust.is_trustworthy()
        )


def build_fleet(world: World) -> List[SensorNode]:
    """Twelve nodes: 4 rooftop, 4 window, 4 indoor; one damaged."""
    return [
        spec.build(world) for spec in standard_fleet_specs()
    ]


def run_fleet(
    world: Optional[World] = None,
    seed: int = 95,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: Optional[str] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    max_jobs: Optional[int] = None,
    fail_node: Optional[str] = None,
    engine: Optional[str] = None,
    path_cache: bool = True,
    path_cache_dir: Optional[str] = None,
) -> FleetResult:
    """Calibrate the whole fleet, adversaries included.

    Runs through the :mod:`repro.runtime` campaign machinery; the
    default arguments reproduce the historical serial run exactly.
    ``engine``/``path_cache``/``path_cache_dir`` select the compute
    backend and stage-result reuse (:mod:`repro.engines`) — execution
    policy only, results are unchanged.
    """
    world = world or build_world()
    config = CampaignConfig(
        workers=workers,
        executor=executor,
        cache_dir=cache_dir,
        checkpoint_path=checkpoint,
        resume=resume,
        stop_after=max_jobs,
        engine=engine,
        path_cache=path_cache,
        path_cache_dir=path_cache_dir,
    )
    campaign = run_fleet_campaign(
        seed=seed,
        config=config,
        world=world,
        fail_node=fail_node,
    )
    return FleetResult(
        assessments=campaign.assessments,
        cheaters=sorted(CHEATERS),
        degraded=list(DEGRADED),
        campaign=campaign,
    )


def format_marketplace(result: FleetResult) -> str:
    rows = []
    for rank, assessment in enumerate(result.marketplace(), start=1):
        note = ""
        if assessment.node_id in result.degraded:
            note = "degraded hardware"
        rows.append(
            [
                rank,
                assessment.node_id,
                f"{assessment.report.overall_score():.2f}",
                assessment.report.classification.installation,
                f"{assessment.trust.trust_score():.2f}",
                note or "-",
            ]
        )
    table = format_table(
        ["rank", "node", "quality", "class", "trust", "notes"], rows
    )
    rejected = ", ".join(result.rejected()) or "none"
    return f"{table}\n\nRejected (untrusted uploads): {rejected}"


__all__ = [
    "CHEATERS",
    "DEGRADED",
    "FleetResult",
    "build_fleet",
    "fleet_jobs",
    "format_marketplace",
    "run_fleet",
]
