"""Peer cross-validation experiment (tracker-free trust).

Five nodes watch the same metro sky: three honest rooftop nodes, one
replaying old data, one padding with invented aircraft. The
cross-checker must flag both cheats using only the nodes' own
reception sets — no FlightRadar24 reference at all. (The abstention
path for nearly-deaf honest nodes is exercised too.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.airspace.flightradar import FlightRadarService
from repro.airspace.traffic import TrafficConfig, TrafficSimulator
from repro.core.crosscheck import CrossChecker, CrossCheckRow
from repro.core.directional import DirectionalEvaluator
from repro.experiments.common import World, build_world, format_table
from repro.node.fabrication import (
    GhostTrafficFabricator,
    ReplayFabricator,
)
from repro.node.sensor import SensorNode


@dataclass
class CrossCheckOutcome:
    """Experiment result: per-node verdicts plus correctness."""

    rows: List[CrossCheckRow]
    cheaters: List[str]

    def all_cheaters_flagged(self) -> bool:
        flagged = {r.node_id for r in self.rows if r.flagged}
        return set(self.cheaters) <= flagged

    def false_alarms(self) -> int:
        return sum(
            1
            for r in self.rows
            if r.flagged and r.node_id not in self.cheaters
        )


def _honest_scan(world: World, node_id: str, seed: int):
    node = SensorNode(node_id, world.testbed.site("rooftop"))
    return DirectionalEvaluator(
        node=node,
        traffic=world.traffic,
        ground_truth=world.ground_truth,
    ).run(np.random.default_rng(seed))


def run_crosscheck_experiment(
    world: Optional[World] = None, seed: int = 90
) -> CrossCheckOutcome:
    """Three honest nodes, one replayer, one ghost padder."""
    world = world or build_world()
    rng = np.random.default_rng(seed)
    scans = [
        _honest_scan(world, f"honest-{i}", seed + i) for i in range(3)
    ]

    # Replayer: uploads a recording taken under different traffic.
    other = TrafficSimulator(
        center=world.testbed.center,
        config=TrafficConfig(n_aircraft=80),
        rng_seed=seed + 500,
    )
    donor_node = SensorNode("replayer", world.testbed.site("rooftop"))
    donor = DirectionalEvaluator(
        node=donor_node,
        traffic=other,
        ground_truth=FlightRadarService(traffic=other),
    ).run(np.random.default_rng(seed + 500))
    replayer_now = _honest_scan(world, "replayer", seed + 3)
    scans.append(ReplayFabricator(donor=donor).fabricate(replayer_now, rng))

    # Ghost padder: real decodes plus 40 invented aircraft.
    padder_scan = _honest_scan(world, "padder", seed + 4)
    scans.append(
        GhostTrafficFabricator(n_ghosts=40).fabricate(padder_scan, rng)
    )

    rows = CrossChecker().assess(scans)
    return CrossCheckOutcome(
        rows=rows, cheaters=["replayer", "padder"]
    )


def format_rows(outcome: CrossCheckOutcome) -> str:
    return format_table(
        ["node", "peer similarity", "unique fraction", "verdict"],
        [
            [
                r.node_id,
                f"{r.mean_similarity:.2f}",
                f"{r.unique_fraction:.2f}",
                (
                    "abstain"
                    if r.abstained
                    else ("FLAGGED" if r.flagged else "ok")
                )
                + (
                    " (cheating)"
                    if r.node_id in outcome.cheaters
                    else ""
                ),
            ]
            for r in outcome.rows
        ],
    )
