"""Absolute-power calibration experiment (§5 "other calibration").

Estimates each location's dBFS→dBm offset from known broadcasters and
compares against the true SDR full-scale — the accuracy table the
paper's final future-work bullet asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.abs_power import AbsolutePowerCalibrator
from repro.core.directional import DirectionalEvaluator
from repro.core.fov import KnnFovEstimator
from repro.core.frequency import FrequencyEvaluator
from repro.experiments.common import (
    LOCATIONS,
    World,
    build_world,
    format_table,
)
from repro.node.sensor import SensorNode


@dataclass
class AbsPowerRow:
    """One location's calibration accuracy."""

    location: str
    estimate_dbm: Optional[float]
    true_dbm: float
    error_db: Optional[float]
    anchor: Optional[str]
    reliable: bool


def run_abs_power(
    world: Optional[World] = None, seed: int = 97
) -> List[AbsPowerRow]:
    """Calibrate absolute power at each location."""
    world = world or build_world()
    calibrator = AbsolutePowerCalibrator()
    rows: List[AbsPowerRow] = []
    for i, location in enumerate(LOCATIONS):
        node = SensorNode(location, world.testbed.site(location))
        scan = DirectionalEvaluator(
            node=node,
            traffic=world.traffic,
            ground_truth=world.ground_truth,
        ).run(np.random.default_rng(seed + i))
        fov = KnnFovEstimator().estimate(scan)
        profile = FrequencyEvaluator(
            node=node,
            cell_towers=world.testbed.cell_towers,
            tv_towers=world.testbed.tv_towers,
            fm_towers=world.testbed.fm_towers,
        ).run()
        result = calibrator.calibrate(
            node,
            profile,
            world.testbed.tv_towers,
            world.testbed.fm_towers,
            fov=fov,
        )
        error = (
            result.full_scale_dbm_estimate - node.sdr.full_scale_dbm
            if result.full_scale_dbm_estimate is not None
            else None
        )
        rows.append(
            AbsPowerRow(
                location=location,
                estimate_dbm=result.full_scale_dbm_estimate,
                true_dbm=node.sdr.full_scale_dbm,
                error_db=error,
                anchor=result.anchor_label,
                reliable=result.reliable,
            )
        )
    return rows


def format_rows(rows: List[AbsPowerRow]) -> str:
    return format_table(
        [
            "location",
            "estimated 0 dBFS (dBm)",
            "true (dBm)",
            "error (dB)",
            "anchor",
            "verdict",
        ],
        [
            [
                r.location,
                (
                    f"{r.estimate_dbm:.1f}"
                    if r.estimate_dbm is not None
                    else "-"
                ),
                f"{r.true_dbm:.1f}",
                f"{r.error_db:+.1f}" if r.error_db is not None else "-",
                r.anchor or "-",
                "calibrated" if r.reliable else "UNRELIABLE",
            ]
            for r in rows
        ],
    )
