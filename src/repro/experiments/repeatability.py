"""Repeatability: §3.1's "repeated over 10 times, similar results".

Runs the directional evaluation ten times per location with
independent randomness (fading, shadowing, squitter jitter) and
reports the spread of the headline statistics. The claim holds when
the per-location spread is small relative to the separation *between*
locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.directional import DirectionalEvaluator
from repro.experiments.common import (
    LOCATIONS,
    World,
    build_world,
    format_table,
)


@dataclass
class RepeatabilityRow:
    """Spread of one location's statistics over repeated runs."""

    location: str
    n_runs: int
    reception_rate_mean: float
    reception_rate_std: float
    max_range_mean_km: float
    max_range_std_km: float

    def separated_from(self, other: "RepeatabilityRow") -> bool:
        """Whether the two locations' reception rates are disjoint
        at +/-2 standard deviations (the 'similar results' criterion)."""
        lo_self = self.reception_rate_mean - 2 * self.reception_rate_std
        hi_self = self.reception_rate_mean + 2 * self.reception_rate_std
        lo_other = (
            other.reception_rate_mean - 2 * other.reception_rate_std
        )
        hi_other = (
            other.reception_rate_mean + 2 * other.reception_rate_std
        )
        return hi_self < lo_other or hi_other < lo_self


def run_repeatability(
    n_runs: int = 10, world: Optional[World] = None, seed: int = 100
) -> List[RepeatabilityRow]:
    """Ten independent runs per location."""
    if n_runs <= 1:
        raise ValueError(f"need at least 2 runs: {n_runs}")
    world = world or build_world()
    rows: List[RepeatabilityRow] = []
    for location in LOCATIONS:
        node = world.node_at(location)
        evaluator = DirectionalEvaluator(
            node=node,
            traffic=world.traffic,
            ground_truth=world.ground_truth,
        )
        rates: List[float] = []
        ranges: List[float] = []
        for i in range(n_runs):
            scan = evaluator.run(np.random.default_rng(seed + i))
            rates.append(scan.reception_rate)
            ranges.append(scan.max_received_range_km())
        rows.append(
            RepeatabilityRow(
                location=location,
                n_runs=n_runs,
                reception_rate_mean=float(np.mean(rates)),
                reception_rate_std=float(np.std(rates)),
                max_range_mean_km=float(np.mean(ranges)),
                max_range_std_km=float(np.std(ranges)),
            )
        )
    return rows


def format_rows(rows: List[RepeatabilityRow]) -> str:
    return format_table(
        [
            "location",
            "runs",
            "reception rate",
            "max range (km)",
        ],
        [
            [
                r.location,
                r.n_runs,
                f"{r.reception_rate_mean:.2f} +/- {r.reception_rate_std:.2f}",
                f"{r.max_range_mean_km:.0f} +/- {r.max_range_std_km:.0f}",
            ]
            for r in rows
        ],
    )
